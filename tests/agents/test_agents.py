"""Tests for agents: validation scoring and the registry."""

import pytest

from repro.agents import Agent, AgentRegistry, EchoAgent, ValidationAgent
from repro.core import ExecutionState
from repro.errors import DelegationError


class TestValidationAgent:
    def _state_with_evidence(self, evidence: str) -> ExecutionState:
        state = ExecutionState()
        state.context.put("notes", evidence)
        return state

    def test_supported_claims_score_one(self):
        state = self._state_with_evidence(
            "Enoxaparin 40 mg administered within the last 24 hours for DVT prophylaxis."
        )
        agent = ValidationAgent()
        report = agent.handle(
            state,
            "Patient received Enoxaparin; dosage: 40 mg; timing: within the "
            "last 24 hours; indication: DVT prophylaxis",
        )
        assert report["evidence_score"] == 1.0
        assert all(claim["supported"] for claim in report["claims"])

    def test_unsupported_dosage_lowers_score(self):
        state = self._state_with_evidence("Enoxaparin 40 mg administered.")
        agent = ValidationAgent()
        report = agent.handle(state, "Patient received Enoxaparin; dosage: 80 mg")
        dosage_claims = [c for c in report["claims"] if c["kind"] == "dosage"]
        assert dosage_claims and not dosage_claims[0]["supported"]
        assert report["evidence_score"] < 1.0

    def test_no_checkable_claims_scores_one(self):
        state = self._state_with_evidence("irrelevant evidence")
        report = ValidationAgent().handle(state, "I am not sure.")
        assert report["evidence_score"] == 1.0
        assert report["claims"] == []

    def test_negative_claim_supported_when_drug_absent(self):
        state = self._state_with_evidence("No anticoagulants prescribed.")
        report = ValidationAgent().handle(state, "no Enoxaparin use documented")
        assert report["evidence_score"] == 1.0

    def test_negative_claim_contradicted(self):
        state = self._state_with_evidence("enoxaparin 40 mg given")
        report = ValidationAgent().handle(state, "no Enoxaparin use documented")
        assert report["evidence_score"] == 0.0

    def test_score_written_to_metadata(self):
        state = self._state_with_evidence("enoxaparin 40 mg")
        ValidationAgent().handle(state, "received Enoxaparin; dosage: 40 mg")
        assert "evidence_score" in state.metadata

    def test_evidence_keys_restrict_pool(self):
        state = ExecutionState()
        state.context.put("notes", "enoxaparin 40 mg")
        state.context.put("other", "80 mg somewhere else")
        agent = ValidationAgent(evidence_keys=["notes"])
        report = agent.handle(state, "dosage: 80 mg")
        assert report["evidence_score"] == 0.0


class TestRegistry:
    def test_register_and_get(self):
        registry = AgentRegistry()
        agent = EchoAgent()
        registry.register(agent)
        assert registry.get("echo") is agent
        assert "echo" in registry
        assert len(registry) == 1

    def test_register_with_explicit_name(self):
        registry = AgentRegistry()
        registry.register(EchoAgent(), name="mirror")
        assert registry.names() == ["mirror"]

    def test_rejects_non_agents(self):
        registry = AgentRegistry()
        with pytest.raises(DelegationError):
            registry.register(object())  # type: ignore[arg-type]

    def test_unknown_agent_raises(self):
        with pytest.raises(DelegationError):
            AgentRegistry().get("ghost")

    def test_install_onto_state(self):
        registry = AgentRegistry()
        registry.register(EchoAgent())
        state = ExecutionState()
        registry.install(state)
        assert state.agent("echo").handle(state, "x") == "x"

    def test_base_agent_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Agent().handle(None, None)


class TestRetrieverAgent:
    @pytest.fixture
    def retriever(self, clinical_corpus):
        from repro.agents import RetrieverAgent
        from repro.retrieval import InvertedIndex, corpus_documents

        return RetrieverAgent(InvertedIndex(corpus_documents(clinical_corpus)))

    def test_returns_ranked_snippets(self, retriever):
        state = ExecutionState()
        report = retriever.handle(state, "enoxaparin dosage administered")
        assert report["snippets"]
        assert report["scores"] == sorted(report["scores"], reverse=True)
        assert report["top_score"] == report["scores"][0]
        assert "enoxaparin" in report["snippets"][0].lower()

    def test_writes_retrieval_score_signal(self, retriever):
        state = ExecutionState()
        retriever.handle(state, "enoxaparin")
        assert state.metadata["retrieval_score"] > 0

    def test_no_hits_scores_zero(self, retriever):
        state = ExecutionState()
        report = retriever.handle(state, "zebra rainbows nothing")
        assert report["snippets"] == []
        assert state.metadata["retrieval_score"] == 0.0

    def test_delegation_with_refinable_retrieval_prompt(self, state, clinical_corpus):
        from repro.agents import RetrieverAgent
        from repro.core import DELEGATE, REF, RefAction
        from repro.retrieval import InvertedIndex, corpus_documents

        state.register_agent(
            "retriever",
            RetrieverAgent(InvertedIndex(corpus_documents(clinical_corpus))),
        )
        state.prompts.create("retrieval_intent", "patient notes")
        pipeline = (
            REF(
                RefAction.UPDATE,
                "enoxaparin medication orders dosage",
                key="retrieval_intent",
            )
            >> DELEGATE(
                "retriever",
                lambda st: st.render_prompt("retrieval_intent"),
                into="retrieved",
            )
        )
        final = pipeline.apply(state)
        assert final.C["retrieved"]["top_score"] > 0
