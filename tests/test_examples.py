"""Smoke tests: every shipped example runs end to end.

Examples are user-facing documentation; a broken one is a bug.  Each main()
is executed in-process with stdout captured.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    yield
    for name in list(sys.modules):
        if name in {
            "quickstart",
            "enoxaparin_qa",
            "sentiment_fusion",
            "spear_dl_demo",
            "meta_optimization",
            "clinical_audit",
            "semantic_query",
        }:
            del sys.modules[name]


def _run(name: str, capsys) -> str:
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart", capsys)
        assert "verdict:" in out
        assert "prompt provenance" in out
        assert "v0 CREATE" in out

    def test_enoxaparin_qa(self, capsys):
        out = _run("enoxaparin_qa", capsys)
        assert "final answer:" in out
        assert "evidence score:" in out
        assert "replay verification: OK" in out

    def test_spear_dl_demo(self, capsys):
        out = _run("spear_dl_demo", capsys)
        assert "parsed 2 views, 1 pipelines" in out
        assert "answer_1:" in out
        assert "prompt drift" in out

    def test_meta_optimization(self, capsys):
        out = _run("meta_optimization", capsys)
        assert "refiner statistics" in out
        assert "f_add_criteria" in out
        assert "planned refiners" in out
        # The harmful refiner must be identified and skipped by the plan.
        assert "'f_strip_guidance'" in out.split("skipped:")[1]

    def test_semantic_query(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["semantic_query.py", "0.2"])
        out = _run("semantic_query", capsys)
        assert "FUSED[map_filter]" in out
        assert "plan: FILTER" in out  # filter->map stays sequential at 20%

    def test_clinical_audit(self, capsys):
        out = _run("clinical_audit", capsys)
        assert "audited 25 patients" in out
        assert "persisted to JSON" in out
        assert "last item's timeline:" in out


class TestSentimentFusion:
    def test_sentiment_fusion(self, capsys, monkeypatch):
        # Run at a small selectivity where both planner decisions are clear.
        monkeypatch.setattr(sys, "argv", ["sentiment_fusion.py", "0.1"])
        out = _run("sentiment_fusion", capsys)
        assert "map_filter: planner says fuse=True" in out
        assert "filter_map: planner says fuse=False" in out
