"""Tenant-isolation guarantees: the acceptance bar for the serving layer.

Four properties, each structural rather than policed:

- **cache isolation** — tenants hit only their own radix/structured
  prompt cache partition and result cache; a second tenant running the
  exact same workload stays stone cold;
- **byte identity** — a tenant's outputs (and its ledger run, modulo
  host timestamps) are identical to a standalone executor run of the
  same pipeline, gated by ``spear diff --gate``;
- **ledger hygiene** — per-tenant ledger runs contain only that
  tenant's pipeline events, never SERVE events or another tenant's;
- **stress** — 8 workers × 8 tenants with interleaved bursts still
  yield per-tenant outputs equal to each tenant running alone.
"""

from __future__ import annotations

import json

from repro.cli import main as spear_main
from repro.core import GEN, Pipeline
from repro.data import make_tweet_corpus
from repro.llm.model import SimulatedLLM
from repro.runtime.clock import VirtualClock
from repro.runtime.executor import Executor
from repro.runtime.options import RuntimeOptions
from repro.runtime.result_cache import ResultCache
from repro.serve import ServeRequest, SpearServer
from repro.serve.traffic import FILTER_PROMPT, MAP_PROMPT, PROFILE

CORPUS_SIZE = 8
SEED = 7


def make_corpus():
    return make_tweet_corpus(CORPUS_SIZE, seed=SEED)


def make_server(**kwargs) -> SpearServer:
    corpus = make_corpus()
    kwargs.setdefault("profile", PROFILE)
    kwargs.setdefault("binder", lambda llm: llm.bind_tweets(corpus))
    kwargs.setdefault("workers", 2)
    server = SpearServer(**kwargs)
    server.register_pipeline(
        "summarize_filter",
        Pipeline(
            [GEN("summary", prompt="map_p"), GEN("neg", prompt="filter_p")]
        ),
        prompts={"map_p": MAP_PROMPT, "filter_p": FILTER_PROMPT},
    )
    server.corpus = corpus
    return server


def request_for(server, tenant: str, index: int = 0) -> ServeRequest:
    tweet = server.corpus[index % len(server.corpus)]
    return ServeRequest(
        tenant=tenant,
        pipeline="summarize_filter",
        context={"tweet": tweet.text},
    )


def standalone_run(tweet_text: str, *, ledger_dir=None, repeat: int = 1):
    """The reference arm: one fresh executor, same profile and prompts."""
    clock = VirtualClock()
    llm = SimulatedLLM(PROFILE, clock=clock)
    llm.bind_tweets(make_corpus())
    executor = Executor(
        options=RuntimeOptions(
            model=llm,
            clock=clock,
            result_cache=ResultCache(),
            scheduler=True,
            ledger_dir=str(ledger_dir) if ledger_dir else None,
        )
    )
    base = executor.new_state()
    base.prompts.create("map_p", MAP_PROMPT)
    base.prompts.create("filter_p", FILTER_PROMPT)
    pipeline = Pipeline(
        [GEN("summary", prompt="map_p"), GEN("neg", prompt="filter_p")]
    )
    results = []
    for _ in range(repeat):
        state = base.fork()
        state.context.put("tweet", tweet_text, producer="serve")
        results.append(executor.run(pipeline, state=state))
    return results


class TestCacheIsolation:
    def test_second_tenant_same_workload_stays_cold(self):
        server = make_server()
        server.add_tenant("a")
        server.add_tenant("b")
        with server:
            first_a = server.submit(request_for(server, "a")).result()
            cold_a = server.session("a").partition.snapshot()
            # tenant B runs the *identical* request: if partitions leaked,
            # B would see A's warm prefix and hit more blocks than a cold
            # run does (the two GENs share the scaffold, so a cold run
            # still has some intra-request hits — B must match it exactly)
            first_b = server.submit(request_for(server, "b")).result()
            cold_b = server.session("b").partition.snapshot()
            warm_a = server.submit(request_for(server, "a")).result()
        assert cold_b["kv_cache"] == cold_a["kv_cache"]
        assert cold_b["prompt_cache"] == cold_a["prompt_cache"]
        assert first_b.elapsed == first_a.elapsed
        # whereas A's own repeat genuinely warms A's partition
        warm_part = server.session("a").partition.snapshot()
        assert (
            warm_part["kv_cache"]["block_hits"]
            > 2 * cold_a["kv_cache"]["block_hits"]
        )
        assert warm_a.elapsed < first_a.elapsed

    def test_result_cache_never_crosses_tenants(self):
        server = make_server()
        server.add_tenant("a")
        server.add_tenant("b")
        with server:
            server.submit(request_for(server, "a")).result()
            repeat_b = server.submit(request_for(server, "b")).result()
        cache_b = server.session("b").executor.options.result_cache
        assert cache_b.snapshot()["hits"] == 0
        assert repeat_b.ok

    def test_prompt_stores_are_disjoint(self):
        server = make_server()
        server.add_tenant("a")
        server.add_tenant("b")
        with server:
            server.submit(request_for(server, "a")).result()
            server.submit(request_for(server, "b")).result()
        store_a = server.session("a").state.prompts
        store_b = server.session("b").state.prompts
        assert store_a is not store_b
        store_a.create("private", "tenant-a only text")
        assert "private" not in store_b

    def test_partition_namespaces_match_tenants(self):
        server = make_server()
        server.add_tenant("a")
        server.add_tenant("b")
        with server:
            server.submit(request_for(server, "a")).result()
            server.submit(request_for(server, "b")).result()
        assert set(server.partitions.namespaces()) == {"a", "b"}


class TestByteIdentity:
    def test_tenant_output_matches_standalone(self):
        server = make_server()
        server.add_tenant("solo")
        with server:
            response = server.submit(request_for(server, "solo")).result()
        (reference,) = standalone_run(server.corpus[0].text)
        assert response.output("summary") == reference.output("summary")
        assert response.output("neg") == reference.output("neg")

    def test_repeat_requests_match_standalone_repeats(self):
        server = make_server()
        server.add_tenant("solo")
        with server:
            responses = [
                server.submit(request_for(server, "solo")).result()
                for _ in range(3)
            ]
        references = standalone_run(server.corpus[0].text, repeat=3)
        for response, reference in zip(responses, references):
            assert response.output("summary") == reference.output("summary")
            assert response.output("neg") == reference.output("neg")

    def test_ledger_diff_gate_passes_vs_standalone(self, tmp_path):
        server = make_server(ledger_dir=str(tmp_path / "serve"))
        server.add_tenant("solo")
        with server:
            response = server.submit(request_for(server, "solo")).result()
        assert response.ok
        standalone_run(server.corpus[0].text, ledger_dir=tmp_path / "solo")
        (serve_run,) = sorted((tmp_path / "serve" / "solo").iterdir())
        solo_runs = sorted(
            p for p in (tmp_path / "solo").iterdir() if p.is_dir()
        )
        exit_code = spear_main(
            ["diff", str(serve_run), str(solo_runs[0]), "--gate"]
        )
        assert exit_code == 0


class TestLedgerHygiene:
    def test_tenant_ledgers_never_see_serve_or_foreign_events(self, tmp_path):
        server = make_server(ledger_dir=str(tmp_path))
        server.add_tenant("a")
        server.add_tenant("b")
        with server:
            server.submit(request_for(server, "a")).result()
            server.submit(request_for(server, "b", 1)).result()
        for tenant, other in (("a", "b"), ("b", "a")):
            (run_dir,) = sorted((tmp_path / tenant).iterdir())
            events = [
                json.loads(line)
                for line in (run_dir / "events.jsonl")
                .read_text(encoding="utf-8")
                .splitlines()
            ]
            assert events, f"tenant {tenant} ledger run is empty"
            kinds = {event["kind"] for event in events}
            assert "serve" not in kinds
            # the other tenant's tweet text must never leak into this
            # tenant's ledger (tenant a served tweet 0, tenant b tweet 1)
            other_text = server.corpus[1 if other == "b" else 0].text
            dump = json.dumps(events)
            assert other_text not in dump
            manifest = json.loads(
                (run_dir / "manifest.json").read_text(encoding="utf-8")
            )
            assert manifest["tenant"] == tenant

    def test_manifest_records_request_identity(self, tmp_path):
        server = make_server(ledger_dir=str(tmp_path))
        server.add_tenant("a")
        with server:
            response = server.submit(request_for(server, "a")).result()
        (run_dir,) = sorted((tmp_path / "a").iterdir())
        manifest = json.loads(
            (run_dir / "manifest.json").read_text(encoding="utf-8")
        )
        assert manifest["runner"] == "SpearServer"
        assert manifest["request_id"] == response.request_id


class TestStressIsolation:
    def test_eight_workers_eight_tenants_interleaved(self):
        server = make_server(workers=8)
        tenants = [f"t{i}" for i in range(8)]
        for tenant in tenants:
            server.add_tenant(tenant)
        futures = {tenant: [] for tenant in tenants}
        # interleave submissions round-robin so workers genuinely contend
        for round_index in range(3):
            for t_index, tenant in enumerate(tenants):
                futures[tenant].append(
                    server.submit(
                        request_for(server, tenant, t_index + round_index)
                    )
                )
        with server:
            responses = {
                tenant: [f.result() for f in fs]
                for tenant, fs in futures.items()
            }
        for t_index, tenant in enumerate(tenants):
            assert all(r.ok for r in responses[tenant])
            for round_index, response in enumerate(responses[tenant]):
                tweet = server.corpus[
                    (t_index + round_index) % len(server.corpus)
                ]
                (reference,) = standalone_run(tweet.text)
                # under full contention every tenant still produces the
                # exact bytes it would have produced running alone
                assert response.output("summary") == reference.output(
                    "summary"
                ), f"{tenant} diverged under contention"

    def test_stress_run_is_deterministic_in_sim_time(self):
        def drive():
            server = make_server(workers=8)
            for i in range(8):
                server.add_tenant(f"t{i}")
            futures = [
                server.submit(request_for(server, f"t{i}", j))
                for j in range(2)
                for i in range(8)
            ]
            with server:
                results = [f.result() for f in futures]
            clocks = {
                f"t{i}": server.session(f"t{i}").clock.now for i in range(8)
            }
            return [r.output("summary") for r in results], clocks

        outputs_one, clocks_one = drive()
        outputs_two, clocks_two = drive()
        assert outputs_one == outputs_two
        assert clocks_one == clocks_two
