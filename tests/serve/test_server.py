"""Serving-pool tests: request lifecycle, shedding, policy plumbing.

Tenant-isolation guarantees live in ``test_isolation.py``; this module
covers the server mechanics — registration, submission, typed
responses, deterministic load shedding, the breaker path, SERVE
observability, and the SPEAR147-style submit-time warning.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core import GEN, Pipeline
from repro.data import make_tweet_corpus
from repro.errors import RateLimitError, SpearError
from repro.obs.collector import ObsCollector
from repro.obs.metrics import MetricsRegistry
from repro.resilience import BreakerPolicy, ShedPolicy
from repro.runtime.events import EventKind
from repro.serve import ServeRequest, SpearServer, TenantConfig
from repro.serve.traffic import (
    MAP_PROMPT,
    PROFILE,
    TrafficConfig,
    build_demo_server,
    run_traffic,
)

CORPUS_SIZE = 8
SEED = 7


def make_server(**kwargs) -> SpearServer:
    corpus = make_tweet_corpus(CORPUS_SIZE, seed=SEED)
    kwargs.setdefault("profile", PROFILE)
    kwargs.setdefault("binder", lambda llm: llm.bind_tweets(corpus))
    kwargs.setdefault("workers", 2)
    server = SpearServer(**kwargs)
    server.register_pipeline(
        "summarize",
        Pipeline([GEN("summary", prompt="map_p")]),
        prompts={"map_p": MAP_PROMPT},
    )
    server.corpus = corpus
    return server


def request_for(server, tenant: str, index: int = 0) -> ServeRequest:
    tweet = server.corpus[index % len(server.corpus)]
    return ServeRequest(
        tenant=tenant, pipeline="summarize", context={"tweet": tweet.text}
    )


class TestServeBasics:
    def test_single_request_round_trip(self):
        server = make_server()
        server.add_tenant("acme")
        with server:
            response = server.submit(request_for(server, "acme")).result()
        assert response.ok
        assert response.status == "ok"
        assert response.tenant == "acme"
        assert response.request_id
        assert isinstance(response.output("summary"), str)
        assert response.report["runner"] == "run"
        assert response.elapsed > 0.0

    def test_unknown_tenant_rejected(self):
        server = make_server()
        with pytest.raises(SpearError, match="unknown tenant"):
            server.submit(request_for(server, "ghost"))

    def test_auto_tenants_registers_on_first_submit(self):
        server = make_server(auto_tenants=True)
        with server:
            response = server.submit(request_for(server, "walk-in")).result()
        assert response.ok
        assert "walk-in" in server.tenants()

    def test_unknown_pipeline_rejected(self):
        server = make_server()
        server.add_tenant("acme")
        with pytest.raises(SpearError, match="unknown pipeline"):
            server.submit(
                ServeRequest(tenant="acme", pipeline="nope", context={})
            )

    def test_add_tenant_accepts_config_and_overrides(self):
        server = make_server()
        config = server.add_tenant("a", priority="interactive")
        assert config.priority == "interactive"
        explicit = server.add_tenant(TenantConfig(name="b", deadline_s=2.0))
        assert explicit.deadline_s == 2.0
        with pytest.raises(TypeError):
            server.add_tenant(TenantConfig(name="c"), priority="bulk")

    def test_items_fan_out_returns_batch_protocol(self):
        server = make_server()
        server.add_tenant("acme")
        items = [{"tweet": tweet.text} for tweet in server.corpus[:3]]
        with server:
            response = server.submit(
                ServeRequest(tenant="acme", pipeline="summarize", items=items)
            ).result()
        assert response.ok
        outputs = response.output("summary")
        assert len(outputs) == 3 and all(outputs)
        assert response.report["runner"] == "batch"

    def test_error_in_pipeline_yields_error_response(self):
        server = make_server()
        server.add_tenant("acme")
        with server:
            response = server.submit(
                ServeRequest(tenant="acme", pipeline="summarize", context={})
            ).result()
        # No tweet bound: the GEN still runs, but an unknown-prompt-key
        # style failure is what we'd surface; either way the pool stays up.
        assert response.status in ("ok", "error")
        follow_up = server.submit(request_for(server, "acme"))
        with server:
            assert follow_up.result().ok

    def test_shutdown_drains_unstarted_requests_as_errors(self):
        server = make_server(workers=1)
        server.add_tenant("acme")
        futures = [server.submit(request_for(server, "acme", i)) for i in range(3)]
        server.start()
        server.shutdown()
        statuses = {future.result().status for future in futures}
        assert statuses <= {"ok", "error"}
        # pending drained back to zero either way
        assert server.session("acme").pending == 0


class TestLoadShedding:
    def test_burst_over_limit_sheds_deterministically(self):
        server = make_server(shed=ShedPolicy(queue_limit=2, retry_after_s=3.0))
        server.add_tenant("acme")
        admitted, shed = [], []
        for index in range(6):
            try:
                admitted.append(server.submit(request_for(server, "acme", index)))
            except RateLimitError as error:
                shed.append(error)
        assert len(admitted) == 2
        assert len(shed) == 4
        assert all(error.retry_after == 3.0 for error in shed)
        with server:
            assert all(f.result().ok for f in admitted)
        snapshot = server.session("acme").snapshot()
        assert snapshot["completed"] == 2
        assert snapshot["shed"] == 4

    def test_shed_recorded_as_serve_events(self):
        server = make_server(shed=ShedPolicy(queue_limit=1))
        server.add_tenant("acme")
        server.submit(request_for(server, "acme"))
        with pytest.raises(RateLimitError):
            server.submit(request_for(server, "acme", 1))
        shed_events = [
            event
            for event in server.events
            if event.kind is EventKind.SERVE
            and event.payload.get("status") == "shed"
        ]
        assert len(shed_events) == 1
        assert shed_events[0].payload["reason"] == "queue_full"
        assert shed_events[0].payload["tenant"] == "acme"
        with server:
            pass

    def test_per_tenant_shed_policy_override(self):
        server = make_server(shed=ShedPolicy(queue_limit=1))
        server.add_tenant(TenantConfig(name="vip", shed=ShedPolicy(queue_limit=8)))
        server.add_tenant("basic")
        for index in range(4):
            server.submit(request_for(server, "vip", index))
        server.submit(request_for(server, "basic", 0))
        with pytest.raises(RateLimitError):
            server.submit(request_for(server, "basic", 1))
        with server:
            pass
        assert server.session("vip").shed_count == 0
        assert server.session("basic").shed_count == 1

    def test_breaker_opens_after_repeated_sheds(self):
        policy = ShedPolicy(
            queue_limit=1,
            breaker=BreakerPolicy(failure_threshold=2, cooldown_s=60.0),
        )
        server = make_server(shed=policy)
        server.add_tenant("acme")
        server.submit(request_for(server, "acme"))
        reasons = []
        for index in range(3):
            with pytest.raises(RateLimitError) as excinfo:
                server.submit(request_for(server, "acme", index + 1))
            reasons.append(str(excinfo.value))
        assert "queue_full" in reasons[0]
        assert "queue_full" in reasons[1]
        # two failures tripped the breaker; the third shed is the open circuit
        assert "breaker_open" in reasons[2]
        with server:
            pass

    def test_serve_convenience_marks_sheds_in_band(self):
        server = make_server(shed=ShedPolicy(queue_limit=1, retry_after_s=2.0))
        server.add_tenant("acme")
        requests = [request_for(server, "acme", index) for index in range(3)]
        server.start()
        responses = server.serve(requests)
        server.shutdown()
        assert [r.status for r in responses].count("shed") >= 1
        shed = next(r for r in responses if r.status == "shed")
        assert shed.retry_after == 2.0
        assert shed.output("summary") is None


class TestServeObservability:
    def test_collector_rolls_serve_metrics(self):
        registry = MetricsRegistry()
        server = make_server(
            collector=ObsCollector(registry), shed=ShedPolicy(queue_limit=1)
        )
        server.add_tenant("acme")
        future = server.submit(request_for(server, "acme"))
        with pytest.raises(RateLimitError):
            server.submit(request_for(server, "acme", 1))
        with server:
            future.result()
        assert registry.sum_counter("spear_serve_requests_total") == 2.0
        assert registry.sum_counter("spear_serve_shed_total") == 1.0
        latency = registry.get("spear_serve_latency_seconds", tenant="acme")
        assert latency is not None and latency.count == 1

    def test_serve_events_carry_latency_and_depth(self):
        server = make_server()
        server.add_tenant("acme")
        with server:
            server.submit(request_for(server, "acme")).result()
        (event,) = [e for e in server.events if e.kind is EventKind.SERVE]
        assert event.payload["status"] == "ok"
        assert event.payload["elapsed"] > 0.0
        assert event.payload["queue_depth"] == 0

    def test_pool_snapshot_aggregates_sessions_and_partitions(self):
        server = make_server()
        server.add_tenant("a")
        server.add_tenant("b")
        with server:
            server.submit(request_for(server, "a")).result()
            server.submit(request_for(server, "b")).result()
        snapshot = server.snapshot()
        assert snapshot["tenants"] == 2
        assert set(snapshot["sessions"]) == {"a", "b"}
        assert set(snapshot["partitions"]["partitions"]) == {"a", "b"}


class TestServePolicyWarning:
    def test_policy_with_scheduler_disabled_warns_once(self):
        server = make_server(scheduler=False)
        server.add_tenant("acme")
        with server:
            with pytest.warns(RuntimeWarning, match="SPEAR147"):
                first = server.submit(
                    ServeRequest(
                        tenant="acme",
                        pipeline="summarize",
                        context={"tweet": server.corpus[0].text},
                        deadline_s=5.0,
                    )
                )
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                second = server.submit(
                    ServeRequest(
                        tenant="acme",
                        pipeline="summarize",
                        context={"tweet": server.corpus[1].text},
                        priority="interactive",
                    )
                )
            assert first.result().ok and second.result().ok

    def test_no_warning_when_scheduler_enabled(self):
        server = make_server(scheduler=True)
        server.add_tenant("acme")
        with server, warnings.catch_warnings():
            warnings.simplefilter("error")
            response = server.submit(
                ServeRequest(
                    tenant="acme",
                    pipeline="summarize",
                    context={"tweet": server.corpus[0].text},
                    deadline_s=5.0,
                    priority="interactive",
                )
            ).result()
        assert response.ok


class TestTrafficDriver:
    def test_nominal_traffic_sheds_nothing(self):
        config = TrafficConfig(
            tenants=3, queue_limit=2, workers=2, corpus_size=CORPUS_SIZE
        )
        metrics = run_traffic(build_demo_server(config), config)
        assert metrics["submitted"] == 6
        assert metrics["served"] == 6
        assert metrics["shed"] == 0
        assert metrics["errors"] == 0
        assert metrics["latency_p99_s"] > 0.0

    def test_overload_sheds_the_exact_excess(self):
        config = TrafficConfig(
            tenants=3,
            queue_limit=2,
            workers=2,
            overload=4,
            corpus_size=CORPUS_SIZE,
        )
        metrics = run_traffic(build_demo_server(config), config)
        assert metrics["submitted"] == 24
        assert metrics["served"] == 6
        # exactly (overload - 1) * limit sheds per tenant, no deadlock
        assert metrics["shed"] == 18
        assert metrics["shed_rate"] == 0.75

    def test_traffic_metrics_are_deterministic_in_sim_time(self):
        config = TrafficConfig(
            tenants=2, queue_limit=2, workers=2, corpus_size=CORPUS_SIZE
        )
        first = run_traffic(build_demo_server(config), config)
        second = run_traffic(build_demo_server(config), config)
        assert first["latency_p50_s"] == second["latency_p50_s"]
        assert first["latency_p99_s"] == second["latency_p99_s"]
        for name in config.tenant_names():
            assert (
                first["sessions"][name]["clock"]
                == second["sessions"][name]["clock"]
            )
