"""Tests for the SPEAR-DL lexer."""

import pytest

from repro.dl.lexer import TokenType, tokenize
from repro.errors import DslSyntaxError


def _types(source):
    return [token.type for token in tokenize(source)]


class TestTokens:
    def test_names_and_punctuation(self):
        types = _types('GEN["x"]')
        assert types == [
            TokenType.NAME,
            TokenType.LBRACKET,
            TokenType.STRING,
            TokenType.RBRACKET,
            TokenType.EOF,
        ]

    def test_double_and_single_quoted_strings(self):
        tokens = tokenize('"double" \'single\'')
        assert tokens[0].value == "double"
        assert tokens[1].value == "single"

    def test_triple_quoted_strings_span_lines(self):
        tokens = tokenize('"""line one\nline two"""')
        assert tokens[0].value == "line one\nline two"

    def test_escapes_in_strings(self):
        tokens = tokenize(r'"say \"hi\"\nthere"')
        assert tokens[0].value == 'say "hi"\nthere'

    def test_numbers_int_float_negative(self):
        tokens = tokenize("0.7 42 -3")
        assert [t.value for t in tokens[:3]] == ["0.7", "42", "-3"]
        assert all(t.type is TokenType.NUMBER for t in tokens[:3])

    def test_arrow(self):
        assert _types("->")[0] is TokenType.ARROW

    def test_comparison_operators(self):
        types = _types("< >")
        assert types[:2] == [TokenType.LT, TokenType.GT]

    def test_comments_skipped(self):
        tokens = tokenize("GEN # a comment\nRET")
        assert [t.value for t in tokens[:2]] == ["GEN", "RET"]

    def test_positions_tracked(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(DslSyntaxError):
            tokenize('"never closed')

    def test_unterminated_triple_string(self):
        with pytest.raises(DslSyntaxError):
            tokenize('"""open forever')

    def test_newline_in_single_quoted_string(self):
        with pytest.raises(DslSyntaxError):
            tokenize('"line\nbreak"')

    def test_unexpected_character(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            tokenize("GEN[`]")
        assert excinfo.value.line == 1

    def test_malformed_number(self):
        with pytest.raises(DslSyntaxError):
            tokenize("1.2.3")

    def test_error_reports_position(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            tokenize("ok\n   `")
        assert excinfo.value.line == 2
        assert excinfo.value.column == 4
