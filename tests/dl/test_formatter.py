"""Tests for the SPEAR-DL formatter, including parse↔format round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import format_program, parse
from repro.dl.ast_nodes import ConditionNode, OpCall
from repro.dl.formatter import format_op_call

SOURCE = '''view base() {
  """shared scaffold"""
}

view med_summary(drug) extends base {
  """### Task
Summarize any use of {drug}.
Notes:
{initial_notes}"""
  tags: clinical, summary
}

pipeline qa {
  RET["initial_notes", query="p0001"]
  VIEW["med_summary", key="qa", params={drug: "Enoxaparin"}]
  GEN["answer_0", prompt="qa", max_tokens=30]
  CHECK[M["confidence"] < 0.7] -> REF[APPEND, "Be specific.", key="qa", mode="manual"]
  CHECK["orders" not in C] -> RET["order_lookup", query="p0001", into="orders"]
  MERGE["qa", "qa", into="merged", strategy="concat"]
  DELEGATE["validator", payload="answer_0", into="score"]
}
'''


class TestFormatOpCall:
    def test_positional_and_kwargs(self):
        call = OpCall(name="GEN", args=("out",), kwargs={"prompt": "qa", "max_tokens": 5})
        assert format_op_call(call) == 'GEN["out", prompt="qa", max_tokens=5]'

    def test_condition_rendered_in_paper_notation(self):
        call = OpCall(
            name="CHECK",
            args=(ConditionNode(kind="metadata_cmp", key="conf", op="<", value=0.7),),
        )
        assert format_op_call(call) == 'CHECK[M["conf"] < 0.7]'

    def test_context_condition(self):
        call = OpCall(
            name="CHECK", args=(ConditionNode(kind="context_missing", key="orders"),)
        )
        assert format_op_call(call) == 'CHECK["orders" not in C]'

    def test_booleans_and_dicts(self):
        call = OpCall(name="OP", kwargs={"flag": True, "params": {"a": 1}})
        assert format_op_call(call) == "OP[flag=true, params={a: 1}]"

    def test_multiline_strings_triple_quoted(self):
        call = OpCall(name="REF", args=("APPEND", "line 1\nline 2"), kwargs={"key": "qa"})
        assert '"""line 1\nline 2"""' in format_op_call(call)


class TestRoundTrip:
    def test_full_program_round_trips(self):
        program = parse(SOURCE)
        reparsed = parse(format_program(program))
        assert reparsed == program

    def test_format_is_idempotent(self):
        once = format_program(parse(SOURCE))
        twice = format_program(parse(once))
        assert once == twice


# -- property-based round-trips over generated programs ---------------------

_names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
_safe_strings = st.text(
    alphabet=st.characters(
        min_codepoint=32,
        max_codepoint=126,
        blacklist_characters='"\\{}',
    ),
    min_size=1,
    max_size=25,
)
_numbers = st.one_of(
    st.integers(min_value=-999, max_value=999),
    st.floats(
        min_value=-99.0, max_value=99.0, allow_nan=False, allow_infinity=False
    ),
)
_conditions = st.one_of(
    st.builds(
        ConditionNode,
        kind=st.just("metadata_cmp"),
        key=_names,
        op=st.sampled_from(["<", ">"]),
        value=st.floats(min_value=0, max_value=10, allow_nan=False),
    ),
    st.builds(ConditionNode, kind=st.just("context_missing"), key=_names),
    st.builds(ConditionNode, kind=st.just("context_present"), key=_names),
)
_values = st.one_of(_safe_strings, _numbers, st.booleans())


@st.composite
def op_calls(draw):
    name = draw(st.sampled_from(["RET", "GEN", "REF", "MERGE", "OP"]))
    args = tuple(draw(st.lists(_values, max_size=2)))
    kwargs = draw(st.dictionaries(_names, _values, max_size=3))
    return OpCall(name=name, args=args, kwargs=kwargs)


class TestPropertyRoundTrip:
    @settings(max_examples=80)
    @given(op_calls())
    def test_op_call_round_trips_inside_pipeline(self, call):
        source = f"pipeline p {{ {format_op_call(call)} }}"
        reparsed = parse(source).pipeline("p").statements[0].op
        assert reparsed.name == call.name
        assert reparsed.kwargs == call.kwargs
        assert len(reparsed.args) == len(call.args)
        for original, parsed_back in zip(call.args, reparsed.args):
            assert parsed_back == original

    @settings(max_examples=40)
    @given(_conditions)
    def test_conditions_round_trip(self, condition):
        source = f"pipeline p {{ CHECK[{condition.text()}] }}"
        reparsed = parse(source).pipeline("p").statements[0].op.args[0]
        assert reparsed.kind == condition.kind
        assert reparsed.key == condition.key
        if condition.kind == "metadata_cmp":
            assert reparsed.op == condition.op
            assert reparsed.value == condition.value
