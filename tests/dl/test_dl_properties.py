"""Property-based round trips over generated SPEAR-DL programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import format_program, parse
from repro.dl.ast_nodes import (
    ConditionNode,
    OpCall,
    PipelineDef,
    Program,
    Statement,
    ViewDef,
)

_names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
_safe_text = st.text(
    alphabet=st.characters(
        min_codepoint=32, max_codepoint=126, blacklist_characters='"\\{}'
    ),
    min_size=1,
    max_size=20,
)
_template_text = st.text(
    alphabet=st.characters(
        min_codepoint=32, max_codepoint=126, blacklist_characters='"\\'
    ),
    min_size=1,
    max_size=40,
).map(str.strip).filter(bool)

_conditions = st.one_of(
    st.builds(
        ConditionNode,
        kind=st.just("metadata_cmp"),
        key=_names,
        op=st.sampled_from(["<", ">"]),
        value=st.floats(min_value=0, max_value=5, allow_nan=False),
    ),
    st.builds(ConditionNode, kind=st.just("context_missing"), key=_names),
)


@st.composite
def statements(draw):
    op = OpCall(
        name=draw(st.sampled_from(["RET", "GEN", "MERGE"])),
        args=tuple(draw(st.lists(_safe_text, min_size=1, max_size=2))),
        kwargs=draw(st.dictionaries(_names, _safe_text, max_size=2)),
    )
    if draw(st.booleans()):
        check = OpCall(name="CHECK", args=(draw(_conditions),))
        then = OpCall(
            name="REF",
            args=("APPEND", draw(_safe_text)),
            kwargs={"key": draw(_names)},
        )
        return Statement(op=check, then=then)
    return Statement(op=op)


@st.composite
def programs(draw):
    view_names = draw(st.lists(_names, min_size=0, max_size=3, unique=True))
    views = []
    for index, name in enumerate(view_names):
        base = view_names[index - 1] if index > 0 and draw(st.booleans()) else None
        views.append(
            ViewDef(
                name=name,
                params=tuple(
                    draw(st.lists(_names, max_size=2, unique=True))
                ),
                template=draw(_template_text),
                base=base,
                tags=tuple(draw(st.lists(_names, max_size=2, unique=True))),
            )
        )
    pipeline_names = draw(st.lists(_names, min_size=1, max_size=2, unique=True))
    pipelines = tuple(
        PipelineDef(
            name=name,
            statements=tuple(
                draw(st.lists(statements(), min_size=1, max_size=4))
            ),
        )
        for name in pipeline_names
    )
    return Program(views=tuple(views), pipelines=pipelines)


class TestProgramRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(programs())
    def test_format_parse_round_trip(self, program):
        reparsed = parse(format_program(program))
        assert reparsed == program

    @settings(max_examples=40, deadline=None)
    @given(programs())
    def test_formatting_idempotent(self, program):
        once = format_program(program)
        twice = format_program(parse(once))
        assert once == twice
