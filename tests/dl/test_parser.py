"""Tests for the SPEAR-DL parser."""

import pytest

from repro.dl.ast_nodes import ConditionNode
from repro.dl.parser import parse
from repro.errors import DslSyntaxError


class TestViewDefs:
    def test_basic_view(self):
        program = parse('view v(drug) { """text {drug}""" }')
        view = program.view("v")
        assert view.params == ("drug",)
        assert view.template == "text {drug}"
        assert view.base is None

    def test_view_with_extends_and_tags(self):
        source = (
            'view base() { """b""" }\n'
            'view child(x) extends base { """c {x}""" tags: clinical, summary }'
        )
        program = parse(source)
        child = program.view("child")
        assert child.base == "base"
        assert child.tags == ("clinical", "summary")

    def test_view_without_params(self):
        program = parse('view v() { """t""" }')
        assert program.view("v").params == ()


class TestPipelines:
    def test_simple_pipeline(self):
        program = parse(
            'pipeline p {\n  RET["notes", query="p1"]\n  GEN["out", prompt="qa"]\n}'
        )
        pipeline = program.pipeline("p")
        assert [stmt.op.name for stmt in pipeline.statements] == ["RET", "GEN"]
        assert pipeline.statements[0].op.args == ("notes",)
        assert pipeline.statements[0].op.kwargs == {"query": "p1"}

    def test_check_arrow_statement(self):
        program = parse(
            'pipeline p { CHECK[M["confidence"] < 0.7] -> REF[APPEND, "hint", key="qa"] }'
        )
        statement = program.pipeline("p").statements[0]
        assert statement.op.name == "CHECK"
        assert statement.then is not None
        assert statement.then.name == "REF"

    def test_metadata_condition_node(self):
        program = parse('pipeline p { CHECK[M["conf"] > 2] }')
        condition = program.pipeline("p").statements[0].op.args[0]
        assert isinstance(condition, ConditionNode)
        assert condition.kind == "metadata_cmp"
        assert condition.op == ">"
        assert condition.value == 2.0
        assert condition.text() == 'M["conf"] > 2.0'

    def test_context_conditions(self):
        program = parse(
            'pipeline p { CHECK["orders" not in C] CHECK["answer" in C] }'
        )
        missing, present = (
            stmt.op.args[0] for stmt in program.pipeline("p").statements
        )
        assert missing.kind == "context_missing"
        assert missing.text() == '"orders" not in C'
        assert present.kind == "context_present"

    def test_dict_arguments(self):
        program = parse(
            'pipeline p { VIEW["v", params={drug: "Enoxaparin", days: 3}] }'
        )
        kwargs = program.pipeline("p").statements[0].op.kwargs
        assert kwargs["params"] == {"drug": "Enoxaparin", "days": 3}

    def test_boolean_names(self):
        program = parse("pipeline p { OP[flag=true, other=false] }")
        kwargs = program.pipeline("p").statements[0].op.kwargs
        assert kwargs == {"flag": True, "other": False}

    def test_numbers_parsed_as_numbers(self):
        program = parse("pipeline p { GEN[\"x\", prompt=\"q\", max_tokens=30] }")
        assert program.pipeline("p").statements[0].op.kwargs["max_tokens"] == 30

    def test_mixed_views_and_pipelines(self):
        source = 'view v() { """t""" }\npipeline p { VIEW["v"] }\npipeline q { VIEW["v"] }'
        program = parse(source)
        assert len(program.views) == 1
        assert len(program.pipelines) == 2
        assert program.pipeline("missing") is None


class TestParseErrors:
    def test_arrow_without_target(self):
        with pytest.raises(DslSyntaxError):
            parse("pipeline p { CHECK[M[\"c\"] < 1] -> }")

    def test_missing_bracket(self):
        with pytest.raises(DslSyntaxError):
            parse('pipeline p { GEN["x" }')

    def test_top_level_garbage(self):
        with pytest.raises(DslSyntaxError):
            parse("banana split")

    def test_view_requires_template_string(self):
        with pytest.raises(DslSyntaxError):
            parse("view v() { tags: a }")

    def test_condition_requires_comparator(self):
        with pytest.raises(DslSyntaxError):
            parse('pipeline p { CHECK[M["c"] = 1] }')
