"""Tests for the SPEAR-DL compiler: lowering to views and operators."""

import pytest

from repro.core import CHECK, DELEGATE, GEN, MERGE, REF, RET, ExecutionState
from repro.core.derived import DIFF, VIEW
from repro.dl import compile_source
from repro.errors import DslCompileError


class TestViewCompilation:
    def test_views_registered(self):
        compiled = compile_source('view v(drug) { """use {drug}""" tags: t }')
        assert "v" in compiled.views
        assert compiled.views.expand("v", {"drug": "X"}) == "use X"
        assert compiled.views.with_tag("t") == ["v"]

    def test_extends_chain(self):
        compiled = compile_source(
            'view base() { """BASE""" }\nview child() extends base { """CHILD""" }'
        )
        assert compiled.views.expand("child") == "BASE\nCHILD"


class TestOperatorLowering:
    def test_all_core_operators_lower(self):
        source = """
        view v() { \"\"\"text\"\"\" }
        pipeline p {
          RET["src", query="q"]
          VIEW["v", key="qa"]
          REF[APPEND, "more", key="qa", mode="manual"]
          EXPAND["qa", "extra"]
          GEN["out", prompt="qa", max_tokens=10]
          CHECK[M["confidence"] < 0.7] -> REF[APPEND, "hint", key="qa"]
          MERGE["qa", "qa", into="merged"]
          DIFF["qa", "merged", into="d"]
          DELEGATE["agent", payload="out", into="score"]
        }
        """
        compiled = compile_source(source)
        ops = list(compiled.pipeline("p"))
        assert isinstance(ops[0], RET)
        assert isinstance(ops[1], VIEW)
        assert isinstance(ops[2], REF)
        assert isinstance(ops[4], GEN)
        assert isinstance(ops[5], CHECK)
        assert isinstance(ops[6], MERGE)
        assert isinstance(ops[7], DIFF)
        assert isinstance(ops[8], DELEGATE)

    def test_check_condition_text_matches_paper_notation(self):
        compiled = compile_source(
            'pipeline p { CHECK[M["confidence"] < 0.7] -> REF[APPEND, "h", key="qa"] }'
        )
        check = compiled.pipeline("p")[0]
        assert check.cond.text == 'M["confidence"] < 0.7'

    def test_check_greater_than_and_context_conditions(self):
        compiled = compile_source(
            'pipeline p { CHECK[M["retries"] > 2] CHECK["orders" not in C] }'
        )
        state = ExecutionState()
        state.metadata.set("retries", 3)
        assert compiled.pipeline("p")[0].cond(state)
        assert compiled.pipeline("p")[1].cond(state)

    def test_gen_without_prompt_rejected(self):
        with pytest.raises(DslCompileError):
            compile_source('pipeline p { GEN["out"] }')

    def test_ref_requires_key(self):
        with pytest.raises(DslCompileError):
            compile_source('pipeline p { REF[APPEND, "x"] }')

    def test_ref_unknown_action(self):
        with pytest.raises(DslCompileError):
            compile_source('pipeline p { REF[SHUFFLE, "x", key="qa"] }')

    def test_unknown_operator(self):
        with pytest.raises(DslCompileError) as excinfo:
            compile_source("pipeline p { TELEPORT[\"x\"] }")
        assert "TELEPORT" in str(excinfo.value)

    def test_view_must_exist(self):
        with pytest.raises(DslCompileError):
            compile_source('pipeline p { VIEW["ghost"] }')

    def test_arrow_only_after_check(self):
        with pytest.raises(DslCompileError):
            compile_source(
                'pipeline p { RET["x"] -> REF[APPEND, "y", key="qa"] }'
            )

    def test_ret_unknown_kwargs_rejected(self):
        with pytest.raises(DslCompileError):
            compile_source('pipeline p { RET["x", frobnicate=1] }')

    def test_unknown_pipeline_lookup(self):
        compiled = compile_source("pipeline p { RET[\"x\"] }")
        with pytest.raises(DslCompileError):
            compiled.pipeline("q")


class TestEndToEnd:
    def test_full_clinical_pipeline_runs(self, state):
        source = """
        view med_summary(drug) {
          \"\"\"### Task
Summarize the patient's medication history and highlight any use of {drug}.
Notes:
{initial_notes}\"\"\"
        }
        pipeline qa {
          RET["initial_notes", query="p0001"]
          VIEW["med_summary", key="qa", params={drug: "Enoxaparin"}]
          GEN["answer_0", prompt="qa"]
          CHECK[M["confidence"] < 0.99] -> REF[APPEND, "Be specific about dosage.", key="qa"]
          GEN["answer_1", prompt="qa"]
          DELEGATE["validation_agent", payload="answer_1", into="evidence"]
        }
        """
        compiled = compile_source(source)
        # Adopt the compiled views into the fixture state.
        state._views = compiled.views
        final = compiled.pipeline("qa").apply(state)
        assert "answer_0" in final.C
        assert "answer_1" in final.C
        assert "evidence_score" in final.C["evidence"]
        assert final.prompts["qa"].version >= 1


class TestRetryLowering:
    def test_retry_compiles_and_runs(self, state, tweet_corpus):
        source = '''
        pipeline retrying {
          REF[CREATE, "Select the tweet only if its sentiment is negative. Respond with yes or no.\\nTweet:\\n{tweet}", key="qa"]
          RETRY[GEN["verdict", prompt="qa"], M["confidence"] < 0.99, refine=REF[APPEND, "Think carefully.", key="qa"], max_retries=1]
        }
        '''
        compiled = compile_source(source)
        state.context.put("tweet", tweet_corpus[0].text)
        final = compiled.pipeline("retrying").apply(state)
        assert "verdict" in final.C
        assert final.M["gen_calls"] >= 1

    def test_retry_requires_operator_first(self):
        with pytest.raises(DslCompileError):
            compile_source('pipeline p { RETRY["not an op", M["c"] < 1] }')

    def test_retry_requires_condition_second(self):
        with pytest.raises(DslCompileError):
            compile_source('pipeline p { RETRY[GEN["x", prompt="q"], "nope"] }')

    def test_retry_max_retries_must_be_int(self):
        with pytest.raises(DslCompileError):
            compile_source(
                'pipeline p { RETRY[GEN["x", prompt="q"], M["c"] < 1, max_retries="two"] }'
            )

    def test_nested_op_round_trips_through_formatter(self):
        from repro.dl import format_program, parse

        source = (
            'pipeline p { RETRY[GEN["x", prompt="q"], M["c"] < 0.5, '
            'refine=REF[APPEND, "t", key="q"], max_retries=3] }'
        )
        assert parse(format_program(parse(source))) == parse(source)


class TestListSyntaxAndOptimizerOps:
    def test_list_literals_parse(self):
        from repro.dl import parse

        program = parse('pipeline p { OP[items=["a", "b", 3]] }')
        assert program.pipeline("p").statements[0].op.kwargs["items"] == ["a", "b", 3]

    def test_list_round_trips_through_formatter(self):
        from repro.dl import format_program, parse

        source = 'pipeline p { OP[items=["a", "b", 3], flag=true] }'
        assert parse(format_program(parse(source))) == parse(source)

    def test_select_view_lowers_and_runs(self, state):
        source = '''
        view generic() { """### Task
Answer questions about the patient chart below.
Notes:
{notes}""" }
        view med_focused() { """### Task
Highlight any use of enoxaparin; be specific about dosage and timing.
Notes:
{notes}""" }
        pipeline p {
          SELECT_VIEW[candidates=["generic", "med_focused"], terms=["enoxaparin", "dosage", "timing"], key="qa"]
          GEN["answer", prompt="qa"]
        }
        '''
        from repro.dl import compile_source

        compiled = compile_source(source)
        state._views = compiled.views
        patient_notes = state.source("initial_notes")(state, "p0001")
        state.context.put("notes", patient_notes)
        final = compiled.pipeline("p").apply(state)
        assert final.metadata["selected_view"] == "med_focused"
        assert "answer" in final.C

    def test_select_view_validates_candidates(self):
        from repro.dl import compile_source

        with pytest.raises(DslCompileError):
            compile_source(
                'pipeline p { SELECT_VIEW[candidates=["ghost"], terms=["x"], key="qa"] }'
            )

    def test_fused_gen_lowers_and_runs(self, state, clinical_corpus):
        source = '''
        view chart_q(question) { """### Task
You are reviewing the chart of one patient.
Notes:
{notes}
Question: {question}""" }
        pipeline p {
          VIEW["chart_q", key="q1", params={question: "Highlight any use of Enoxaparin; be specific about dosage."}]
          VIEW["chart_q", key="q2", params={question: "Highlight any use of Enoxaparin; state the timing."}]
          FUSED_GEN[labels=["dosage", "timing"], prompts=["q1", "q2"]]
        }
        '''
        from repro.dl import compile_source

        compiled = compile_source(source)
        state._views = compiled.views
        patient = next(p for p in clinical_corpus if p.on_enoxaparin)
        state.context.put(
            "notes", "\n".join(note.text for note in patient.notes)
        )
        final = compiled.pipeline("p").apply(state)
        assert "dosage" in final.C and "timing" in final.C
        assert final.M["gen_calls"] == 1

    def test_fused_gen_validates_lengths(self):
        from repro.dl import compile_source

        with pytest.raises(DslCompileError):
            compile_source(
                'pipeline p { FUSED_GEN[labels=["a"], prompts=["q1", "q2"]] }'
            )


class TestSourceSpans:
    SOURCE = """pipeline spanned {
  REF[CREATE, "text", key="qa"]
  GEN["answer", prompt="qa"]
  CHECK[M["confidence"] < 0.5] -> REF[APPEND, "more", key="qa"]
}
"""

    def test_operators_carry_spans(self):
        compiled = compile_source(self.SOURCE, filename="spanned.spear")
        ops = compiled.pipeline("spanned").operators
        spans = [op.span for op in ops]
        assert all(span is not None for span in spans)
        assert [span.line for span in spans] == [2, 3, 4]
        assert all(span.file == "spanned.spear" for span in spans)
        assert all(span.column >= 3 for span in spans)

    def test_span_renders_file_line_col(self):
        compiled = compile_source(self.SOURCE, filename="spanned.spear")
        span = compiled.pipeline("spanned").operators[0].span
        assert span.render() == f"spanned.spear:{span.line}:{span.column}"

    def test_compile_error_carries_position(self):
        source = 'pipeline p {\n  TELEPORT["x"]\n}'
        with pytest.raises(DslCompileError) as excinfo:
            compile_source(source, filename="bad.spear")
        err = excinfo.value
        assert err.line == 2
        assert err.column == 3
        assert err.file == "bad.spear"
        assert "bad.spear:2:3" in str(err)

    def test_filename_defaults_to_source_placeholder(self):
        compiled = compile_source(self.SOURCE)
        span = compiled.pipeline("spanned").operators[0].span
        assert span.render().startswith("<source>:")
