"""Tests for cost-based view selection (view-guided refinement, §5)."""

import pytest

from repro.core.views import ViewRegistry
from repro.errors import PlanningError
from repro.optimizer.view_selection import refine_missing_terms, select_view


@pytest.fixture
def registry():
    views = ViewRegistry()
    views.define(
        "general",
        "### Task\nAnswer questions about the patient chart.",
    )
    views.define(
        "med_focused",
        "### Task\nAnswer questions about medications, dosage, and timing "
        "from the patient chart.",
    )
    views.define(
        "radiology",
        "### Task\nDescribe imaging findings and impressions.",
    )
    return views


class TestSelectView:
    def test_picks_view_covering_most_required_terms(self, registry):
        winner, scores = select_view(
            registry,
            ["general", "med_focused", "radiology"],
            ["dosage", "timing"],
        )
        assert winner == "med_focused"
        assert scores[0].missing_terms == ()

    def test_scores_sorted_best_first(self, registry):
        __, scores = select_view(
            registry, ["general", "med_focused"], ["dosage"]
        )
        assert scores[0].total_cost <= scores[1].total_cost

    def test_base_length_breaks_ties(self, registry):
        registry.define("verbose", "word " * 300 + "nothing relevant")
        winner, __ = select_view(registry, ["general", "verbose"], ["dosage"])
        assert winner == "general"

    def test_term_matching_case_insensitive(self, registry):
        winner, scores = select_view(registry, ["med_focused"], ["DOSAGE"])
        assert scores[0].missing_terms == ()

    def test_empty_candidates_rejected(self, registry):
        with pytest.raises(PlanningError):
            select_view(registry, [], ["x"])

    def test_parameterized_views_expanded_before_scoring(self):
        views = ViewRegistry()
        views.define("param", "Focus on {topic}.", params=("topic",))
        winner, scores = select_view(
            views, ["param"], ["dosage"], params={"topic": "dosage"}
        )
        assert scores[0].missing_terms == ()


class TestRefineMissingTerms:
    def test_covered_view_needs_no_refinement(self, registry):
        __, scores = select_view(registry, ["med_focused"], ["dosage"])
        assert refine_missing_terms(scores[0]) is None

    def test_refinement_text_lists_missing_terms(self, registry):
        __, scores = select_view(registry, ["general"], ["dosage", "timing"])
        text = refine_missing_terms(scores[0])
        assert "dosage" in text and "timing" in text

    def test_refined_view_then_covers_terms(self, registry):
        __, scores = select_view(registry, ["general"], ["dosage"])
        refined = registry.expand("general") + "\n" + refine_missing_terms(scores[0])
        __, rescored = select_view_with_text(refined, ["dosage"])
        assert rescored == ()


def select_view_with_text(text, required_terms):
    """Helper: score an already-expanded text against required terms."""
    from repro.optimizer.view_selection import _missing_terms

    return None, _missing_terms(text, required_terms)


class TestSelectViewOperator:
    @pytest.fixture
    def wired_state(self, llm, registry):
        from repro.core import ExecutionState

        state = ExecutionState(model=llm, clock=llm.clock, views=registry)
        return state

    def test_instantiates_winner_into_store(self, wired_state):
        from repro.optimizer import SelectView

        state = SelectView(
            ["general", "med_focused", "radiology"],
            ["dosage", "timing"],
            key="qa",
        ).apply(wired_state)
        assert state.prompts["qa"].view == "med_focused"
        assert state.metadata["selected_view"] == "med_focused"

    def test_missing_terms_covered_by_refinement(self, wired_state):
        from repro.optimizer import SelectView

        state = SelectView(
            ["radiology"], ["dosage", "timing"], key="qa"
        ).apply(wired_state)
        text = state.prompts.text("qa").lower()
        assert "dosage" in text and "timing" in text
        assert state.prompts["qa"].ref_log[-1].function == "f_cover_missing_terms"

    def test_replaces_existing_key_with_history(self, wired_state):
        from repro.optimizer import SelectView

        wired_state.prompts.create("qa", "old prompt")
        state = SelectView(
            ["med_focused"], ["dosage"], key="qa"
        ).apply(wired_state)
        assert state.prompts["qa"].text_at(0) == "old prompt"
        assert state.prompts["qa"].view == "med_focused"

    def test_plan_event_records_scores(self, wired_state):
        from repro.optimizer import SelectView
        from repro.runtime.events import EventKind

        state = SelectView(
            ["general", "med_focused"], ["dosage"], key="qa"
        ).apply(wired_state)
        event = state.events.last(EventKind.PLAN)
        assert event.payload["winner"] == "med_focused"
        assert set(event.payload["scores"]) == {"general", "med_focused"}

    def test_selected_prompt_generates(self, wired_state, clinical_corpus):
        from repro.core import GEN
        from repro.optimizer import SelectView

        patient = next(p for p in clinical_corpus if p.on_enoxaparin)
        notes = "\n".join(note.text for note in patient.notes)
        wired_state.views.define(
            "enox_focused",
            "### Task\nHighlight any use of enoxaparin; be specific about "
            "dosage and timing.\nNotes:\n{notes}",
        )
        state = SelectView(
            ["general", "enox_focused"],
            ["enoxaparin", "dosage", "timing"],
            key="qa",
        ).apply(wired_state)
        state.context.put("notes", notes)
        state = GEN("answer", prompt="qa").apply(state)
        assert "Enoxaparin" in state.C["answer"]
