"""Tests for cost-based refinement planning and predictive refinement."""

import pytest

from repro.core import EXPAND, ExecutionState, RefAction
from repro.errors import PlanningError
from repro.llm.profiles import get_profile
from repro.optimizer.planner import CandidateRefiner, RefinementPlanner
from repro.optimizer.predictive import (
    HeuristicRiskModel,
    OnlineRiskModel,
    PredictiveRefine,
)

QWEN = get_profile("qwen2.5-7b-instruct")


def _candidate(name, text, prior=0.05):
    return CandidateRefiner(
        name=name,
        build=lambda: EXPAND("qa", text),
        est_cost_tokens=len(text.split()),
        prior_gain=prior,
    )


def _seed_history(state, function, deltas):
    """Record past applications of ``function`` with given confidence deltas."""
    entry = state.prompts["qa"]
    for delta in deltas:
        record = entry.record(
            RefAction.APPEND,
            entry.text + "\nx",
            function=function,
            signals={"confidence": 0.5},
        )
        record.signals["outcome_confidence"] = 0.5 + delta


class TestPlanner:
    def test_plan_orders_by_utility_and_respects_budget(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        candidates = [
            _candidate("cheap_good", "short hint", prior=0.10),
            _candidate("expensive_good", "a much longer refinement " * 5, prior=0.12),
            _candidate("cheap_ok", "tiny", prior=0.05),
        ]
        plan = RefinementPlanner().plan(state, candidates, budget_tokens=15)
        chosen = [step.refiner.name for step in plan.steps]
        assert chosen[0] == "cheap_good"
        assert "expensive_good" in plan.skipped  # does not fit the budget
        assert plan.total_cost_tokens <= 15

    def test_history_outweighs_prior(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        _seed_history(state, "proven", [0.3, 0.25, 0.28])
        _seed_history(state, "dud", [-0.2, -0.15])
        candidates = [
            _candidate("proven", "proven hint", prior=0.01),
            _candidate("dud", "dud hint", prior=0.20),
        ]
        plan = RefinementPlanner().plan(state, candidates, budget_tokens=100)
        chosen = [step.refiner.name for step in plan.steps]
        assert chosen[0] == "proven"

    def test_negative_expected_gain_skipped_outright(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        _seed_history(state, "harmful", [-0.3, -0.3, -0.3, -0.3])
        plan = RefinementPlanner().plan(
            state, [_candidate("harmful", "bad idea", prior=0.0)], budget_tokens=100
        )
        assert plan.steps == ()
        assert "harmful" in plan.skipped

    def test_plan_apply_executes_refiners(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        plan = RefinementPlanner().plan(
            state, [_candidate("add", "extra line", prior=0.2)], budget_tokens=100
        )
        state = plan.apply(state)
        assert "extra line" in state.prompts.text("qa")

    def test_plan_emits_event(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        RefinementPlanner().plan(state, [_candidate("a", "x")], budget_tokens=10)
        from repro.runtime.events import EventKind

        events = state.events.of_kind(EventKind.PLAN)
        assert events and events[0].payload["chosen"] == ["a"]

    def test_negative_budget_rejected(self):
        state = ExecutionState()
        with pytest.raises(PlanningError):
            RefinementPlanner().plan(state, [], budget_tokens=-1)

    def test_from_text_estimates_cost(self):
        candidate = CandidateRefiner.from_text(
            "c", lambda: EXPAND("qa", "x"), "one two three"
        )
        assert candidate.est_cost_tokens == 3


class TestHeuristicRiskModel:
    def test_weak_prompt_riskier_than_strong(self):
        state = ExecutionState()
        state.prompts.create("weak", "tweet stuff")
        state.prompts.create(
            "strong",
            "### Task\nClassify the tweet. Respond with yes or no.\n"
            "General guidance:\n- be careful\nExample: 'x' -> yes",
        )
        model = HeuristicRiskModel(QWEN)
        assert model.predict(state, "weak") > model.predict(state, "strong")

    def test_difficulty_raises_risk(self):
        state = ExecutionState()
        state.prompts.create("p", "Classify this.")
        easy = HeuristicRiskModel(QWEN, difficulty=0.1)
        hard = HeuristicRiskModel(QWEN, difficulty=0.9)
        assert hard.predict(state, "p") > easy.predict(state, "p")


class TestOnlineRiskModel:
    def test_falls_back_before_observations(self):
        state = ExecutionState()
        state.prompts.create("p", "Classify this.")
        fallback = HeuristicRiskModel(QWEN)
        online = OnlineRiskModel(fallback)
        assert online.predict(state, "p") == fallback.predict(state, "p")

    def test_learns_from_observations(self):
        state = ExecutionState()
        state.prompts.create("p", "Classify this.")
        online = OnlineRiskModel(HeuristicRiskModel(QWEN))
        for confidence in (0.9, 0.95, 0.85):
            online.observe(state, "p", confidence)
        assert online.observations() == 3
        assert online.predict(state, "p") == pytest.approx(1 - 0.9, abs=0.01)

    def test_feature_level_generalization(self):
        # Two prompts with identical features share learned risk.
        state = ExecutionState()
        state.prompts.create("p1", "Classify the text now please today")
        state.prompts.create("p2", "Classify the note now please today")
        online = OnlineRiskModel(HeuristicRiskModel(QWEN))
        online.observe(state, "p1", 0.9)
        assert online.predict(state, "p2") == pytest.approx(0.1)


class TestPredictiveRefine:
    def test_refines_when_risk_high(self):
        state = ExecutionState()
        state.prompts.create("qa", "judge this")  # weak prompt, high risk
        op = PredictiveRefine(
            "qa",
            HeuristicRiskModel(QWEN),
            EXPAND("qa", "Respond with yes or no."),
            threshold=0.1,
        )
        state = op.apply(state)
        assert "Respond with yes or no." in state.prompts.text("qa")
        assert state.metadata["predictive_refinements"] == 1
        assert state.metadata["predicted_risk"] > 0.1

    def test_skips_when_risk_low(self):
        state = ExecutionState()
        state.prompts.create("qa", "judge this")
        op = PredictiveRefine(
            "qa", HeuristicRiskModel(QWEN), EXPAND("qa", "extra"), threshold=0.99
        )
        state = op.apply(state)
        assert state.prompts.text("qa") == "judge this"
        assert "predictive_refinements" not in state.metadata

    def test_refinement_factory_supported(self):
        state = ExecutionState()
        state.prompts.create("qa", "judge this")
        op = PredictiveRefine(
            "qa",
            HeuristicRiskModel(QWEN),
            lambda: EXPAND("qa", "factory-made"),
            threshold=0.0,
        )
        state = op.apply(state)
        assert "factory-made" in state.prompts.text("qa")
