"""Property-based tests for the fusion planner and cost model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.profiles import PROFILES, get_profile
from repro.optimizer.cost_model import CostModel
from repro.optimizer.fusion import FusionPlanner, LlmStage

QWEN = get_profile("qwen2.5-7b-instruct")

_selectivities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
_output_tokens = st.integers(min_value=1, max_value=60)


def _stages(map_tokens: int, filter_tokens: int) -> tuple[LlmStage, LlmStage]:
    map_stage = LlmStage(
        kind="map",
        instruction="Summarize and clean up the item in at most 30 words.",
        expected_output_tokens=map_tokens,
    )
    filter_stage = LlmStage(
        kind="filter",
        instruction="Select the item only if its sentiment is negative.",
        expected_output_tokens=filter_tokens,
    )
    return map_stage, filter_stage


class TestPlannerProperties:
    @settings(max_examples=60)
    @given(_selectivities, _output_tokens)
    def test_estimates_always_positive(self, selectivity, map_tokens):
        map_stage, filter_stage = _stages(map_tokens, 3)
        decision = FusionPlanner(QWEN).decide(
            filter_stage, map_stage, selectivity=selectivity
        )
        assert decision.est_sequential_s > 0
        assert decision.est_fused_s > 0
        assert decision.fuse == (decision.est_fused_s < decision.est_sequential_s)

    @settings(max_examples=40)
    @given(st.integers(min_value=8, max_value=60), st.data())
    def test_filter_map_gain_monotone_in_selectivity(self, map_tokens, data):
        # Monotonicity holds when the map output exceeds the fused plan's
        # "Summary: N/A" stub (the realistic regime); a map stage emitting
        # fewer tokens than the stub would invert the trade-off.
        # Token-count rounding makes the estimate stepwise, so strict local
        # monotonicity can dip by one decode-token; assert the coarse trend
        # over a selectivity gap instead.
        map_stage, filter_stage = _stages(map_tokens, 3)
        planner = FusionPlanner(QWEN)
        low = data.draw(st.floats(min_value=0.0, max_value=0.4, allow_nan=False))
        high = data.draw(
            st.floats(min_value=low + 0.25, max_value=1.0, allow_nan=False)
        )
        gain_low = planner.decide(filter_stage, map_stage, selectivity=low).est_gain
        gain_high = planner.decide(filter_stage, map_stage, selectivity=high).est_gain
        assert gain_high >= gain_low - 1e-9

    @settings(max_examples=30)
    @given(_selectivities)
    def test_every_profile_plans_without_error(self, selectivity):
        map_stage, filter_stage = _stages(22, 3)
        for name in PROFILES:
            decision = FusionPlanner(get_profile(name)).decide(
                map_stage, filter_stage, selectivity=selectivity
            )
            assert decision.order == "map_filter"


class TestCostModelProperties:
    @settings(max_examples=60)
    @given(
        st.text(alphabet="ab ", min_size=1, max_size=300),
        st.integers(min_value=0, max_value=100),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_caching_never_increases_cost(self, text, output_tokens, fraction):
        model = CostModel(QWEN)
        cold = model.call(text, expected_output_tokens=output_tokens)
        warm = model.call(
            text,
            expected_output_tokens=output_tokens,
            expected_cache_fraction=fraction,
        )
        assert warm.seconds <= cold.seconds + 1e-9
        assert warm.prompt_tokens == cold.prompt_tokens

    @settings(max_examples=60)
    @given(st.integers(min_value=0, max_value=100), st.integers(min_value=1, max_value=100))
    def test_more_output_costs_more(self, base_tokens, extra):
        model = CostModel(QWEN)
        small = model.call("prompt text", expected_output_tokens=base_tokens)
        large = model.call("prompt text", expected_output_tokens=base_tokens + extra)
        assert large.seconds > small.seconds
