"""Tests for GEN fusion (paper §5): FusedGen and the selective rewrite."""

import pytest

from repro.core import ExecutionState, GEN, Pipeline, RET
from repro.core.derived import VIEW
from repro.errors import OperatorError
from repro.optimizer.gen_fusion import FusedGen, fuse_gens, shared_prefix


@pytest.fixture
def sectioned_state(state, clinical_corpus):
    patient = next(p for p in clinical_corpus if p.on_enoxaparin)
    state.context.put(
        "notes", "\n".join(note.text for note in patient.notes)
    )
    state.views.define(
        "chart_question",
        "### Task\nYou are reviewing the chart of one patient.\n"
        "Notes:\n{notes}\nQuestion: {question}",
        params=("question",),
    )
    state = VIEW(
        "chart_question",
        key="q_dosage",
        params={"question": "Highlight any use of Enoxaparin; be specific about dosage."},
    ).apply(state)
    state = VIEW(
        "chart_question",
        key="q_timing",
        params={"question": "Highlight any use of Enoxaparin; state the timing."},
    ).apply(state)
    return state


class TestSharedPrefix:
    def test_common_lines_extracted(self):
        prefix = shared_prefix(["a\nb\nc", "a\nb\nd"])
        assert prefix == "a\nb"

    def test_no_common_prefix(self):
        assert shared_prefix(["x", "y"]) == ""

    def test_single_and_empty(self):
        assert shared_prefix(["only"]) == "only"
        assert shared_prefix([]) == ""

    def test_partial_line_match_not_split(self):
        # Prefix sharing is whole-line: "abc" vs "abd" share nothing.
        assert shared_prefix(["abc\nx", "abd\nx"]) == ""


class TestFusedGen:
    def test_single_call_fills_all_labels(self, sectioned_state):
        state = FusedGen([("dosage", "q_dosage"), ("timing", "q_timing")]).apply(
            sectioned_state
        )
        assert "dosage" in state.C
        assert "timing" in state.C
        assert state.M["gen_calls"] == 1

    def test_section_outputs_are_real_answers(self, sectioned_state):
        state = FusedGen([("dosage", "q_dosage"), ("timing", "q_timing")]).apply(
            sectioned_state
        )
        assert "Enoxaparin" in state.C["dosage"]
        assert "Enoxaparin" in state.C["timing"]

    def test_fused_cheaper_than_sequential_without_prefix_cache(self, clinical_corpus):
        # GEN fusion eliminates the duplicated scaffold prefill and one call
        # overhead.  Prefix caching attacks the same duplication, so the
        # clear latency win shows in the uncached regime (the paper's
        # "reduce token duplication"); with caching on, fusion's benefit is
        # call count, not latency (asserted separately below).
        from repro.llm import SimulatedLLM

        def fresh_state():
            llm = SimulatedLLM(enable_prefix_cache=False)
            llm.bind_clinical(clinical_corpus)
            state = ExecutionState(model=llm, clock=llm.clock)
            patient = next(p for p in clinical_corpus if p.on_enoxaparin)
            state.context.put(
                "notes", "\n".join(note.text for note in patient.notes)
            )
            state.views.define(
                "chart_question",
                "### Task\nYou are reviewing the chart of one patient.\n"
                "Notes:\n{notes}\nQuestion: {question}",
                params=("question",),
            )
            for key, question in (
                ("q_dosage", "Highlight any use of Enoxaparin; be specific about dosage."),
                ("q_timing", "Highlight any use of Enoxaparin; state the timing."),
            ):
                VIEW("chart_question", key=key, params={"question": question}).apply(state)
            return state

        fused_state = fresh_state()
        FusedGen([("dosage", "q_dosage"), ("timing", "q_timing")]).apply(fused_state)
        sequential_state = fresh_state()
        (
            GEN("dosage", prompt="q_dosage")
            >> GEN("timing", prompt="q_timing")
        ).apply(sequential_state)
        assert fused_state.clock.now < sequential_state.clock.now

    def test_requires_at_least_two_specs(self):
        with pytest.raises(OperatorError):
            FusedGen([("a", "p")])

    def test_requires_model(self):
        state = ExecutionState()
        state.prompts.create("a", "x")
        state.prompts.create("b", "y")
        with pytest.raises(OperatorError):
            FusedGen([("la", "a"), ("lb", "b")]).apply(state)

    def test_event_reports_fusion_details(self, sectioned_state):
        state = FusedGen([("dosage", "q_dosage"), ("timing", "q_timing")]).apply(
            sectioned_state
        )
        from repro.runtime.events import EventKind

        event = state.events.last(EventKind.GENERATE)
        assert event.payload["fused"] == 2
        assert event.payload["shared_prefix_chars"] > 0


class TestFuseGens:
    def test_same_view_gens_fused(self, sectioned_state):
        pipeline = Pipeline(
            [GEN("dosage", prompt="q_dosage"), GEN("timing", prompt="q_timing")]
        )
        fused = fuse_gens(pipeline, sectioned_state)
        assert len(fused) == 1
        assert isinstance(fused[0], FusedGen)

    def test_different_view_gens_not_fused(self, sectioned_state):
        sectioned_state.views.define("other_view", "different scaffold {notes}")
        sectioned_state = VIEW("other_view", key="q_other").apply(sectioned_state)
        pipeline = Pipeline(
            [GEN("dosage", prompt="q_dosage"), GEN("other", prompt="q_other")]
        )
        fused = fuse_gens(pipeline, sectioned_state)
        assert len(fused) == 2

    def test_viewless_prompts_left_alone(self, sectioned_state):
        sectioned_state.prompts.create("adhoc", "ad-hoc prompt")
        pipeline = Pipeline(
            [GEN("a", prompt="adhoc"), GEN("b", prompt="adhoc")]
        )
        assert len(fuse_gens(pipeline, sectioned_state)) == 2

    def test_non_gen_operators_break_fusion_runs(self, sectioned_state):
        pipeline = Pipeline(
            [
                GEN("dosage", prompt="q_dosage"),
                RET("order_lookup", query="p0000"),
                GEN("timing", prompt="q_timing"),
            ]
        )
        fused = fuse_gens(pipeline, sectioned_state)
        assert len(fused) == 3

    def test_fused_pipeline_produces_same_labels(self, sectioned_state):
        pipeline = Pipeline(
            [GEN("dosage", prompt="q_dosage"), GEN("timing", prompt="q_timing")]
        )
        state = fuse_gens(pipeline, sectioned_state).apply(sectioned_state)
        assert "dosage" in state.C and "timing" in state.C
