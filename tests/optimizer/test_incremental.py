"""Tests for incremental re-execution analysis and cost-aware planning."""

import pytest

from repro.core import GEN, REF, Pipeline, RefAction
from repro.core.algebra import FunctionOperator
from repro.core.state import ExecutionState
from repro.data import make_tweet_corpus
from repro.llm.model import SimulatedLLM
from repro.llm.profiles import get_profile
from repro.optimizer.cost_model import CostModel
from repro.optimizer.incremental import dependent_suffix, estimate_rerun
from repro.optimizer.planner import CandidateRefiner, RefinementPlanner

MAP_PROMPT = "Summarize the tweet in at most 30 words.\nTweet:\n{tweet}"
DIGEST_PROMPT = "Condense the summary into one takeaway.\nSummary:\n{summary}"
FILTER_PROMPT = (
    "Select the tweet only if negative. Respond yes or no.\nTweet:\n{tweet}"
)


def _build_state():
    llm = SimulatedLLM("qwen2.5-7b-instruct", enable_prefix_cache=False)
    corpus = make_tweet_corpus(2, seed=7)
    llm.bind_tweets(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    state.prompts.create("map_p", MAP_PROMPT)
    state.prompts.create("digest_p", DIGEST_PROMPT)
    state.prompts.create("filter_p", FILTER_PROMPT)
    state.context.put("tweet", corpus[0].text, producer="test")
    return state


def _pipeline():
    return Pipeline(
        [
            GEN("summary", prompt="map_p"),
            GEN("takeaway", prompt="digest_p"),
            GEN("verdict", prompt="filter_p"),
        ]
    )


def _fates(impacts):
    return [(impact.label, impact.fate, impact.reason) for impact in impacts]


class TestDependentSuffix:
    def test_leaf_refinement_dirties_only_its_reader(self):
        impacts = dependent_suffix(_pipeline(), _build_state(), "filter_p")
        assert _fates(impacts) == [
            ('GEN["summary"]', "cached", ""),
            ('GEN["takeaway"]', "cached", ""),
            ('GEN["verdict"]', "rerun", "prompt"),
        ]

    def test_upstream_refinement_taints_context_readers(self):
        impacts = dependent_suffix(_pipeline(), _build_state(), "map_p")
        assert _fates(impacts) == [
            ('GEN["summary"]', "rerun", "prompt"),
            ('GEN["takeaway"]', "rerun", "context"),
            ('GEN["verdict"]', "cached", ""),
        ]

    def test_uncacheable_steps_always_rerun(self):
        def glue(state):
            return state

        pipeline = Pipeline(
            [
                FunctionOperator(glue, label="GLUE"),
                GEN("verdict", prompt="filter_p"),
            ]
        )
        impacts = dependent_suffix(pipeline, _build_state(), "map_p")
        assert _fates(impacts) == [
            ("GLUE", "rerun", "uncacheable"),
            ('GEN["verdict"]', "cached", ""),
        ]

    def test_nested_pipelines_flattened(self):
        pipeline = Pipeline(
            [
                Pipeline([GEN("summary", prompt="map_p")]),
                GEN("takeaway", prompt="digest_p"),
            ]
        )
        impacts = dependent_suffix(pipeline, _build_state(), "map_p")
        assert [impact.fate for impact in impacts] == ["rerun", "rerun"]


class TestEstimateRerun:
    def test_leaf_refinement_cheaper_than_upstream(self):
        state = _build_state()
        cost_model = CostModel(get_profile("qwen2.5-7b-instruct"))
        leaf = estimate_rerun(_pipeline(), state, "filter_p", cost_model)
        root = estimate_rerun(_pipeline(), state, "map_p", cost_model)

        assert len(leaf.rerun_steps) == 1
        assert len(leaf.cached_steps) == 2
        assert leaf.rerun_tokens < root.rerun_tokens
        assert leaf.rerun_seconds < root.rerun_seconds
        # Cache hits are nearly free but not quite.
        assert 0 < leaf.cached_seconds < leaf.rerun_seconds
        assert leaf.seconds == pytest.approx(
            leaf.rerun_seconds + leaf.cached_seconds
        )

    def test_max_tokens_caps_expected_decode(self):
        state = _build_state()
        cost_model = CostModel(get_profile("qwen2.5-7b-instruct"))
        short = Pipeline([GEN("verdict", prompt="filter_p", max_tokens=4)])
        long = Pipeline([GEN("verdict", prompt="filter_p")])
        capped = estimate_rerun(short, state, "filter_p", cost_model)
        free = estimate_rerun(long, state, "filter_p", cost_model)
        assert capped.rerun_tokens < free.rerun_tokens


class TestPlanIncremental:
    def _candidates(self):
        return [
            CandidateRefiner(
                name="refine_map",
                build=lambda: REF(
                    RefAction.APPEND, "hint", key="map_p", function_name="refine_map"
                ),
                est_cost_tokens=1,
                prior_gain=0.1,
            ),
            CandidateRefiner(
                name="refine_filter",
                build=lambda: REF(
                    RefAction.APPEND,
                    "hint",
                    key="filter_p",
                    function_name="refine_filter",
                ),
                est_cost_tokens=1,
                prior_gain=0.1,
            ),
        ]

    def test_leaf_target_wins_on_rerun_cost(self):
        state = _build_state()
        cost_model = CostModel(get_profile("qwen2.5-7b-instruct"))
        plan = RefinementPlanner().plan_incremental(
            state,
            self._candidates(),
            pipeline=_pipeline(),
            cost_model=cost_model,
            budget_tokens=100,
        )
        # Equal gain, equal prompt growth — the filter refiner invalidates
        # a smaller suffix, so it ranks first.
        chosen = [step.refiner.name for step in plan.steps]
        assert chosen[0] == "refine_filter"
        assert plan.steps[0].utility > plan.steps[1].utility

    def test_plan_event_carries_rerun_detail(self):
        from repro.runtime.events import EventKind

        state = _build_state()
        cost_model = CostModel(get_profile("qwen2.5-7b-instruct"))
        RefinementPlanner().plan_incremental(
            state,
            self._candidates(),
            pipeline=_pipeline(),
            cost_model=cost_model,
            budget_tokens=100,
        )
        events = state.events.of_kind(EventKind.PLAN)
        assert events
        payload = events[-1].payload
        assert payload["mode"] == "incremental"
        detail = payload["rerun_detail"]
        assert detail["refine_filter"]["rerun_steps"] == 1
        assert detail["refine_filter"]["cached_steps"] == 2
        assert detail["refine_map"]["rerun_steps"] == 2

    def test_non_ref_candidate_costed_as_full_rerun(self):
        state = _build_state()
        cost_model = CostModel(get_profile("qwen2.5-7b-instruct"))

        def rebuild(current):
            return current

        candidates = self._candidates() + [
            CandidateRefiner(
                name="opaque",
                build=lambda: FunctionOperator(rebuild, label="OPAQUE"),
                est_cost_tokens=1,
                prior_gain=0.1,
            )
        ]
        plan = RefinementPlanner().plan_incremental(
            state,
            candidates,
            pipeline=_pipeline(),
            cost_model=cost_model,
            budget_tokens=100,
        )
        by_name = {step.refiner.name: step for step in plan.steps}
        assert by_name["opaque"].utility < by_name["refine_filter"].utility

    def test_negative_budget_rejected(self):
        from repro.errors import PlanningError

        state = _build_state()
        cost_model = CostModel(get_profile("qwen2.5-7b-instruct"))
        with pytest.raises(PlanningError):
            RefinementPlanner().plan_incremental(
                state,
                [],
                pipeline=_pipeline(),
                cost_model=cost_model,
                budget_tokens=-1,
            )
