"""Tests for the cost model and fusion planner."""

import pytest

from repro.core import EXPAND, ExecutionState, Pipeline, REF, RefAction
from repro.errors import FusionError
from repro.llm.profiles import get_profile
from repro.optimizer.cost_model import CostModel
from repro.optimizer.fusion import (
    FusionPlanner,
    LlmStage,
    build_fused_instruction,
    fuse_refs,
)

QWEN = get_profile("qwen2.5-7b-instruct")

MAP_STAGE = LlmStage(
    kind="map",
    instruction="Summarize and clean up the tweet in at most 30 words.",
    expected_output_tokens=22,
)
FILTER_STAGE = LlmStage(
    kind="filter",
    instruction="Select the tweet only if its sentiment is negative.",
    expected_output_tokens=3,
)


class TestCostModel:
    def test_call_estimate_components(self):
        model = CostModel(QWEN)
        estimate = model.call("word " * 100, expected_output_tokens=10)
        assert estimate.prompt_tokens == 100
        assert estimate.cached_tokens == 0
        assert estimate.seconds > QWEN.overhead_s

    def test_cache_fraction_reduces_cost(self):
        model = CostModel(QWEN)
        cold = model.call("word " * 100, expected_output_tokens=0)
        warm = model.call(
            "word " * 100, expected_output_tokens=0, expected_cache_fraction=0.9
        )
        assert warm.seconds < cold.seconds
        assert warm.cached_tokens == 90

    def test_invalid_cache_fraction(self):
        with pytest.raises(ValueError):
            CostModel(QWEN).call("x", expected_output_tokens=0, expected_cache_fraction=1.5)

    def test_per_item_caches_instruction_only(self):
        model = CostModel(QWEN)
        estimate = model.per_item(
            "inst " * 50, "item " * 20, expected_output_tokens=5
        )
        assert estimate.cached_tokens == 50
        cold = model.per_item(
            "inst " * 50, "item " * 20, expected_output_tokens=5,
            instruction_cached=False,
        )
        assert cold.seconds > estimate.seconds

    def test_summarize_pipeline_shares_the_static_cost_engine(self):
        from repro.analysis import AnalysisEnv, build_dataflow, estimate_costs
        from repro.core import GEN

        model = CostModel(QWEN)
        pipeline = Pipeline(
            [
                REF(RefAction.CREATE, "Summarize the tweet. " * 5, key="qa"),
                GEN("answer", prompt="qa"),
            ]
        )
        summary = model.summarize_pipeline(pipeline)
        direct = estimate_costs(
            build_dataflow(pipeline, AnalysisEnv()), model=model
        )
        assert summary == direct
        assert summary.exact
        assert 0 < summary.lower.tokens <= summary.upper.tokens


class TestResilientCall:
    def test_zero_failure_rate_matches_plain_call(self):
        from repro.resilience import RetryPolicy

        model = CostModel(QWEN)
        plain = model.call("word " * 100, expected_output_tokens=10)
        resilient = model.resilient_call(
            "word " * 100, expected_output_tokens=10,
            failure_rate=0.0, policy=RetryPolicy(max_attempts=4),
        )
        assert resilient == plain

    def test_failure_rate_prices_expected_retries(self):
        from repro.resilience import RetryPolicy

        model = CostModel(QWEN)
        policy = RetryPolicy(max_attempts=3, base_delay_s=1.0, jitter=0.0)
        plain = model.call("word " * 100, expected_output_tokens=10)
        resilient = model.resilient_call(
            "word " * 100, expected_output_tokens=10,
            failure_rate=0.5, policy=policy,
        )
        # E[attempts] = 1 + 0.5 + 0.25; backoff = 0.5*1.0 + 0.25*2.0.
        assert resilient.seconds == pytest.approx(plain.seconds * 1.75 + 1.0)
        assert resilient.prompt_tokens == round(plain.prompt_tokens * 1.75)

    def test_invalid_failure_rate(self):
        with pytest.raises(ValueError):
            CostModel(QWEN).resilient_call(
                "x", expected_output_tokens=0, failure_rate=1.0
            )


class TestFusedInstruction:
    def test_map_filter_order(self):
        text = build_fused_instruction(MAP_STAGE, FILTER_STAGE)
        assert text.index("Step 1 (map)") < text.index("Step 2 (filter)")

    def test_filter_map_conditional_summary(self):
        text = build_fused_instruction(FILTER_STAGE, MAP_STAGE)
        assert "Only produce the summary" in text

    def test_same_kind_pair_rejected(self):
        with pytest.raises(FusionError):
            build_fused_instruction(MAP_STAGE, MAP_STAGE)

    def test_invalid_stage_kind_rejected(self):
        with pytest.raises(FusionError):
            LlmStage(kind="reduce", instruction="x", expected_output_tokens=1)


class TestFusionPlanner:
    def test_map_filter_fusion_always_wins(self):
        planner = FusionPlanner(QWEN)
        for selectivity in (0.1, 0.5, 1.0):
            decision = planner.decide(MAP_STAGE, FILTER_STAGE, selectivity=selectivity)
            assert decision.fuse, selectivity
            assert decision.order == "map_filter"
            assert decision.est_gain > 0.1

    def test_filter_map_fusion_selectivity_aware(self):
        planner = FusionPlanner(QWEN)
        low = planner.decide(FILTER_STAGE, MAP_STAGE, selectivity=0.1)
        high = planner.decide(FILTER_STAGE, MAP_STAGE, selectivity=1.0)
        assert not low.fuse          # predicate pushdown wins at low selectivity
        assert high.fuse             # fusion wins when everything passes
        assert low.est_gain < high.est_gain

    def test_gain_monotone_in_selectivity_for_filter_map(self):
        planner = FusionPlanner(QWEN)
        gains = [
            planner.decide(FILTER_STAGE, MAP_STAGE, selectivity=s).est_gain
            for s in (0.1, 0.3, 0.5, 0.8, 1.0)
        ]
        assert gains == sorted(gains)

    def test_invalid_selectivity(self):
        with pytest.raises(FusionError):
            FusionPlanner(QWEN).decide(MAP_STAGE, FILTER_STAGE, selectivity=1.5)


class TestFuseRefs:
    def test_adjacent_literal_appends_coalesce(self):
        pipeline = Pipeline([EXPAND("qa", "line 1"), EXPAND("qa", "line 2")])
        fused = fuse_refs(pipeline)
        assert len(fused) == 1
        state = ExecutionState()
        state.prompts.create("qa", "base")
        fused.apply(state)
        assert state.prompts.text("qa") == "base\nline 1\nline 2"
        # Only one refinement recorded instead of two.
        assert state.prompts.refinement_count("qa") == 1

    def test_fused_text_identical_to_sequential(self):
        state_a = ExecutionState()
        state_a.prompts.create("qa", "base")
        sequential = Pipeline([EXPAND("qa", "x"), EXPAND("qa", "y"), EXPAND("qa", "z")])
        sequential.apply(state_a)

        state_b = ExecutionState()
        state_b.prompts.create("qa", "base")
        fuse_refs(sequential).apply(state_b)
        assert state_a.prompts.text("qa") == state_b.prompts.text("qa")

    def test_different_keys_not_fused(self):
        pipeline = Pipeline([EXPAND("a", "x"), EXPAND("b", "y")])
        assert len(fuse_refs(pipeline)) == 2

    def test_callable_refiners_not_fused(self):
        pipeline = Pipeline(
            [
                EXPAND("qa", "x"),
                REF(RefAction.APPEND, lambda s, t: "dyn", key="qa"),
            ]
        )
        assert len(fuse_refs(pipeline)) == 2

    def test_update_actions_not_fused(self):
        pipeline = Pipeline(
            [
                REF(RefAction.UPDATE, "x", key="qa"),
                REF(RefAction.UPDATE, "y", key="qa"),
            ]
        )
        assert len(fuse_refs(pipeline)) == 2

    def test_mixed_modes_not_fused(self):
        pipeline = Pipeline(
            [EXPAND("qa", "x", mode="MANUAL"), EXPAND("qa", "y", mode="AUTO")]
        )
        assert len(fuse_refs(pipeline)) == 2

    def test_non_ref_operators_break_runs(self):
        from repro.core.algebra import FunctionOperator

        pipeline = Pipeline(
            [
                EXPAND("qa", "x"),
                FunctionOperator(lambda s: s, "other"),
                EXPAND("qa", "y"),
            ]
        )
        assert len(fuse_refs(pipeline)) == 3
