"""Tests for evaluation metrics and table formatting."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    accuracy_from_pairs,
    field_completeness,
    format_table,
    prf_from_sets,
)


class TestPrf:
    def test_perfect_prediction(self):
        prf = prf_from_sets({"a", "b"}, {"a", "b"})
        assert prf.precision == 1.0
        assert prf.recall == 1.0
        assert prf.f1 == 1.0

    def test_partial_overlap(self):
        prf = prf_from_sets({"a", "b", "c"}, {"b", "c", "d"})
        assert prf.true_positives == 2
        assert prf.false_positives == 1
        assert prf.false_negatives == 1
        assert prf.precision == pytest.approx(2 / 3)
        assert prf.recall == pytest.approx(2 / 3)
        assert prf.f1 == pytest.approx(2 / 3)

    def test_empty_prediction(self):
        prf = prf_from_sets(set(), {"a"})
        assert prf.precision == 0.0
        assert prf.recall == 0.0
        assert prf.f1 == 0.0

    def test_empty_truth(self):
        prf = prf_from_sets({"a"}, set())
        assert prf.recall == 0.0
        assert prf.f1 == 0.0

    def test_accepts_iterables(self):
        prf = prf_from_sets(["a", "a", "b"], ("b",))
        assert prf.true_positives == 1

    @settings(max_examples=60)
    @given(
        st.sets(st.text(min_size=1, max_size=4), max_size=20),
        st.sets(st.text(min_size=1, max_size=4), max_size=20),
    )
    def test_f1_bounded_and_symmetric_counts(self, predicted, truth):
        prf = prf_from_sets(predicted, truth)
        assert 0.0 <= prf.f1 <= 1.0
        assert prf.true_positives + prf.false_positives == len(predicted)
        assert prf.true_positives + prf.false_negatives == len(truth)

    @settings(max_examples=60)
    @given(st.sets(st.text(min_size=1, max_size=4), min_size=1, max_size=20))
    def test_identical_sets_give_perfect_f1(self, items):
        assert prf_from_sets(items, items).f1 == 1.0


class TestAccuracy:
    def test_accuracy_counts_matches(self):
        pairs = [(1, 1), (0, 1), (1, 1), (0, 0)]
        assert accuracy_from_pairs(pairs) == 0.75

    def test_empty_is_zero(self):
        assert accuracy_from_pairs([]) == 0.0


class TestFieldCompleteness:
    def test_full_and_partial(self):
        answers = [
            {"dosage": "40 mg", "timing": "24h"},
            {"dosage": "40 mg"},
        ]
        assert field_completeness(answers, ["dosage", "timing"]) == 0.75

    def test_empty_inputs(self):
        assert field_completeness([], ["dosage"]) == 0.0
        assert field_completeness([{"a": 1}], []) == 0.0


class TestFormatTable:
    def test_alignment_and_rule(self):
        table = format_table(["A", "Longer"], [[1, 2.5], ["xx", "y"]])
        lines = table.splitlines()
        assert lines[0].startswith("A")
        assert set(lines[1]) == {"-"}
        assert "2.50" in table

    def test_title(self):
        table = format_table(["A"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        table = format_table(["Col"], [])
        assert "Col" in table
