"""The repro.api facade: complete, warning-clean, and aliased to the internals."""

import warnings

import repro.api as spear


class TestFacadeSurface:
    def test_all_names_resolve(self):
        for name in spear.__all__:
            assert getattr(spear, name) is not None, name

    def test_no_duplicates(self):
        assert len(spear.__all__) == len(set(spear.__all__))

    def test_touching_every_name_is_deprecation_clean(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in spear.__all__:
                getattr(spear, name)

    def test_names_alias_the_internals(self):
        from repro.core import GEN, Pipeline
        from repro.llm.model import SimulatedLLM
        from repro.resilience.runtime import ResilienceRuntime
        from repro.runtime.executor import Executor
        from repro.runtime.options import RuntimeOptions

        assert spear.GEN is GEN
        assert spear.Pipeline is Pipeline
        assert spear.SimulatedLLM is SimulatedLLM
        assert spear.Executor is Executor
        assert spear.RuntimeOptions is RuntimeOptions
        assert spear.ResilienceRuntime is ResilienceRuntime

    def test_error_taxonomy_rooted_at_spear_error(self):
        for name in (
            "ModelError",
            "TransientModelError",
            "RateLimitError",
            "TimeoutError",
            "MalformedOutputError",
            "CircuitOpenError",
        ):
            assert issubclass(getattr(spear, name), spear.SpearError), name

    def test_static_analysis_exported(self):
        from repro.analysis import (
            CheckResult,
            Diagnostic,
            check_pipeline,
            check_program,
            check_state,
        )
        from repro.errors import SpearValidationError

        assert spear.check_pipeline is check_pipeline
        assert spear.check_program is check_program
        assert spear.check_state is check_state
        assert spear.Diagnostic is Diagnostic
        assert spear.CheckResult is CheckResult
        assert spear.SpearValidationError is SpearValidationError
        assert issubclass(spear.SpearValidationError, spear.SpearError)
        for name in (
            "check_pipeline",
            "check_program",
            "check_state",
            "Diagnostic",
            "CheckResult",
            "Severity",
            "SpearValidationError",
        ):
            assert name in spear.__all__, name

    def test_facade_check_round_trip(self):
        result = spear.check_pipeline(
            spear.Pipeline([spear.GEN("answer", prompt="ghost")])
        )
        assert result.has_errors
        assert "SPEAR101" in result.codes()


class TestFacadeQuickstart:
    def test_readme_quickstart_runs_warning_clean(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            llm = spear.SimulatedLLM()
            executor = spear.Executor(options=spear.RuntimeOptions(model=llm))
            result = executor.generate_once(
                "hello",
                "Summarize the tweet in at most 30 words.\nTweet:\ngreat day",
            )
        assert result.output("answer")

    def test_resilient_executor_via_facade(self):
        llm = spear.SimulatedLLM(
            enable_prefix_cache=False,
            fault_plan=spear.FaultPlan(
                3, default=spear.FaultSpec(transient_rate=1.0)
            ),
        )
        executor = spear.Executor(
            options=spear.RuntimeOptions(
                model=llm,
                resilience=spear.ResilienceRuntime(
                    retry=spear.RetryPolicy(max_attempts=2, jitter=0.0),
                    fallback=spear.FallbackChain(
                        (spear.StaticFallback("degraded"),)
                    ),
                ),
            )
        )
        result = executor.generate_once(
            "hello",
            "Summarize the tweet in at most 30 words.\nTweet:\ngreat day",
        )
        assert result.output("answer") == "degraded"
        assert result.state.metadata["degraded"] is True
