"""Tests for the three refinement modes (paper §4.1)."""

import pytest

from repro.core import ExecutionState, RefinementMode
from repro.core.refinement import (
    adaptive_hint,
    assisted_refinement,
    auto_refinement,
    build_rewrite_prompt,
    manual_refinement,
    refine_on_low_confidence,
)
from repro.errors import RefinementError
from repro.llm.tasks import PROMPT_BLOCK_END, PROMPT_BLOCK_START

BASE_PROMPT = (
    "### Task\nSelect the tweet only if its sentiment is negative.\n"
    "Respond with yes or no."
)


@pytest.fixture
def refinable_state(llm):
    state = ExecutionState(model=llm, clock=llm.clock)
    state.prompts.create("qa", BASE_PROMPT)
    return state


class TestRewritePromptBuilder:
    def test_blocks_present(self):
        text = build_rewrite_prompt("orig", hint="school", objective="obj")
        assert PROMPT_BLOCK_START in text and PROMPT_BLOCK_END in text
        assert "Refinement hint: school" in text
        assert "Objective: obj" in text

    def test_agentic_form_has_no_prompt_block(self):
        text = build_rewrite_prompt(None, objective="obj")
        assert PROMPT_BLOCK_START not in text


class TestManual:
    def test_appends_literal_with_manual_mode(self, refinable_state):
        state = manual_refinement("qa", "Focus on dosage.").apply(refinable_state)
        assert state.prompts.text("qa").endswith("Focus on dosage.")
        record = state.prompts["qa"].ref_log[-1]
        assert record.mode is RefinementMode.MANUAL
        assert record.function == "f_manual_append"


class TestAssisted:
    def test_rewrites_via_model_and_preserves_original(self, refinable_state):
        state = assisted_refinement("qa", "school-related content").apply(
            refinable_state
        )
        text = state.prompts.text("qa")
        assert "school-related content" in text
        # The rewrite keeps the original instruction text inside.
        assert "sentiment is negative" in text
        assert state.prompts["qa"].ref_log[-1].mode is RefinementMode.ASSISTED

    def test_rewrite_call_charged_to_clock(self, refinable_state):
        before = refinable_state.clock.now
        assisted_refinement("qa", "hint").apply(refinable_state)
        assert refinable_state.clock.now > before

    def test_requires_model(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        with pytest.raises(RefinementError):
            assisted_refinement("qa", "hint").apply(state)


class TestAuto:
    def test_appends_objective_derived_criteria(self, refinable_state):
        state = auto_refinement(
            "qa", "select tweets with negative sentiment about school"
        ).apply(refinable_state)
        text = state.prompts.text("qa")
        assert text.startswith(BASE_PROMPT)  # pure append: prefix preserved
        assert "criteria" in text.lower()
        assert state.prompts["qa"].ref_log[-1].mode is RefinementMode.AUTO

    def test_adaptive_hint_appends_hint_line(self, refinable_state):
        state = adaptive_hint("qa", "weigh sarcasm").apply(refinable_state)
        assert state.prompts.text("qa").endswith("Hint: weigh sarcasm")
        assert state.prompts["qa"].ref_log[-1].function == "f_add_hint"


class TestLowConfidencePattern:
    def test_fires_below_threshold(self, refinable_state):
        refinable_state.metadata.set("confidence", 0.4)
        state = refine_on_low_confidence("qa", 0.7).apply(refinable_state)
        assert "step by step" in state.prompts.text("qa")
        assert state.prompts["qa"].ref_log[-1].condition == 'M["confidence"] < 0.7'

    def test_skips_above_threshold(self, refinable_state):
        refinable_state.metadata.set("confidence", 0.95)
        state = refine_on_low_confidence("qa", 0.7).apply(refinable_state)
        assert state.prompts.text("qa") == BASE_PROMPT

    def test_custom_refinement_operator(self, refinable_state):
        from repro.core import REF, RefAction

        refinable_state.metadata.set("confidence", 0.1)
        custom = REF(RefAction.APPEND, "custom fix", key="qa")
        state = refine_on_low_confidence("qa", 0.7, refinement=custom).apply(
            refinable_state
        )
        assert state.prompts.text("qa").endswith("custom fix")
