"""Tests for PromptStore: mapping semantics, tags, provenance helpers."""

import pytest

from repro.core.entry import PromptEntry, RefAction
from repro.core.store import PromptStore
from repro.errors import PromptStoreError, UnknownPromptError


class TestMappingSemantics:
    def test_create_and_get(self):
        store = PromptStore()
        store.create("qa", "text")
        assert store["qa"].text == "text"
        assert "qa" in store
        assert len(store) == 1

    def test_unknown_key_raises_typed_error(self):
        store = PromptStore()
        with pytest.raises(UnknownPromptError) as excinfo:
            store["missing"]
        assert excinfo.value.key == "missing"

    def test_create_refuses_overwrite_by_default(self):
        store = PromptStore()
        store.create("qa", "v1")
        with pytest.raises(PromptStoreError):
            store.create("qa", "v2")

    def test_create_overwrite_explicit(self):
        store = PromptStore()
        store.create("qa", "v1")
        store.create("qa", "v2", overwrite=True)
        assert store.text("qa") == "v2"

    def test_setitem_rejects_non_entries(self):
        store = PromptStore()
        with pytest.raises(PromptStoreError):
            store["qa"] = "a raw string"  # type: ignore[assignment]

    def test_delete(self):
        store = PromptStore()
        store.create("qa", "x")
        del store["qa"]
        assert "qa" not in store
        with pytest.raises(UnknownPromptError):
            del store["qa"]

    def test_get_with_default(self):
        store = PromptStore()
        assert store.get("nope") is None
        sentinel = PromptEntry("s")
        assert store.get("nope", sentinel) is sentinel

    def test_ensure_returns_existing(self):
        store = PromptStore()
        first = store.create("qa", "v1")
        assert store.ensure("qa", "ignored") is first
        second = store.ensure("other", "created")
        assert second.text == "created"


class TestLookups:
    def test_with_tag(self):
        store = PromptStore()
        store.create("a", "x", tags={"clinical"})
        store.create("b", "y", tags={"clinical", "summary"})
        store.create("c", "z")
        assert sorted(store.with_tag("clinical")) == ["a", "b"]

    def test_from_view(self):
        store = PromptStore()
        store.create("a", "x", view="discharge_summary")
        store.create("b", "y")
        assert store.from_view("discharge_summary") == ["a"]

    def test_clone_copies_entry(self):
        store = PromptStore()
        store.create("a", "x")
        store.clone("a", "b")
        store["b"].record(RefAction.UPDATE, "y", function="f")
        assert store.text("a") == "x"
        assert store.text("b") == "y"

    def test_clone_refuses_overwrite(self):
        store = PromptStore()
        store.create("a", "x")
        store.create("b", "y")
        with pytest.raises(PromptStoreError):
            store.clone("a", "b")


class TestProvenance:
    def test_history_and_refinement_count(self):
        store = PromptStore()
        store.create("a", "x")
        store["a"].record(RefAction.APPEND, "x\ny", function="f_1")
        store["a"].record(RefAction.UPDATE, "z", function="f_2")
        assert store.refinement_count("a") == 2
        history = store.history("a")
        assert [record["action"] for record in history] == [
            "CREATE", "APPEND", "UPDATE",
        ]

    def test_snapshot_serializes_all_entries(self):
        store = PromptStore()
        store.create("a", "x")
        store.create("b", "y")
        snapshot = store.snapshot()
        assert set(snapshot) == {"a", "b"}
        assert snapshot["a"]["text"] == "x"
