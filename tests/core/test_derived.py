"""Tests for the derived operators (paper Table 2)."""

import pytest

from repro.core import (
    Condition,
    DIFF,
    EXPAND,
    ExecutionState,
    GEN,
    MAP,
    REF,
    RETRY,
    RefAction,
    RefinementMode,
    SWITCH,
    VIEW,
)
from repro.core.algebra import FunctionOperator
from repro.core.derived import prompt_diff
from repro.errors import OperatorError


class TestExpand:
    def test_expand_appends(self):
        state = ExecutionState()
        state.prompts.create("qa_prompt", "base")
        EXPAND("qa_prompt", "Include PE risk factors.").apply(state)
        assert state.prompts.text("qa_prompt") == "base\nInclude PE risk factors."

    def test_expand_mode_recorded(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        EXPAND("qa", "x", mode="MANUAL").apply(state)
        assert state.prompts["qa"].ref_log[-1].mode is RefinementMode.MANUAL


class TestRetry:
    def test_retry_runs_refine_then_op_until_condition_clears(self):
        state = ExecutionState()
        state.metadata.set("conf", 0.0)
        runs = []

        def attempt(st):
            runs.append(1)
            st.metadata.set("conf", st.metadata["conf"] + 0.4)
            return st

        retry = RETRY(
            FunctionOperator(attempt, "ATTEMPT"),
            Condition.metadata_below("conf", 0.7),
            refine=FunctionOperator(lambda st: st, "REFINE"),
            max_retries=5,
        )
        state = retry.apply(state)
        # 0.4 after first run, 0.8 after second — two attempts total.
        assert len(runs) == 2
        assert state.M["retries"] == 1

    def test_retry_respects_max_retries(self):
        state = ExecutionState()
        runs = []
        retry = RETRY(
            FunctionOperator(lambda st: runs.append(1) or st, "A"),
            Condition.of(lambda st: True, "always"),
            max_retries=2,
        )
        state = retry.apply(state)
        assert len(runs) == 3  # initial + 2 retries
        assert state.M["retries"] == 2

    def test_retry_with_gen_and_refinement(self, state, tweet_corpus):
        tweet = tweet_corpus[0]
        state.prompts.create(
            "qa", f"Summarize the tweet.\nTweet:\n{tweet.text}"
        )
        retry = RETRY(
            GEN("answer", prompt="qa"),
            Condition.metadata_below("confidence", 0.99),
            refine=REF(RefAction.APPEND, "Be precise.", key="qa"),
            max_retries=1,
        )
        state = retry.apply(state)
        assert "answer" in state.C
        assert state.M["gen_calls"] >= 1

    def test_negative_max_retries_rejected(self):
        with pytest.raises(OperatorError):
            RETRY(FunctionOperator(lambda s: s), lambda s: True, max_retries=-1)


class TestMap:
    def test_map_applies_refiner_to_all_keys(self):
        state = ExecutionState()
        state.prompts.create("intro_note", "  Messy   ")
        state.prompts.create("followup_note", " also messy ")

        def f_normalize(st, text):
            return " ".join(text.split())

        MAP(["intro_note", "followup_note"], f_normalize).apply(state)
        assert state.prompts.text("intro_note") == "Messy"
        assert state.prompts.text("followup_note") == "also messy"
        for key in ("intro_note", "followup_note"):
            assert state.prompts[key].ref_log[-1].function == "f_normalize"


class TestSwitch:
    def test_first_matching_case_wins(self):
        state = ExecutionState()
        state.context.put("note_kind", "discharge_summary")
        switch = SWITCH(
            [
                (
                    Condition.of(
                        lambda st: st.context["note_kind"] == "radiology_report",
                        "is_radiology",
                    ),
                    REF(RefAction.CREATE, "radiology view", key="prompt"),
                ),
                (
                    Condition.of(
                        lambda st: st.context["note_kind"] == "discharge_summary",
                        "is_discharge",
                    ),
                    REF(RefAction.CREATE, "discharge view", key="prompt"),
                ),
            ]
        )
        state = switch.apply(state)
        assert state.prompts.text("prompt") == "discharge view"

    def test_default_applied_when_nothing_matches(self):
        state = ExecutionState()
        switch = SWITCH(
            [(Condition.of(lambda st: False, "never"), REF(RefAction.CREATE, "a", key="p"))],
            default=REF(RefAction.CREATE, "default", key="p"),
        )
        state = switch.apply(state)
        assert state.prompts.text("p") == "default"

    def test_no_match_no_default_is_noop(self):
        state = ExecutionState()
        SWITCH([(Condition.of(lambda st: False, "never"), REF(RefAction.CREATE, "a", key="p"))]).apply(state)
        assert "p" not in state.prompts


class TestViewOperator:
    def test_view_instantiates_into_prompt_store(self):
        state = ExecutionState()
        state.views.define(
            "med_justification",
            "Why was {drug} administered?",
            params=("drug",),
            tags={"clinical"},
        )
        VIEW("med_justification", key="qa", params={"drug": "Enoxaparin"}).apply(state)
        entry = state.prompts["qa"]
        assert entry.text == "Why was Enoxaparin administered?"
        assert entry.view == "med_justification"
        assert "clinical" in entry.tags

    def test_view_replaces_existing_entry_with_history(self):
        state = ExecutionState()
        state.views.define("v", "view text")
        state.prompts.create("qa", "old text")
        VIEW("v", key="qa").apply(state)
        entry = state.prompts["qa"]
        assert entry.text == "view text"
        assert entry.text_at(0) == "old text"
        assert entry.view == "v"

    def test_view_default_key_is_view_name(self):
        state = ExecutionState()
        state.views.define("v", "x")
        VIEW("v").apply(state)
        assert state.prompts.text("v") == "x"


class TestDiff:
    def test_prompt_diff_statistics(self):
        record = prompt_diff("a\nb\nc", "a\nb\nd")
        assert record["added_lines"] == 1
        assert record["removed_lines"] == 1
        assert record["shared_prefix_chars"] == 4
        assert 0 < record["similarity"] < 1

    def test_identical_texts(self):
        record = prompt_diff("same", "same")
        assert record["added_lines"] == 0
        assert record["similarity"] == 1.0
        assert record["shared_prefix_chars"] == 4

    def test_diff_operator_writes_context(self):
        state = ExecutionState()
        state.prompts.create("summary_1", "a\nb")
        state.prompts.create("summary_2", "a\nc")
        DIFF("summary_1", "summary_2").apply(state)
        assert state.C["diff"]["added_lines"] == 1

    def test_diff_historical_versions_via_at_syntax(self):
        state = ExecutionState()
        state.prompts.create("qa", "v0 text")
        state.prompts["qa"].record(RefAction.UPDATE, "v1 text", function="f")
        DIFF("qa@0", "qa", into="evolution").apply(state)
        assert state.C["evolution"]["similarity"] < 1.0
