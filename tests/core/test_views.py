"""Tests for views: parameterization, composition, dispatch, caching."""

import pytest

from repro.core.views import ViewRegistry
from repro.errors import UnknownViewError, ViewError, ViewParameterError


@pytest.fixture
def registry():
    views = ViewRegistry()
    views.define(
        "med_summary",
        "Summarize the patient's medication history and highlight any use of {drug}.",
        params=("drug",),
        tags={"clinical", "summary"},
    )
    return views


class TestDefinition:
    def test_define_and_expand(self, registry):
        text = registry.expand("med_summary", {"drug": "Enoxaparin"})
        assert "Enoxaparin" in text

    def test_unknown_view_raises(self, registry):
        with pytest.raises(UnknownViewError):
            registry.get("missing")
        with pytest.raises(UnknownViewError):
            registry.expand("missing")

    def test_missing_required_parameter_raises(self, registry):
        with pytest.raises(ViewParameterError) as excinfo:
            registry.expand("med_summary")
        assert "drug" in str(excinfo.value)

    def test_defaults_fill_missing_parameters(self):
        views = ViewRegistry()
        views.define(
            "v", "{drug} for {duration}",
            params=("drug", "duration"),
            defaults={"duration": "48 hours"},
        )
        assert views.expand("v", {"drug": "X"}) == "X for 48 hours"

    def test_redefinition_bumps_version(self, registry):
        view_0 = registry.get("med_summary")
        registry.define("med_summary", "new template {drug}", params=("drug",))
        assert registry.get("med_summary").version == view_0.version + 1

    def test_names_and_tags(self, registry):
        registry.define("other", "x", tags={"misc"})
        assert registry.names() == ["med_summary", "other"]
        assert registry.with_tag("clinical") == ["med_summary"]

    def test_base_must_exist(self):
        views = ViewRegistry()
        with pytest.raises(UnknownViewError):
            views.define("child", "x", base="ghost")


class TestComposition:
    def test_derived_view_prepends_base_by_default(self, registry):
        registry.define(
            "discharge_summary",
            "Emphasize medications, hospital course, and follow-up.",
            base="med_summary",
        )
        text = registry.expand("discharge_summary", {"drug": "Enoxaparin"})
        assert text.index("medication history") < text.index("hospital course")

    def test_explicit_base_placeholder_controls_placement(self, registry):
        registry.define(
            "wrapped", "BEFORE\n{base}\nAFTER", base="med_summary"
        )
        text = registry.expand("wrapped", {"drug": "X"})
        assert text.startswith("BEFORE")
        assert text.endswith("AFTER")
        assert "X" in text

    def test_parameters_flow_through_chain(self, registry):
        registry.define("child", "Focus on {drug} dosing.", base="med_summary")
        text = registry.expand("child", {"drug": "Enoxaparin"})
        assert text.count("Enoxaparin") == 2

    def test_chain_of_three(self, registry):
        registry.define("mid", "mid layer", base="med_summary")
        registry.define("leaf", "leaf layer", base="mid")
        text = registry.expand("leaf", {"drug": "X"})
        assert "mid layer" in text and "leaf layer" in text

    def test_cycle_detected(self):
        views = ViewRegistry()
        views.define("a", "a")
        views.define("b", "b", base="a")
        views.define("a", "a again", base="b")  # redefinition creates a cycle
        with pytest.raises(ViewError):
            views.expand("a")

    def test_required_params_collected_across_chain(self, registry):
        registry.define("child", "also {field}", params=("field",), base="med_summary")
        with pytest.raises(ViewParameterError) as excinfo:
            registry.expand("child", {"field": "x"})
        assert "drug" in str(excinfo.value)


class TestInstantiation:
    def test_instantiate_records_view_and_tags(self, registry):
        entry = registry.instantiate("med_summary", {"drug": "X"})
        assert entry.view == "med_summary"
        assert entry.tags == {"clinical", "summary"}
        assert entry.params == {"drug": "X"}
        assert entry.ref_log[0].function == "f_view_med_summary"


class TestDispatch:
    def test_dispatch_matches_first_predicate(self, registry):
        registry.define("discharge_view", "d", base=None)
        registry.define("radiology_view", "r", base=None)
        chosen = registry.dispatch(
            [
                (lambda kind: kind == "radiology_report", "radiology_view"),
                (lambda kind: kind == "discharge_summary", "discharge_view"),
            ],
            "discharge_summary",
        )
        assert chosen == "discharge_view"

    def test_dispatch_default(self, registry):
        chosen = registry.dispatch([], "anything", default="med_summary")
        assert chosen == "med_summary"

    def test_dispatch_without_match_raises(self, registry):
        with pytest.raises(ViewError):
            registry.dispatch([], "anything")


class TestCaching:
    def test_expansion_cached_by_params(self, registry):
        registry.expand("med_summary", {"drug": "X"})
        misses_before = registry.cache.misses
        registry.expand("med_summary", {"drug": "X"})
        assert registry.cache.hits >= 1
        assert registry.cache.misses == misses_before

    def test_different_params_do_not_collide(self, registry):
        text_x = registry.expand("med_summary", {"drug": "X"})
        text_y = registry.expand("med_summary", {"drug": "Y"})
        assert text_x != text_y

    def test_redefinition_invalidates_old_cache_entries(self, registry):
        registry.expand("med_summary", {"drug": "X"})
        registry.define("med_summary", "NEW {drug}", params=("drug",))
        assert registry.expand("med_summary", {"drug": "X"}) == "NEW X"
