"""Tests for Metadata: signals, history, aggregation."""

import pytest

from repro.core.metadata import Metadata
from repro.errors import MetadataError


class TestMetadata:
    def test_set_and_get(self):
        metadata = Metadata()
        metadata.set("confidence", 0.8)
        assert metadata["confidence"] == 0.8
        assert metadata.get("missing") is None

    def test_missing_signal_raises(self):
        metadata = Metadata()
        with pytest.raises(MetadataError):
            metadata["confidence"]

    def test_history_accumulates(self):
        metadata = Metadata()
        metadata.set("latency", 1.0)
        metadata.set("latency", 2.0)
        assert metadata.history("latency") == [1.0, 2.0]
        assert metadata["latency"] == 2.0

    def test_initial_values_seed_history(self):
        metadata = Metadata({"retries": 0})
        assert metadata.history("retries") == [0]

    def test_increment_creates_and_adds(self):
        metadata = Metadata()
        assert metadata.increment("retries") == 1
        assert metadata.increment("retries", 2) == 3

    def test_increment_non_numeric_raises(self):
        metadata = Metadata({"label": "yes"})
        with pytest.raises(MetadataError):
            metadata.increment("label")

    def test_mean(self):
        metadata = Metadata()
        for value in (0.5, 0.7, 0.9):
            metadata.set("confidence", value)
        assert metadata.mean("confidence") == pytest.approx(0.7)

    def test_mean_without_history_raises(self):
        metadata = Metadata()
        with pytest.raises(MetadataError):
            metadata.mean("confidence")

    def test_mean_non_numeric_history_raises(self):
        metadata = Metadata()
        metadata.set("label", "yes")
        with pytest.raises(MetadataError):
            metadata.mean("label")

    def test_last_n(self):
        metadata = Metadata()
        for value in range(5):
            metadata.set("x", value)
        assert metadata.last_n("x", 2) == [3, 4]
        assert metadata.last_n("missing", 3) == []

    def test_update_bulk(self):
        metadata = Metadata()
        metadata.update({"a": 1, "b": 2})
        assert metadata.as_dict() == {"a": 1, "b": 2}

    def test_fork_isolates(self):
        metadata = Metadata({"confidence": 0.5})
        fork = metadata.fork()
        fork.set("confidence", 0.9)
        assert metadata["confidence"] == 0.5
        assert fork.history("confidence") == [0.5, 0.9]
        assert metadata.history("confidence") == [0.5]

    def test_contains_len_iter(self):
        metadata = Metadata({"a": 1})
        assert "a" in metadata
        assert len(metadata) == 1
        assert list(metadata) == ["a"]
        assert metadata.keys() == ["a"]
