"""Tests for the six core operators, including the paper's Table 1 pipelines."""

import pytest

from repro.core import (
    CHECK,
    Condition,
    DELEGATE,
    ExecutionState,
    GEN,
    MERGE,
    Pipeline,
    REF,
    RET,
    RefAction,
    RefinementMode,
)
from repro.errors import OperatorError, RefinementError
from repro.runtime.events import EventKind


class TestRet:
    def test_structured_retrieval_into_context(self, state):
        state = RET("order_lookup", query="p0000").apply(state)
        assert "order_lookup" in state.C

    def test_into_renames_target(self, state):
        state = RET("order_lookup", query="p0000", into="orders").apply(state)
        assert "orders" in state.C
        assert "order_lookup" not in state.C

    def test_prompt_based_retrieval_renders_prompt(self, state):
        state.prompts.create(
            "retrieve_meds", "retrieve enoxaparin medication orders for {pid}"
        )
        state.context.put("pid", "p0000")
        state = RET("note_search", prompt="retrieve_meds", into="meds").apply(state)
        assert isinstance(state.C["meds"], str)

    def test_query_and_prompt_are_exclusive(self):
        with pytest.raises(OperatorError):
            RET("x", query={}, prompt="p")

    def test_retrieve_event_emitted(self, state):
        state = RET("order_lookup", query="p0000").apply(state)
        events = state.events.of_kind(EventKind.RETRIEVE)
        assert events and events[0].payload["source"] == "order_lookup"


class TestGen:
    def test_gen_stores_text_result_and_signals(self, state, tweet_corpus):
        tweet = tweet_corpus[0]
        state.prompts.create(
            "map", f"Summarize the tweet in at most 30 words.\nTweet:\n{tweet.text}"
        )
        state = GEN("summary", prompt="map").apply(state)
        assert isinstance(state.C["summary"], str)
        assert state.C["summary__result"].task == "summarize"
        for signal in ("confidence", "latency", "prompt_tokens", "cache_hit_rate"):
            assert signal in state.M
        assert state.M["gen_calls"] == 1

    def test_gen_renders_context_placeholders(self, state, tweet_corpus):
        tweet = tweet_corpus[0]
        state.prompts.create("map", "Summarize the tweet.\nTweet:\n{tweet}")
        state.context.put("tweet", tweet.text)
        state = GEN("summary", prompt="map").apply(state)
        assert state.C["summary__result"].extras["item_uid"] == tweet.uid

    def test_gen_requires_model(self):
        state = ExecutionState()
        state.prompts.create("p", "text")
        with pytest.raises(OperatorError):
            GEN("out", prompt="p").apply(state)

    def test_gen_attaches_outcome_to_ref_log(self, state, tweet_corpus):
        state.prompts.create(
            "map", f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        )
        state = GEN("s", prompt="map").apply(state)
        record = state.prompts["map"].ref_log[-1]
        assert "outcome_confidence" in record.signals

    def test_gen_advances_shared_clock(self, state):
        before = state.clock.now
        state.prompts.create("p", "Summarize the tweet.\nTweet:\nhello world")
        state = GEN("out", prompt="p").apply(state)
        assert state.clock.now > before


class TestRef:
    def test_create_action_creates_entry(self):
        state = ExecutionState()
        REF(RefAction.CREATE, "hello", key="qa").apply(state)
        assert state.prompts.text("qa") == "hello"

    def test_append_and_prepend(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        REF(RefAction.APPEND, "tail", key="qa").apply(state)
        REF(RefAction.PREPEND, "head", key="qa").apply(state)
        assert state.prompts.text("qa") == "head\nbase\ntail"

    def test_callable_refiner_receives_state_and_text(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        state.context.put("drug", "Enoxaparin")

        def f_inject(st, current):
            return current + " about " + st.context["drug"]

        REF(RefAction.UPDATE, f_inject, key="qa").apply(state)
        assert state.prompts.text("qa") == "base about Enoxaparin"
        assert state.prompts["qa"].ref_log[-1].function == "f_inject"

    def test_failing_refiner_wrapped_as_refinement_error(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")

        def f_bad(st, current):
            raise ValueError("boom")

        with pytest.raises(RefinementError):
            REF(RefAction.UPDATE, f_bad, key="qa").apply(state)

    def test_mode_and_signals_recorded(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        state.metadata.set("confidence", 0.55)
        REF(
            RefAction.APPEND, "hint", key="qa", mode=RefinementMode.AUTO
        ).apply(state)
        record = state.prompts["qa"].ref_log[-1]
        assert record.mode is RefinementMode.AUTO
        assert record.signals["confidence"] == pytest.approx(0.55)

    def test_string_mode_coerced(self):
        state = ExecutionState()
        REF(RefAction.CREATE, "x", key="qa", mode="MANUAL").apply(state)

    def test_merge_action_rejected(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        with pytest.raises(RefinementError):
            REF(RefAction.MERGE, "x", key="qa").apply(state)

    def test_refinements_counter(self):
        state = ExecutionState()
        REF(RefAction.CREATE, "x", key="qa").apply(state)
        REF(RefAction.APPEND, "y", key="qa").apply(state)
        assert state.M["refinements"] == 2


class TestCheck:
    def test_then_branch_applied_on_true(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        state.metadata.set("confidence", 0.4)
        CHECK(
            Condition.metadata_below("confidence", 0.7),
            REF(RefAction.APPEND, "hint", key="qa"),
        ).apply(state)
        assert state.prompts.text("qa") == "base\nhint"

    def test_then_skipped_on_false(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        state.metadata.set("confidence", 0.9)
        CHECK(
            Condition.metadata_below("confidence", 0.7),
            REF(RefAction.APPEND, "hint", key="qa"),
        ).apply(state)
        assert state.prompts.text("qa") == "base"

    def test_orelse_branch(self):
        state = ExecutionState()
        state.metadata.set("confidence", 0.9)
        CHECK(
            Condition.metadata_below("confidence", 0.7),
            orelse=REF(RefAction.CREATE, "fallback", key="alt"),
        ).apply(state)
        assert state.prompts.text("alt") == "fallback"

    def test_condition_text_propagated_into_ref_log(self):
        state = ExecutionState()
        state.prompts.create("qa", "base")
        CHECK(
            Condition.missing_context("orders"),
            REF(RefAction.APPEND, "ask for orders", key="qa"),
        ).apply(state)
        assert state.prompts["qa"].ref_log[-1].condition == '"orders" not in C'

    def test_check_event_and_counter(self):
        state = ExecutionState()
        CHECK(Condition.missing_context("x")).apply(state)
        assert state.M["checks"] == 1
        assert state.events.of_kind(EventKind.CHECK)[0].payload["outcome"] is True


class TestMerge:
    def _state_with_variants(self):
        state = ExecutionState()
        state.prompts.create("primary", "line a\nline b")
        state.prompts.create("fallback", "line b\nline c")
        return state

    def test_concat_dedupes_shared_lines(self):
        state = self._state_with_variants()
        MERGE("primary", "fallback").apply(state)
        assert state.prompts.text("primary") == "line a\nline b\nline c"

    def test_merge_into_new_key(self):
        state = self._state_with_variants()
        MERGE("primary", "fallback", into="merged").apply(state)
        assert "merged" in state.prompts
        assert state.prompts.text("primary") == "line a\nline b"

    def test_prefer_strategies(self):
        state = self._state_with_variants()
        MERGE("primary", "fallback", into="m1", strategy="prefer_first").apply(state)
        MERGE("primary", "fallback", into="m2", strategy="prefer_second").apply(state)
        assert state.prompts.text("m1") == "line a\nline b"
        assert state.prompts.text("m2") == "line b\nline c"

    def test_best_confidence_uses_ref_log_outcomes(self):
        state = self._state_with_variants()
        state.prompts["primary"].ref_log[-1].signals["outcome_confidence"] = 0.4
        state.prompts["fallback"].ref_log[-1].signals["outcome_confidence"] = 0.9
        MERGE("primary", "fallback", into="m", strategy="best_confidence").apply(state)
        assert state.prompts.text("m") == "line b\nline c"

    def test_callable_strategy(self):
        state = self._state_with_variants()
        MERGE(
            "primary",
            "fallback",
            into="m",
            strategy=lambda st, a, b: "custom",
        ).apply(state)
        assert state.prompts.text("m") == "custom"

    def test_unknown_strategy_rejected_at_construction(self):
        with pytest.raises(OperatorError):
            MERGE("a", "b", strategy="vote")

    def test_merge_recorded_in_ref_log_when_merging_in_place(self):
        state = self._state_with_variants()
        MERGE("primary", "fallback").apply(state)
        assert state.prompts["primary"].ref_log[-1].action is RefAction.MERGE


class TestDelegate:
    def test_delegation_by_context_key(self, state, clinical_corpus):
        patient = next(p for p in clinical_corpus if p.on_enoxaparin)
        notes = "\n".join(note.text for note in patient.notes)
        state.context.put("notes", notes)
        state.context.put(
            "answer",
            f"Patient {patient.patient_id} received Enoxaparin; dosage: {patient.dosage}",
        )
        state = DELEGATE("validation_agent", "answer", into="evidence").apply(state)
        report = state.C["evidence"]
        assert 0.0 <= report["evidence_score"] <= 1.0
        assert state.M["evidence_score"] == report["evidence_score"]
        assert state.M["delegations"] == 1

    def test_delegation_with_callable_payload(self, state):
        state.context.put("a", "no enoxaparin here")
        state = DELEGATE(
            "validation_agent", lambda st: st.context["a"], into="out"
        ).apply(state)
        assert "evidence_score" in state.C["out"]


class TestTable1Pipelines:
    """The paper's Table 1 example pipelines, end to end."""

    def test_initial_qa_prompt_pipeline(self, state):
        pipeline = (
            RET("initial_notes", query="p0000")
            >> REF(
                RefAction.CREATE,
                lambda st, cur: (
                    "Summarize the patient's medication history and highlight "
                    "any use of Enoxaparin.\nNotes:\n" + st.context["initial_notes"]
                ),
                key="qa_prompt",
                function_name="f_qa_prompt",
            )
            >> GEN("answer_0", prompt="qa_prompt")
        )
        state = pipeline.apply(state)
        assert "answer_0" in state.C
        assert state.prompts["qa_prompt"].ref_log[0].function == "f_qa_prompt"

    def test_confidence_based_retry(self, state):
        state.prompts.create(
            "qa_prompt",
            "Summarize the patient's medication history and highlight any "
            "use of Enoxaparin.\nNotes:\n[discharge_summary] Patient p0000.",
        )
        state.metadata.set("confidence", 0.5)
        pipeline = CHECK(
            Condition.metadata_below("confidence", 0.7),
            REF(
                RefAction.APPEND,
                "Explain your reasoning step by step.",
                key="qa_prompt",
                function_name="f_add_reasoning_hint",
            ),
        ) >> GEN("answer_1", prompt="qa_prompt")
        state = pipeline.apply(state)
        assert "reasoning" in state.prompts.text("qa_prompt")
        assert "answer_1" in state.C

    def test_missing_order_retrieval(self, state):
        pipeline = CHECK(
            Condition.missing_context("orders"),
            RET("order_lookup", query="p0000", into="orders"),
        )
        state = pipeline.apply(state)
        assert "orders" in state.C
        # Second application is a no-op: orders are present now.
        events_before = len(state.events.of_kind(EventKind.RETRIEVE))
        state = pipeline.apply(state)
        assert len(state.events.of_kind(EventKind.RETRIEVE)) == events_before

    def test_merging_branches_then_generate(self, state, clinical_corpus):
        patient = clinical_corpus.patients[0]
        state.prompts.create(
            "P_primary",
            "Summarize the patient's medication history and highlight any use "
            f"of Enoxaparin.\nNotes:\n[note] Patient {patient.patient_id}.",
        )
        state.prompts.create(
            "P_fallback", "Be specific about dosage and timing."
        )
        pipeline = MERGE("P_fallback", "P_primary", into="final_prompt") >> GEN(
            "final_answer", prompt="final_prompt"
        )
        state = pipeline.apply(state)
        assert "final_answer" in state.C

    def test_delegated_evidence_check(self, state, clinical_corpus):
        patient = next(p for p in clinical_corpus if p.on_enoxaparin)
        state.context.put(
            "notes", "\n".join(note.text for note in patient.notes)
        )
        state.context.put(
            "answer_1",
            f"Patient {patient.patient_id} received Enoxaparin; "
            f"dosage: {patient.dosage}; indication: {patient.indication}",
        )
        pipeline = Pipeline(
            [DELEGATE("validation_agent", "answer_1", into="evidence_score")]
        )
        state = pipeline.apply(state)
        assert state.C["evidence_score"]["evidence_score"] > 0.5
