"""Tests for prompt histories: traces, diffs, rollback (paper §4.3)."""

from repro.core import ExecutionState, PromptStore, RefAction, RefinementMode
from repro.core.history import (
    creation_record,
    diff_versions,
    export_history,
    refinements_of,
    rollback_to,
    trace,
    triggered_refinements,
)


def _store_with_history() -> PromptStore:
    store = PromptStore()
    store.create("qa_prompt", "base question", function="f_base")
    store["qa_prompt"].record(
        RefAction.APPEND,
        "base question\nFocus on PE risk.",
        function="f_add_pe_risk",
        mode=RefinementMode.ASSISTED,
    )
    store["qa_prompt"].record(
        RefAction.APPEND,
        "base question\nFocus on PE risk.\nHint: check labs.",
        function="f_add_hint",
        mode=RefinementMode.AUTO,
        condition='M["confidence"] < 0.7',
        signals={"confidence": 0.6},
    )
    return store


class TestTrace:
    def test_trace_lines_reflect_log(self):
        store = _store_with_history()
        lines = trace(store["qa_prompt"])
        assert lines[0].startswith("v0 CREATE f_base")
        assert "mode=ASSISTED" in lines[1]
        assert 'when M["confidence"] < 0.7' in lines[2]

    def test_trace_includes_outcome_confidence(self):
        store = _store_with_history()
        store["qa_prompt"].ref_log[-1].signals["outcome_confidence"] = 0.82
        assert "outcome_conf=0.82" in trace(store["qa_prompt"])[-1]


class TestQueries:
    def test_refinements_of(self):
        store = _store_with_history()
        records = refinements_of(store["qa_prompt"], "f_add_hint")
        assert len(records) == 1
        assert records[0].mode is RefinementMode.AUTO

    def test_triggered_refinements(self):
        store = _store_with_history()
        triggered = triggered_refinements(store["qa_prompt"])
        assert len(triggered) == 1
        assert triggered[0].function == "f_add_hint"

    def test_creation_record(self):
        store = _store_with_history()
        assert creation_record(store["qa_prompt"]).function == "f_base"

    def test_export_history_all_keys(self):
        store = _store_with_history()
        store.create("other", "x")
        exported = export_history(store)
        assert set(exported) == {"qa_prompt", "other"}
        assert len(exported["qa_prompt"]) == 3


class TestDiffAndRollback:
    def test_diff_versions(self):
        store = _store_with_history()
        record = diff_versions(store["qa_prompt"], 0, 2)
        assert record["added_lines"] == 2
        assert record["removed_lines"] == 0

    def test_rollback_to(self):
        store = _store_with_history()
        rollback_to(store, "qa_prompt", 0)
        assert store.text("qa_prompt") == "base question"
        assert store["qa_prompt"].version == 3

    def test_rollback_then_diff_shows_equality(self):
        store = _store_with_history()
        rollback_to(store, "qa_prompt", 0)
        record = diff_versions(store["qa_prompt"], 0, 3)
        assert record["similarity"] == 1.0


class TestIntegrationWithState:
    def test_paper_example_log_shape(self, llm):
        """The §4.3 example: CREATE → ASSISTED → AUTO in one ref_log."""
        state = ExecutionState(model=llm)
        state.prompts.create("qa_prompt", "text", function="f_base")
        state.prompts["qa_prompt"].record(
            RefAction.UPDATE, "text 2", function="f_add_pe_risk",
            mode=RefinementMode.ASSISTED,
        )
        state.prompts["qa_prompt"].record(
            RefAction.APPEND, "text 2\nhint", function="f_add_hint",
            mode=RefinementMode.AUTO,
        )
        history = state.prompts.history("qa_prompt")
        assert [record["f"] for record in history] == [
            "f_base", "f_add_pe_risk", "f_add_hint",
        ]
