"""Tests for ExecutionState: aliases, services, rendering, forking."""

import pytest

from repro.core import ExecutionState
from repro.errors import DelegationError, RetrievalError


class TestAliases:
    def test_paper_notation_aliases(self):
        state = ExecutionState()
        assert state.P is state.prompts
        assert state.C is state.context
        assert state.M is state.metadata


class TestServices:
    def test_source_registration_and_lookup(self):
        state = ExecutionState()
        state.register_source("notes", lambda s, q: "payload")
        assert state.source("notes")(state, None) == "payload"
        assert state.sources() == ["notes"]

    def test_unknown_source_raises_with_known_list(self):
        state = ExecutionState()
        state.register_source("a", lambda s, q: None)
        with pytest.raises(RetrievalError) as excinfo:
            state.source("b")
        assert "'a'" in str(excinfo.value)

    def test_agent_registration_and_lookup(self):
        state = ExecutionState()
        agent = object()
        state.register_agent("validator", agent)
        assert state.agent("validator") is agent
        assert state.agents() == ["validator"]

    def test_unknown_agent_raises(self):
        state = ExecutionState()
        with pytest.raises(DelegationError):
            state.agent("missing")

    def test_views_created_lazily(self):
        state = ExecutionState()
        views = state.views
        assert state.views is views


class TestRendering:
    def test_render_prompt_uses_context(self):
        state = ExecutionState()
        state.prompts.create("qa", "notes: {notes}")
        state.context.put("notes", "hello")
        assert state.render_prompt("qa") == "notes: hello"

    def test_render_prompt_extra_overrides(self):
        state = ExecutionState()
        state.prompts.create("qa", "{x}")
        state.context.put("x", "ctx")
        assert state.render_prompt("qa", extra={"x": "extra"}) == "extra"


class TestForking:
    def test_fork_shares_prompts_by_default(self):
        state = ExecutionState()
        state.prompts.create("qa", "v0")
        fork = state.fork()
        assert fork.prompts is state.prompts

    def test_fork_isolated_prompts(self):
        state = ExecutionState()
        state.prompts.create("qa", "v0")
        fork = state.fork(share_prompts=False)
        from repro.core.entry import RefAction

        fork.prompts["qa"].record(RefAction.UPDATE, "changed", function="f")
        assert state.prompts.text("qa") == "v0"

    def test_fork_isolates_context_and_metadata(self):
        state = ExecutionState()
        state.context.put("a", 1)
        state.metadata.set("confidence", 0.5)
        fork = state.fork()
        fork.context.put("a", 2)
        fork.metadata.set("confidence", 0.9)
        assert state.context["a"] == 1
        assert state.metadata["confidence"] == 0.5

    def test_fork_shares_clock_and_events(self):
        state = ExecutionState()
        fork = state.fork()
        assert fork.clock is state.clock
        assert fork.events is state.events

    def test_fork_copies_service_registrations(self):
        state = ExecutionState()
        state.register_source("s", lambda st, q: 1)
        state.register_agent("a", object())
        fork = state.fork()
        assert fork.sources() == ["s"]
        assert fork.agents() == ["a"]
