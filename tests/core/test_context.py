"""Tests for Context: mapping semantics and write provenance."""

import pytest

from repro.core.context import Context
from repro.errors import UnknownContextKeyError


class TestContext:
    def test_initial_values_logged_as_initial(self):
        context = Context({"a": 1})
        assert context["a"] == 1
        assert context.producers_of("a") == ["initial"]

    def test_put_records_producer(self):
        context = Context()
        context.put("answer", "yes", producer='GEN["answer"]')
        assert context.producers_of("answer") == ['GEN["answer"]']

    def test_setitem_uses_unknown_producer(self):
        context = Context()
        context["k"] = 1
        assert context.producers_of("k") == ["unknown"]

    def test_missing_key_raises_typed_error(self):
        context = Context()
        with pytest.raises(UnknownContextKeyError):
            context["missing"]

    def test_delete(self):
        context = Context({"a": 1})
        del context["a"]
        assert "a" not in context
        with pytest.raises(UnknownContextKeyError):
            del context["a"]

    def test_update_bulk_producer(self):
        context = Context()
        context.update({"a": 1, "b": 2}, producer="RET[x]")
        assert context.producers_of("a") == ["RET[x]"]
        assert context.producers_of("b") == ["RET[x]"]

    def test_rewrites_append_to_log(self):
        context = Context()
        context.put("a", 1, producer="op1")
        context.put("a", 2, producer="op2")
        assert context["a"] == 2
        assert context.producers_of("a") == ["op1", "op2"]

    def test_subset_ignores_missing(self):
        context = Context({"a": 1})
        assert context.subset(["a", "b"]) == {"a": 1}

    def test_fork_isolates_writes(self):
        context = Context({"a": 1})
        fork = context.fork()
        fork.put("a", 2)
        fork.put("b", 3)
        assert context["a"] == 1
        assert "b" not in context
        assert fork["a"] == 2

    def test_as_dict_is_a_copy(self):
        context = Context({"a": 1})
        snapshot = context.as_dict()
        snapshot["a"] = 99
        assert context["a"] == 1

    def test_len_and_iteration(self):
        context = Context({"a": 1, "b": 2})
        assert len(context) == 2
        assert sorted(context) == ["a", "b"]
        assert context.keys() == ["a", "b"]
