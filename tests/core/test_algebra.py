"""Tests for the algebra base: conditions, composition, tracing."""

import pytest

from repro.core import Condition, ExecutionState, Pipeline
from repro.core.algebra import FunctionOperator, as_condition
from repro.errors import OperatorError, SpearError
from repro.runtime.events import EventKind


class TestConditions:
    def test_metadata_below(self):
        state = ExecutionState()
        cond = Condition.metadata_below("confidence", 0.7)
        state.metadata.set("confidence", 0.5)
        assert cond(state)
        state.metadata.set("confidence", 0.9)
        assert not cond(state)
        assert cond.text == 'M["confidence"] < 0.7'

    def test_metadata_below_missing_signal_counts_as_zero(self):
        assert Condition.metadata_below("confidence", 0.7)(ExecutionState())

    def test_metadata_above(self):
        state = ExecutionState()
        state.metadata.set("retries", 3)
        assert Condition.metadata_above("retries", 2)(state)

    def test_missing_context_matches_paper_notation(self):
        state = ExecutionState()
        cond = Condition.missing_context("orders")
        assert cond(state)
        assert cond.text == '"orders" not in C'
        state.context.put("orders", [])
        assert not cond(state)

    def test_context_contains(self):
        state = ExecutionState()
        state.context.put("answer", "x")
        assert Condition.context_contains("answer")(state)

    def test_invert(self):
        state = ExecutionState()
        cond = ~Condition.missing_context("orders")
        assert not cond(state)
        assert "not" in cond.text

    def test_and_or_combinators(self):
        state = ExecutionState()
        state.metadata.set("confidence", 0.5)
        low = Condition.metadata_below("confidence", 0.7)
        has_orders = Condition.context_contains("orders")
        assert (low | has_orders)(state)
        assert not (low & has_orders)(state)
        state.context.put("orders", [])
        assert (low & has_orders)(state)

    def test_as_condition_wraps_callable_and_bool(self):
        state = ExecutionState()
        assert as_condition(lambda s: True)(state)
        assert as_condition(True)(state)
        assert not as_condition(False)(state)
        original = Condition.of(lambda s: True, "t")
        assert as_condition(original) is original


class TestComposition:
    def test_rshift_builds_pipeline(self):
        op_1 = FunctionOperator(lambda s: s, "A")
        op_2 = FunctionOperator(lambda s: s, "B")
        pipeline = op_1 >> op_2
        assert isinstance(pipeline, Pipeline)
        assert [op.label for op in pipeline] == ["A", "B"]

    def test_pipelines_nest_flat(self):
        ops = [FunctionOperator(lambda s: s, label) for label in "ABC"]
        pipeline = ops[0] >> ops[1] >> ops[2]
        assert len(pipeline) == 3

    def test_named_pipeline_nested_as_unit(self):
        inner = Pipeline([FunctionOperator(lambda s: s, "A")], name="inner")
        outer = FunctionOperator(lambda s: s, "B") >> inner
        assert len(outer) == 2
        assert outer[1] is inner

    def test_closure_operator_returns_state(self):
        state = ExecutionState()
        result = (FunctionOperator(lambda s: s, "A") >> FunctionOperator(lambda s: s, "B")).apply(state)
        assert result is state


class TestTracing:
    def test_apply_emits_start_and_end_events(self):
        state = ExecutionState()
        FunctionOperator(lambda s: s, "X").apply(state)
        kinds = [event.kind for event in state.events]
        assert kinds == [EventKind.OPERATOR_START, EventKind.OPERATOR_END]
        assert state.events.all()[0].operator == "X"

    def test_spear_errors_emit_error_event_and_reraise(self):
        state = ExecutionState()

        def boom(s):
            raise OperatorError("nope")

        with pytest.raises(SpearError):
            FunctionOperator(boom, "BOOM").apply(state)
        error_events = state.events.of_kind(EventKind.ERROR)
        assert len(error_events) == 1
        assert error_events[0].payload["error"] == "OperatorError"

    def test_function_operator_none_return_keeps_state(self):
        state = ExecutionState()

        def mutate(s):
            s.context.put("x", 1)

        result = FunctionOperator(mutate).apply(state)
        assert result is state
        assert state.context["x"] == 1
