"""Tests for Pipeline composition and execution."""

from repro.core import ExecutionState, Pipeline
from repro.core.algebra import FunctionOperator


def _tagger(name):
    def tag(state):
        order = state.context.get("order", [])
        state.context.put("order", order + [name])
        return state

    return FunctionOperator(tag, name)


class TestPipeline:
    def test_operators_run_in_order(self):
        state = ExecutionState()
        Pipeline([_tagger("a"), _tagger("b"), _tagger("c")]).run(state)
        assert state.context["order"] == ["a", "b", "c"]

    def test_empty_pipeline_is_identity(self):
        state = ExecutionState()
        result = Pipeline([]).run(state)
        assert result is state

    def test_rshift_appends(self):
        pipeline = Pipeline([_tagger("a")]) >> _tagger("b")
        assert len(pipeline) == 2

    def test_rshift_with_anonymous_pipeline_flattens(self):
        combined = Pipeline([_tagger("a")]) >> Pipeline([_tagger("b"), _tagger("c")])
        assert len(combined) == 3

    def test_rshift_with_named_pipeline_nests(self):
        named = Pipeline([_tagger("b")], name="sub")
        combined = Pipeline([_tagger("a")]) >> named
        assert len(combined) == 2
        state = ExecutionState()
        combined.run(state)
        assert state.context["order"] == ["a", "b"]

    def test_label_derivation_and_naming(self):
        pipeline = Pipeline([_tagger("a"), _tagger("b")])
        assert pipeline.label == "PIPELINE[a -> b]"
        named = Pipeline([_tagger("a")], name="my_flow")
        assert named.label == "my_flow"

    def test_indexing_and_iteration(self):
        ops = [_tagger("a"), _tagger("b")]
        pipeline = Pipeline(ops)
        assert pipeline[0] is ops[0]
        assert list(pipeline) == ops

    def test_pipeline_is_an_operator_closed_under_composition(self):
        inner = Pipeline([_tagger("b")], name="inner")
        outer = Pipeline([_tagger("a"), inner, _tagger("c")])
        state = ExecutionState()
        outer.run(state)
        assert state.context["order"] == ["a", "b", "c"]

    def test_pipeline_emits_its_own_events(self):
        state = ExecutionState()
        Pipeline([_tagger("a")], name="flow").run(state)
        labels = [event.operator for event in state.events]
        assert "flow" in labels
