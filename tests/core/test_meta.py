"""Tests for meta prompts: ref_log analytics (paper §4.4)."""

from repro.core import PromptStore, RefAction
from repro.core.meta import (
    analyze_refiners,
    evolution_summary,
    recommend_replacement,
    underperforming_refiners,
)


def _record(store, key, function, before, after, condition=None):
    entry = store[key]
    record = entry.record(
        RefAction.APPEND,
        entry.text + "\n" + function,
        function=function,
        condition=condition,
        signals={"confidence": before},
    )
    record.signals["outcome_confidence"] = after


def _store_with_outcomes() -> PromptStore:
    store = PromptStore()
    store.create("qa", "base")
    store.create("summary", "base")
    # f_good consistently improves confidence.
    _record(store, "qa", "f_good", 0.5, 0.8)
    _record(store, "summary", "f_good", 0.6, 0.85)
    # f_bad consistently hurts.
    _record(store, "qa", "f_bad", 0.8, 0.6, condition='M["confidence"] < 0.9')
    _record(store, "summary", "f_bad", 0.7, 0.65)
    return store


class TestAnalyzeRefiners:
    def test_per_refiner_deltas(self):
        stats = analyze_refiners(_store_with_outcomes())
        assert stats["f_good"].mean_confidence_delta > 0.2
        assert stats["f_bad"].mean_confidence_delta < 0
        assert stats["f_good"].applications == 2
        assert stats["f_good"].prompts_touched == 2

    def test_triggered_fraction(self):
        stats = analyze_refiners(_store_with_outcomes())
        assert stats["f_bad"].triggered_fraction == 0.5
        assert stats["f_good"].triggered_fraction == 0.0

    def test_create_records_excluded(self):
        store = PromptStore()
        store.create("qa", "base", function="f_base")
        assert analyze_refiners(store) == {}

    def test_records_without_outcomes_still_counted(self):
        store = PromptStore()
        store.create("qa", "base")
        store["qa"].record(RefAction.APPEND, "base\nx", function="f_pending")
        stats = analyze_refiners(store)
        assert stats["f_pending"].applications == 1
        assert stats["f_pending"].mean_confidence_delta == 0.0

    def test_to_dict_roundtrip(self):
        stats = analyze_refiners(_store_with_outcomes())
        record = stats["f_good"].to_dict()
        assert record["function"] == "f_good"
        assert record["applications"] == 2


class TestUnderperformers:
    def test_bad_refiner_flagged(self):
        flagged = underperforming_refiners(_store_with_outcomes())
        assert [stat.function for stat in flagged] == ["f_bad"]

    def test_min_applications_filter(self):
        store = _store_with_outcomes()
        flagged = underperforming_refiners(store, min_applications=3)
        assert flagged == []


class TestRecommendation:
    def test_replacement_suggests_better_refiner_on_same_prompts(self):
        assert recommend_replacement(_store_with_outcomes(), "f_bad") == "f_good"

    def test_no_replacement_for_best_refiner(self):
        assert recommend_replacement(_store_with_outcomes(), "f_good") is None

    def test_unknown_function_returns_none(self):
        assert recommend_replacement(_store_with_outcomes(), "f_ghost") is None


class TestEvolutionSummary:
    def test_summary_shape(self):
        store = _store_with_outcomes()
        summary = evolution_summary(store, "qa")
        assert summary["key"] == "qa"
        assert summary["versions"] == 3
        assert summary["net_growth_chars"] > 0
        assert [step["function"] for step in summary["steps"]][1:] == [
            "f_good", "f_bad",
        ]
        assert summary["steps"][1]["outcome_confidence"] == 0.8
