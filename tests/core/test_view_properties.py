"""Property-based tests for view expansion and composition."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.views import ViewRegistry

_names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
_words = st.text(
    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
    min_size=1,
    max_size=8,
)


class TestExpansionProperties:
    @settings(max_examples=60)
    @given(_names, _words)
    def test_expansion_deterministic_and_cached(self, param, value):
        views = ViewRegistry()
        views.define("v", "before {" + param + "} after", params=(param,))
        first = views.expand("v", {param: value})
        second = views.expand("v", {param: value})
        assert first == second
        assert views.cache.hits >= 1

    @settings(max_examples=60)
    @given(_words, _words)
    def test_different_bindings_never_collide(self, value_1, value_2):
        views = ViewRegistry()
        views.define("v", "x = {p}", params=("p",))
        expanded_1 = views.expand("v", {"p": value_1})
        expanded_2 = views.expand("v", {"p": value_2})
        assert (expanded_1 == expanded_2) == (value_1 == value_2)

    @settings(max_examples=40)
    @given(st.lists(_words, min_size=1, max_size=4))
    def test_chain_contains_every_layer(self, layers):
        views = ViewRegistry()
        previous = None
        for index, word in enumerate(layers):
            name = f"layer_{index}"
            views.define(name, f"text {word} {index}", base=previous)
            previous = name
        expanded = views.expand(previous)
        for index, word in enumerate(layers):
            assert f"text {word} {index}" in expanded

    @settings(max_examples=40)
    @given(_words)
    def test_redefinition_always_takes_effect(self, word):
        views = ViewRegistry()
        views.define("v", "old text")
        views.expand("v")
        views.define("v", f"new {word}")
        assert views.expand("v") == f"new {word}"
