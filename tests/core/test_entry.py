"""Tests for PromptEntry: versioning, rendering, ref_log, rollback, clone."""

import pytest

from repro.core.entry import (
    PromptEntry,
    RefAction,
    RefinementMode,
    render_template,
    template_placeholders,
)
from repro.errors import UnknownVersionError


class TestTemplates:
    def test_placeholders_ordered_and_deduplicated(self):
        text = "a {x} b {y} c {x}"
        assert template_placeholders(text) == ["x", "y"]

    def test_placeholders_dotted_names(self):
        assert template_placeholders("{note.text}") == ["note.text"]

    def test_render_substitutes_known_values(self):
        assert render_template("hi {name}", {"name": "ana"}) == "hi ana"

    def test_render_leaves_unknown_placeholders(self):
        assert render_template("hi {name}", {}) == "hi {name}"

    def test_render_dotted_lookup(self):
        values = {"note": {"text": "hello"}}
        assert render_template("{note.text}", values) == "hello"

    def test_render_dotted_missing_leaf_left_intact(self):
        assert render_template("{note.text}", {"note": {}}) == "{note.text}"

    def test_render_non_string_values_coerced(self):
        assert render_template("n={n}", {"n": 3}) == "n=3"


class TestPromptEntry:
    def test_creation_starts_at_version_zero_with_create_record(self):
        entry = PromptEntry("base text")
        assert entry.version == 0
        assert entry.text == "base text"
        assert entry.ref_log[0].action is RefAction.CREATE

    def test_record_advances_version_and_snapshots(self):
        entry = PromptEntry("v0")
        entry.record(RefAction.UPDATE, "v1", function="f_x")
        entry.record(RefAction.APPEND, "v1\nmore", function="f_y")
        assert entry.version == 2
        assert entry.text_at(0) == "v0"
        assert entry.text_at(1) == "v1"
        assert entry.text == "v1\nmore"

    def test_text_at_unknown_version_raises(self):
        entry = PromptEntry("v0")
        with pytest.raises(UnknownVersionError):
            entry.text_at(5)

    def test_ref_log_records_mode_and_condition(self):
        entry = PromptEntry("v0")
        entry.record(
            RefAction.APPEND,
            "v0\nhint",
            function="f_hint",
            mode=RefinementMode.AUTO,
            condition='M["confidence"] < 0.7',
        )
        record = entry.ref_log[-1]
        assert record.mode is RefinementMode.AUTO
        assert record.condition == 'M["confidence"] < 0.7'
        assert record.to_dict()["f"] == "f_hint"

    def test_rollback_restores_old_text_as_new_version(self):
        entry = PromptEntry("v0")
        entry.record(RefAction.UPDATE, "v1", function="f_x")
        entry.rollback(0)
        assert entry.text == "v0"
        assert entry.version == 2
        assert entry.ref_log[-1].action is RefAction.ROLLBACK

    def test_rollback_preserves_full_history(self):
        entry = PromptEntry("v0")
        entry.record(RefAction.UPDATE, "v1", function="f_x")
        entry.rollback(0)
        assert entry.text_at(1) == "v1"

    def test_clone_copies_history_and_diverges(self):
        entry = PromptEntry("v0", tags={"a"})
        entry.record(RefAction.UPDATE, "v1", function="f_x")
        copy = entry.clone()
        copy.record(RefAction.UPDATE, "v2", function="f_y")
        assert entry.text == "v1"
        assert copy.text == "v2"
        assert copy.ref_log[-2].action is RefAction.CLONE
        assert copy.tags == {"a"}

    def test_clone_tag_sets_are_independent(self):
        entry = PromptEntry("t", tags={"a"})
        copy = entry.clone()
        copy.tags.add("b")
        assert entry.tags == {"a"}

    def test_render_merges_params_and_values(self):
        entry = PromptEntry("drug={drug} patient={pid}", params={"drug": "Enoxaparin"})
        assert entry.render({"pid": "p1"}) == "drug=Enoxaparin patient=p1"

    def test_render_values_override_params(self):
        entry = PromptEntry("{x}", params={"x": "param"})
        assert entry.render({"x": "value"}) == "value"

    def test_to_dict_matches_paper_shape(self):
        entry = PromptEntry("text", created_by="f_base")
        entry.record(
            RefAction.APPEND, "text\n+", function="f_add_pe_risk",
            mode=RefinementMode.ASSISTED,
        )
        record = entry.to_dict()
        assert record["text"] == "text\n+"
        assert record["ref_log"][0] == {
            "action": "CREATE", "f": "f_base", "version": 0,
        }
        assert record["ref_log"][1]["mode"] == "ASSISTED"

    def test_placeholders_reflect_current_text(self):
        entry = PromptEntry("no placeholders")
        assert entry.placeholders() == []
        entry.record(RefAction.UPDATE, "{a} and {b}", function="f")
        assert entry.placeholders() == ["a", "b"]
