"""Property-based tests (hypothesis) for the core data structures."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PromptEntry, PromptStore, RefAction
from repro.core.derived import prompt_diff
from repro.core.entry import render_template, template_placeholders
from repro.core.operators import MERGE
from repro.core import ExecutionState

texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=200
)
identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True)


class TestEntryProperties:
    @given(st.lists(texts, min_size=1, max_size=8))
    def test_every_recorded_text_recoverable_at_its_version(self, versions):
        entry = PromptEntry("seed")
        for text in versions:
            entry.record(RefAction.UPDATE, text, function="f")
        assert entry.text_at(0) == "seed"
        for index, text in enumerate(versions, start=1):
            assert entry.text_at(index) == text
        assert entry.version == len(versions)

    @given(st.lists(texts, min_size=1, max_size=8), st.data())
    def test_rollback_always_restores_exact_text(self, versions, data):
        entry = PromptEntry("seed")
        for text in versions:
            entry.record(RefAction.UPDATE, text, function="f")
        target = data.draw(st.integers(min_value=0, max_value=entry.version))
        expected = entry.text_at(target)
        entry.rollback(target)
        assert entry.text == expected

    @given(texts)
    def test_ref_log_length_equals_version_count(self, text):
        entry = PromptEntry(text)
        entry.record(RefAction.UPDATE, text + "x", function="f")
        assert len(entry.ref_log) == len(entry.versions)


class TestTemplateProperties:
    @given(texts)
    def test_render_without_values_preserves_placeholder_free_text(self, text):
        if not template_placeholders(text):
            assert render_template(text, {}) == text

    @given(identifiers, texts)
    def test_full_binding_leaves_no_placeholder(self, name, value):
        template = "pre {" + name + "} post"
        rendered = render_template(template, {name: value})
        assert template_placeholders(rendered) == template_placeholders(value)

    @given(st.lists(identifiers, min_size=1, max_size=5, unique=True))
    def test_placeholders_found_for_all_names(self, names):
        template = " ".join("{" + name + "}" for name in names)
        assert template_placeholders(template) == names


class TestDiffProperties:
    @given(texts)
    def test_self_diff_is_identity(self, text):
        record = prompt_diff(text, text)
        assert record["similarity"] == 1.0
        assert record["added_lines"] == 0
        assert record["removed_lines"] == 0
        assert record["shared_prefix_chars"] == len(text)

    @given(texts, texts)
    def test_shared_prefix_bounded(self, text_1, text_2):
        record = prompt_diff(text_1, text_2)
        assert 0 <= record["shared_prefix_chars"] <= min(len(text_1), len(text_2))
        assert 0.0 <= record["similarity"] <= 1.0


@st.composite
def line_texts(draw):
    # splitlines() treats several exotic characters as line boundaries
    # (form feed, NEL, unicode separators); exclude them all so a "line"
    # strategy really produces single lines.
    line_breaks = "\n\r\x0b\x0c\x1c\x1d\x1e\x85\u2028\u2029"
    # Lines are non-empty: MERGE's concat strategy is line-set based, and
    # empty/trailing lines are not round-trippable through splitlines().
    lines = draw(
        st.lists(
            st.text(
                alphabet=st.characters(
                    blacklist_categories=("Cs",),
                    blacklist_characters=line_breaks,
                ),
                min_size=1,
                max_size=30,
            ),
            min_size=1,
            max_size=6,
        )
    )
    return "\n".join(lines)


class TestMergeProperties:
    @settings(max_examples=50)
    @given(line_texts(), line_texts())
    def test_concat_merge_contains_all_lines_of_both(self, text_1, text_2):
        state = ExecutionState()
        state.prompts.create("a", text_1)
        state.prompts.create("b", text_2)
        MERGE("a", "b", into="m").apply(state)
        merged_lines = set(state.prompts.text("m").splitlines())
        assert set(text_1.splitlines()) <= merged_lines
        assert set(text_2.splitlines()) <= merged_lines

    @settings(max_examples=50)
    @given(line_texts(), line_texts())
    def test_concat_merge_never_duplicates_lines_already_in_first(
        self, text_1, text_2
    ):
        state = ExecutionState()
        state.prompts.create("a", text_1)
        state.prompts.create("b", text_2)
        MERGE("a", "b", into="m").apply(state)
        merged = state.prompts.text("m").splitlines()
        lines_1 = text_1.splitlines()
        # The first text's lines appear as a prefix, in order.
        assert merged[: len(lines_1)] == lines_1

    @settings(max_examples=50)
    @given(line_texts())
    def test_merge_with_self_is_idempotent(self, text):
        state = ExecutionState()
        state.prompts.create("a", text)
        state.prompts.create("b", text)
        MERGE("a", "b", into="m").apply(state)
        assert state.prompts.text("m") == text


class TestStoreProperties:
    @settings(max_examples=50)
    @given(st.dictionaries(identifiers, texts, min_size=1, max_size=6))
    def test_snapshot_roundtrips_texts(self, entries):
        store = PromptStore()
        for key, text in entries.items():
            store.create(key, text)
        snapshot = store.snapshot()
        assert set(snapshot) == set(entries)
        for key, text in entries.items():
            assert snapshot[key]["text"] == text
