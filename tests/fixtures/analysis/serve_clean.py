"""Clean twin of the serve fixture: per-request working keys only.

The request copies the registered template into a fresh working key and
refines *that*, so the persistent tenant store is never mutated:
`spear check --fail-on warning` must exit zero.
"""

from repro.core import CHECK, GEN, MERGE, REF, Condition, Pipeline, RefAction

SPEAR_RUNTIME = {"scheduler": True, "serve": True}

SPEAR_PROMPTS = {"qa": "Answer from the patient notes: "}

FRESH_WORKING_KEY = Pipeline(
    [
        REF(RefAction.CREATE, "Work through the question step by step.", key="scratch"),
        GEN("answer", prompt="qa"),
        CHECK(
            Condition.metadata_below("confidence", 0.7),
            then=GEN("answer_2", prompt="scratch"),
        ),
    ],
    name="fresh_working_key",
)
