"""Seeded-buggy cost-bound fixture: SPEAR151, SPEAR152, SPEAR153.

CI runs `spear check --fail-on warning` over this module and requires a
non-zero exit; if any of the three cost analyzers stops firing, the
static-check job fails.
"""

from repro.core import CHECK, GEN, REF, RETRY, Condition, Pipeline, RefAction
from repro.resilience.policies import RetryPolicy

#: the runtime these pipelines are destined for — a deadline no
#: generation can meet, so SPEAR151 is statically decidable.
SPEAR_RUNTIME = {"scheduler": True, "deadline_s": 0.001}

#: SPEAR151 — the single unavoidable GEN already exceeds deadline_s.
DEADLINE_INFEASIBLE = Pipeline(
    [
        REF(RefAction.CREATE, "Summarize the patient history. " * 40, key="qa"),
        GEN("answer", prompt="qa"),
    ],
    name="deadline_infeasible",
)

#: SPEAR152 — the retry condition reads M["external_score"], which the
#: GEN body never writes: the verdict cannot change, every permitted
#: attempt runs, and only max_retries bounds the token spend.
UNBOUNDED_FANOUT = Pipeline(
    [
        REF(RefAction.CREATE, "Answer the question.", key="qa"),
        RETRY(
            GEN("answer", prompt="qa"),
            Condition.metadata_below("external_score", 0.5),
            policy=RetryPolicy(max_attempts=4),
        ),
    ],
    name="unbounded_fanout",
)

#: SPEAR153 — the conditional refiner appends to the one key every
#: generation reads: its dependent suffix covers the whole pipeline, so
#: each refinement invalidates everything the prefix cache held.
CACHE_DEFEATING = Pipeline(
    [
        REF(RefAction.CREATE, "Review the claim.", key="qa"),
        GEN("draft", prompt="qa"),
        GEN("critique", prompt="qa"),
        GEN("final", prompt="qa"),
        CHECK(
            Condition.metadata_below("confidence", 0.9),
            then=REF(RefAction.APPEND, "Be more specific.", key="qa"),
        ),
    ],
    name="cache_defeating",
)
