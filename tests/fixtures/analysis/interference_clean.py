"""Clean twin of the lane-interference fixture: isolated prompt stores.

Same pipeline shape as the buggy twin, but the runtime isolates prompts
per lane (isolate_prompts=True), so no lane ever observes another's
writes: `spear check --fail-on warning` must exit zero.
"""

from repro.core import GEN, MERGE, REF, Pipeline, RefAction

#: four lanes, each with its own forked prompt store.
SPEAR_RUNTIME = {"scheduler": True, "lanes": 4, "shared_prompts": False}

ISOLATED_BATCH = Pipeline(
    [
        REF(RefAction.CREATE, "Summarize: ", key="qa"),
        REF(RefAction.CREATE, "Cite sources.", key="style"),
        MERGE("qa", "style", into="final"),
        GEN("answer", prompt="final"),
    ],
    name="isolated_batch",
)
