"""Seeded-buggy serve fixture: SPEAR162 refine-during-serve.

The tenant prompt store persists across requests: a request that
refines the registered "qa" template leaks its refinement into every
later request of the tenant.  CI runs `spear check --fail-on warning`
over this module and requires a non-zero exit.
"""

from repro.core import CHECK, GEN, REF, Condition, Pipeline, RefAction

#: registered in a serving layer (SpearServer.register_pipeline).
SPEAR_RUNTIME = {"scheduler": True, "serve": True}

#: the templates registration seeds into each tenant session.
SPEAR_PROMPTS = {"qa": "Answer from the patient notes: "}

REFINES_REGISTERED_PROMPT = Pipeline(
    [
        GEN("answer", prompt="qa"),
        CHECK(
            Condition.metadata_below("confidence", 0.7),
            then=REF(RefAction.APPEND, "Explain your reasoning.", key="qa"),
        ),
        GEN("answer_2", prompt="qa"),
    ],
    name="refines_registered_prompt",
)
