"""Clean twins of the cost-bound fixture: same shapes, no findings.

CI runs `spear check --fail-on warning` over this module and requires a
zero exit — the cost analyzers must not flag realistic pipelines.
"""

from repro.core import CHECK, GEN, REF, RETRY, Condition, Pipeline, RefAction
from repro.resilience.policies import RetryPolicy

#: a deadline the lower-bound latency comfortably fits.
SPEAR_RUNTIME = {"scheduler": True, "deadline_s": 120.0}

#: SPEAR151 twin — same pipeline, feasible deadline (see SPEAR_RUNTIME).
DEADLINE_FEASIBLE = Pipeline(
    [
        REF(RefAction.CREATE, "Summarize the patient history. " * 40, key="qa"),
        GEN("answer", prompt="qa"),
    ],
    name="deadline_feasible",
)

#: SPEAR152 twin — the condition reads M["confidence"], which the GEN
#: body writes on every attempt: the verdict can change, so retrying is
#: meaningful.
BOUNDED_RETRY = Pipeline(
    [
        REF(RefAction.CREATE, "Answer the question.", key="qa"),
        RETRY(
            GEN("answer", prompt="qa"),
            Condition.metadata_below("confidence", 0.5),
            policy=RetryPolicy(max_attempts=4),
        ),
    ],
    name="bounded_retry",
)

#: SPEAR153 twin — the conditional refiner touches a narrow follow-up
#: key; the bulk of the pipeline is untouched by a refinement.
NARROW_REFINER = Pipeline(
    [
        REF(RefAction.CREATE, "Review the claim.", key="qa"),
        GEN("draft", prompt="qa"),
        GEN("critique", prompt="qa"),
        GEN("final", prompt="qa"),
        REF(RefAction.CREATE, "List any follow-up questions.", key="followup"),
        CHECK(
            Condition.metadata_below("confidence", 0.9),
            then=REF(RefAction.APPEND, "Be more specific.", key="followup"),
        ),
        GEN("questions", prompt="followup"),
    ],
    name="narrow_refiner",
)
