"""Seeded-buggy lane-interference fixture: SPEAR161 and SPEAR163.

CI runs `spear check --fail-on warning` over this module and requires a
non-zero exit; the runtime below mirrors a ParallelBatchRunner with the
default shared prompt store.
"""

from repro.core import GEN, MERGE, REF, Pipeline, RefAction

#: four lanes over one shared prompt store — the batch-runner default
#: (isolate_prompts=False).
SPEAR_RUNTIME = {"scheduler": True, "lanes": 4, "shared_prompts": True}

#: SPEAR161 — every lane refines the shared "qa" key per item, so items
#: race on its text; SPEAR163 — the MERGE of two lane-written keys
#: depends on lane arrival order.
RACY_BATCH = Pipeline(
    [
        REF(RefAction.CREATE, "Summarize: ", key="qa"),
        REF(RefAction.CREATE, "Cite sources.", key="style"),
        MERGE("qa", "style", into="final"),
        GEN("answer", prompt="final"),
    ],
    name="racy_batch",
)
