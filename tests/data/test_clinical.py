"""Tests for the synthetic clinical corpus generator."""

import pytest

from repro.data.clinical import NOTE_KINDS, make_clinical_corpus


class TestGeneration:
    def test_determinism(self):
        corpus_1 = make_clinical_corpus(20, seed=5)
        corpus_2 = make_clinical_corpus(20, seed=5)
        texts_1 = [note.text for p in corpus_1 for note in p.notes]
        texts_2 = [note.text for p in corpus_2 for note in p.notes]
        assert texts_1 == texts_2

    def test_every_patient_has_all_note_kinds(self):
        corpus = make_clinical_corpus(10, seed=5)
        for patient in corpus:
            assert tuple(note.kind for note in patient.notes) == NOTE_KINDS

    def test_enoxaparin_fraction(self):
        corpus = make_clinical_corpus(200, seed=5, enoxaparin_fraction=0.6)
        measured = sum(1 for p in corpus if p.on_enoxaparin) / len(corpus)
        assert measured == pytest.approx(0.6, abs=0.1)

    def test_ground_truth_consistency(self):
        corpus = make_clinical_corpus(50, seed=5)
        for patient in corpus:
            if patient.on_enoxaparin:
                assert patient.dosage and patient.timing and patient.indication
            else:
                assert patient.dosage is None
                assert patient.timing is None
                assert patient.indication is None

    def test_note_text_reflects_drug_status(self):
        corpus = make_clinical_corpus(50, seed=5)
        for patient in corpus:
            chart = " ".join(note.text.lower() for note in patient.notes)
            if patient.on_enoxaparin:
                assert "enoxaparin" in chart
                assert patient.dosage.lower() in chart
            else:
                assert "enoxaparin" not in chart

    def test_some_patients_missing_orders(self):
        corpus = make_clinical_corpus(60, seed=5, missing_orders_fraction=0.4)
        on_drug = [p for p in corpus if p.on_enoxaparin]
        missing = [p for p in on_drug if not p.has_orders]
        assert missing
        assert len(missing) < len(on_drug)

    def test_orders_match_ground_truth(self):
        corpus = make_clinical_corpus(40, seed=5)
        for patient in corpus:
            for order in patient.orders:
                assert order.medication == "enoxaparin"
                assert order.dosage == patient.dosage

    def test_mentions_flag_tracks_text(self):
        corpus = make_clinical_corpus(40, seed=5)
        for patient in corpus:
            for note in patient.notes:
                assert note.mentions_enoxaparin == (
                    "enoxaparin" in note.text.lower()
                )

    def test_two_labs_per_patient(self):
        corpus = make_clinical_corpus(10, seed=5)
        assert all(len(p.labs) == 2 for p in corpus)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_clinical_corpus(5, enoxaparin_fraction=2.0)


class TestLookups:
    def test_by_id_and_note_index(self):
        corpus = make_clinical_corpus(10, seed=5)
        patient = corpus.patients[3]
        assert corpus.by_id[patient.patient_id] is patient
        note = patient.notes[1]
        assert corpus.note(note.note_id) is note

    def test_all_notes(self):
        corpus = make_clinical_corpus(10, seed=5)
        assert len(corpus.all_notes()) == 30

    def test_find_patient_in_text(self):
        corpus = make_clinical_corpus(10, seed=5)
        patient = corpus.patients[2]
        prompt = f"Notes about patient {patient.patient_id} follow."
        assert corpus.find_patient_in(prompt) is patient
        assert corpus.find_patient_in("no id here") is None
