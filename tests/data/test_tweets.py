"""Tests for the synthetic tweet corpus generator."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import vocab
from repro.data.tweets import make_tweet_corpus


class TestGeneration:
    def test_size_and_determinism(self):
        corpus_1 = make_tweet_corpus(100, seed=3)
        corpus_2 = make_tweet_corpus(100, seed=3)
        assert len(corpus_1) == 100
        assert [t.text for t in corpus_1] == [t.text for t in corpus_2]

    def test_different_seeds_differ(self):
        corpus_1 = make_tweet_corpus(50, seed=1)
        corpus_2 = make_tweet_corpus(50, seed=2)
        assert [t.text for t in corpus_1] != [t.text for t in corpus_2]

    def test_negative_fraction_controls_selectivity(self):
        for fraction in (0.1, 0.5, 0.9):
            corpus = make_tweet_corpus(200, seed=7, negative_fraction=fraction)
            measured = len(corpus.negatives()) / len(corpus)
            assert measured == pytest.approx(fraction, abs=0.01)

    def test_school_fraction(self):
        corpus = make_tweet_corpus(200, seed=7, school_fraction=0.3)
        measured = sum(1 for t in corpus if t.school_related) / len(corpus)
        assert measured == pytest.approx(0.3, abs=0.01)

    def test_school_and_sentiment_roughly_independent(self):
        corpus = make_tweet_corpus(1000, seed=7)
        school_negatives = len(corpus.school_negatives())
        assert 200 < school_negatives < 300  # ~25% of 1000

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ValueError):
            make_tweet_corpus(10, negative_fraction=1.5)
        with pytest.raises(ValueError):
            make_tweet_corpus(10, school_fraction=-0.1)

    def test_difficulty_in_unit_interval(self):
        corpus = make_tweet_corpus(100, seed=7)
        assert all(0.0 <= t.difficulty <= 1.0 for t in corpus)

    def test_negative_tweets_longer_on_average(self):
        corpus = make_tweet_corpus(400, seed=7)
        neg = [len(t.clean_text.split()) for t in corpus if t.is_negative]
        pos = [len(t.clean_text.split()) for t in corpus if not t.is_negative]
        assert sum(neg) / len(neg) > sum(pos) / len(pos)

    def test_surface_texts_mostly_unique(self):
        corpus = make_tweet_corpus(1000, seed=7)
        assert len({t.text for t in corpus}) > 950

    def test_topics_match_school_flag(self):
        corpus = make_tweet_corpus(300, seed=7)
        school_terms = ("school", "exam", "class", "teacher", "homework", "studying", "midterm", "presentation")
        for tweet in corpus:
            mentions_school = any(term in tweet.clean_text.lower() for term in school_terms)
            assert mentions_school == tweet.school_related


class TestIndexes:
    def test_lookup_by_uid_and_text(self):
        corpus = make_tweet_corpus(50, seed=7)
        tweet = corpus[10]
        assert corpus.by_uid[tweet.uid] is tweet
        assert corpus.by_text[tweet.text] is tweet
        assert corpus.by_clean_text[tweet.clean_text] is tweet

    def test_find_in_line_fast_path(self):
        corpus = make_tweet_corpus(50, seed=7)
        tweet = corpus[5]
        prompt = f"instructions here\nTweet:\n{tweet.text}\nmore"
        assert corpus.find_in(prompt) is tweet

    def test_find_in_clean_text(self):
        corpus = make_tweet_corpus(50, seed=7)
        tweet = corpus[5]
        assert corpus.find_in(f"x\n{tweet.clean_text}\ny") is tweet

    def test_find_in_substring_fallback(self):
        corpus = make_tweet_corpus(50, seed=7)
        tweet = corpus[5]
        assert corpus.find_in(f"prefix {tweet.clean_text} suffix") is tweet

    def test_find_in_miss(self):
        corpus = make_tweet_corpus(10, seed=7)
        assert corpus.find_in("nothing from the corpus here") is None

    def test_selectivity_helper(self):
        corpus = make_tweet_corpus(100, seed=7, negative_fraction=0.4)
        assert corpus.selectivity(lambda t: t.is_negative) == pytest.approx(0.4)


class TestVocab:
    def test_sentiment_lexicons_disjoint(self):
        assert not (vocab.POSITIVE_WORDS & vocab.NEGATIVE_WORDS)

    def test_lexicon_words_present_in_phrases(self):
        joined_negative = " ".join(vocab.NEGATIVE_PHRASES)
        hit = sum(1 for word in vocab.NEGATIVE_WORDS if word in joined_negative)
        assert hit >= 8


class TestProperties:
    @settings(max_examples=20)
    @given(
        st.integers(min_value=1, max_value=120),
        st.integers(min_value=0, max_value=2**16),
    )
    def test_uids_unique_and_counts_consistent(self, n, seed):
        corpus = make_tweet_corpus(n, seed=seed)
        assert len({t.uid for t in corpus}) == n
        assert len(corpus.negatives()) + sum(
            1 for t in corpus if not t.is_negative
        ) == n
