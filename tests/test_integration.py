"""Cross-module integration flows from the paper's narrative.

Each test exercises a multi-subsystem story end to end:

- adaptive *retrieval* refinement — REF rewrites a retrieval prompt and
  RET fetches different context (paper §2: "SPEAR can refine the
  retrieval logic at runtime");
- view dispatch across note kinds via SWITCH (paper §4.2);
- shadow execution to vet a candidate refinement before promoting it
  (paper §6);
- the full meta loop: detect an underperforming refiner from ref_log
  outcomes and apply its recommended replacement (paper §4.4).
"""

import pytest

from repro.core import (
    CHECK,
    Condition,
    ExecutionState,
    GEN,
    Pipeline,
    REF,
    RET,
    RefAction,
    SWITCH,
    VIEW,
)
from repro.core.meta import analyze_refiners, recommend_replacement
from repro.runtime.shadow import shadow_run


class TestAdaptiveRetrievalRefinement:
    def test_refined_retrieval_prompt_changes_what_is_retrieved(self, state):
        # A vague retrieval prompt fetches weakly related notes...
        state.prompts.create("retrieval_intent", "patient chart notes")
        state = Pipeline(
            [
                # prompt-based retrieval: the query is P["retrieval_intent"].
                CHECK(
                    Condition.missing_context("med_context"),
                    RET("note_search", prompt="retrieval_intent", into="med_context"),
                ),
            ]
        ).apply(state)
        vague_result = state.context["med_context"]

        # ...then REF sharpens the retrieval intent and RET re-runs.
        state = (
            REF(
                RefAction.UPDATE,
                "enoxaparin medication orders dosage",
                key="retrieval_intent",
                function_name="f_sharpen_retrieval",
            )
            >> RET("note_search", prompt="retrieval_intent", into="med_context")
        ).apply(state)
        refined_result = state.context["med_context"]

        assert refined_result != vague_result
        assert "enoxaparin" in refined_result.lower()
        # Both the refinement and both retrievals are in the event log.
        from repro.runtime.events import EventKind

        retrievals = state.events.of_kind(EventKind.RETRIEVE)
        assert len(retrievals) == 2
        assert all(event.payload["prompt_based"] for event in retrievals)


class TestViewDispatchByNoteKind:
    @pytest.fixture
    def dispatch_state(self, llm):
        state = ExecutionState(model=llm, clock=llm.clock)
        state.views.define(
            "discharge_view",
            "### Task\nEmphasize medications, hospital course, and follow-up.\n"
            "Note:\n{note_text}",
        )
        state.views.define(
            "radiology_view",
            "### Task\nEmphasize imaging findings and impressions.\n"
            "Note:\n{note_text}",
        )
        state.views.define(
            "nursing_view",
            "### Task\nEmphasize observations and care delivery.\n"
            "Note:\n{note_text}",
        )
        return state

    def _dispatch_pipeline(self):
        def kind_is(kind):
            return Condition.of(
                lambda state, kind=kind: state.context["note_kind"] == kind,
                f'C["note_kind"] == "{kind}"',
            )

        return SWITCH(
            [
                (kind_is("discharge_summary"), VIEW("discharge_view", key="summary_prompt")),
                (kind_is("radiology_report"), VIEW("radiology_view", key="summary_prompt")),
            ],
            default=VIEW("nursing_view", key="summary_prompt"),
        )

    @pytest.mark.parametrize(
        "kind,expected_view",
        [
            ("discharge_summary", "discharge_view"),
            ("radiology_report", "radiology_view"),
            ("nursing_note", "nursing_view"),
        ],
    )
    def test_each_note_kind_selects_its_view(
        self, dispatch_state, clinical_corpus, kind, expected_view
    ):
        note = next(n for n in clinical_corpus.all_notes() if n.kind == kind)
        dispatch_state.context.put("note_kind", note.kind)
        dispatch_state.context.put("note_text", note.text)
        state = self._dispatch_pipeline().apply(dispatch_state)
        assert state.prompts["summary_prompt"].view == expected_view


class TestShadowVetting:
    def test_candidate_refinement_vetted_then_promoted(self, state, tweet_corpus):
        tweet = tweet_corpus[10]
        base = (
            "Select the tweet only if its sentiment is negative. "
            f"Respond with yes or no.\nTweet:\n{tweet.text}"
        )
        state.prompts.create("judge", base)

        primary = Pipeline([GEN("verdict", prompt="judge")])
        candidate = Pipeline(
            [
                REF(
                    RefAction.PREPEND,
                    "### Task\nGeneral guidance:\n- judge the full text",
                    key="judge",
                    function_name="f_candidate_scaffold",
                ),
                GEN("verdict", prompt="judge"),
            ]
        )
        report = shadow_run(state, primary, candidate)

        # Promotion decision is data-driven; apply the candidate for real
        # only when the shadow showed an improvement.
        if report.shadow_improves_confidence:
            state = candidate.apply(state)
            assert "General guidance" in state.prompts.text("judge")
        else:
            assert "General guidance" not in state.prompts.text("judge")
        # Shadow never contaminated the primary store either way before
        # the explicit promotion.
        assert report.primary_state.prompts["judge"].text_at(0) == base


class TestMetaLoopReplacement:
    def test_underperformer_replaced_by_recommendation(self, llm, tweet_corpus):
        state = ExecutionState(model=llm, clock=llm.clock)
        base = (
            "### Task\nSelect the tweet only if its sentiment is negative. "
            "Respond with yes or no.\nTweet:\n{tweet}"
        )
        state.prompts.create("judge", base)

        refiners = {
            "f_good_criteria": REF(
                RefAction.APPEND,
                "Use these criteria:\n- the sentiment is clearly negative",
                key="judge",
                function_name="f_good_criteria",
            ),
            "f_noise": REF(
                RefAction.APPEND,
                "P.S. whatever",
                key="judge",
                function_name="f_noise",
            ),
        }
        # Probe both refiners over a few items, collecting outcomes.
        for name, refiner in refiners.items():
            for tweet in tweet_corpus.tweets[:6]:
                state.context.put("tweet", tweet.text)
                state = refiner.apply(state)
                state = GEN("verdict", prompt="judge").apply(state)
                state.prompts["judge"].rollback(0)

        stats = analyze_refiners(state.prompts)
        assert (
            stats["f_good_criteria"].mean_confidence_delta
            > stats["f_noise"].mean_confidence_delta
        )
        replacement = recommend_replacement(state.prompts, "f_noise")
        assert replacement == "f_good_criteria"

        # Close the loop: apply the recommended refiner for the next run.
        state = refiners[replacement].apply(state)
        assert "criteria" in state.prompts.text("judge")
