"""Tests for span-tree reconstruction from the event log."""

import pytest

from repro.obs import build_span_tree, iter_spans, render_span_tree, top_slowest
from repro.runtime.events import EventKind, EventLog


def _nested_log():
    log = EventLog()
    log.emit(EventKind.OPERATOR_START, "PIPE", at=0.0)
    log.emit(EventKind.OPERATOR_START, 'GEN["a"]', at=0.5)
    log.emit(
        EventKind.GENERATE,
        'GEN["a"]',
        at=2.0,
        prompt_tokens=100,
        cached_tokens=40,
        output_tokens=30,
        latency=1.5,
    )
    log.emit(EventKind.OPERATOR_END, 'GEN["a"]', at=2.0)
    log.emit(EventKind.OPERATOR_START, "CHECK", at=2.0)
    log.emit(EventKind.CHECK, "CHECK", at=2.1, condition="x", outcome=True)
    log.emit(EventKind.OPERATOR_END, "CHECK", at=2.2)
    log.emit(EventKind.OPERATOR_END, "PIPE", at=2.2)
    return log


class TestNestedReconstruction:
    def test_tree_shape_and_walls(self):
        roots = build_span_tree(_nested_log())
        assert len(roots) == 1
        pipe = roots[0]
        assert pipe.operator == "PIPE"
        assert pipe.wall == 2.2
        assert [child.operator for child in pipe.children] == ['GEN["a"]', "CHECK"]
        gen, check = pipe.children
        assert gen.wall == 1.5
        assert check.wall == pytest.approx(0.2)
        assert all(span.complete for span in iter_spans(roots))

    def test_generation_attributed_inclusively(self):
        pipe = build_span_tree(_nested_log())[0]
        gen = pipe.children[0]
        # The GEN span and its parent both see the call and its tokens.
        for span in (gen, pipe):
            assert span.gen_calls == 1
            assert span.prompt_tokens == 100
            assert span.cached_tokens == 40
            assert span.output_tokens == 30
            assert span.gen_latency == 1.5
        assert gen.cache_hit_ratio == 0.4
        # The sibling CHECK saw no generation.
        assert pipe.children[1].gen_calls == 0

    def test_depths_follow_nesting(self):
        roots = build_span_tree(_nested_log())
        depths = {span.operator: span.depth for span in iter_spans(roots)}
        assert depths == {"PIPE": 0, 'GEN["a"]': 1, "CHECK": 1}


class TestMalformedLogs:
    def test_unmatched_end_ignored(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_END, "ghost", at=1.0)
        assert build_span_tree(log) == []

    def test_interleaved_close_marks_inner_incomplete(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, "outer", at=0.0)
        log.emit(EventKind.OPERATOR_START, "inner", at=1.0)
        log.emit(EventKind.OPERATOR_END, "outer", at=3.0)  # closes both
        roots = build_span_tree(log)
        outer = roots[0]
        assert outer.complete
        assert outer.wall == 3.0
        (inner,) = outer.children
        assert not inner.complete
        assert inner.end == 3.0  # closed at the outer END's timestamp

    def test_truncated_log_closes_at_last_timestamp(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, "never_ends", at=0.0)
        log.emit(EventKind.GENERATE, 'GEN["x"]', at=4.5, latency=1.0)
        (span,) = build_span_tree(log)
        assert not span.complete
        assert span.end == 4.5
        assert span.wall == 4.5

    def test_empty_log(self):
        assert build_span_tree(EventLog()) == []


class TestHelpers:
    def test_top_slowest_orders_by_wall(self):
        roots = build_span_tree(_nested_log())
        slowest = top_slowest(roots, k=2)
        assert [span.operator for span in slowest] == ["PIPE", 'GEN["a"]']

    def test_render_span_tree_shows_tokens_and_nesting(self):
        text = render_span_tree(build_span_tree(_nested_log()))
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("0.00s")
        assert "PIPE" in lines[0]
        assert "tokens=100p/40c/30o" in lines[1]
        # Children indented beneath the root.
        assert lines[1].index("GEN") > lines[0].index("PIPE")

    def test_render_marks_incomplete(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, "trunc", at=0.0)
        text = render_span_tree(build_span_tree(log))
        assert "[incomplete]" in text

    def test_to_dict_round_trips_subtree(self):
        pipe = build_span_tree(_nested_log())[0]
        record = pipe.to_dict()
        assert record["operator"] == "PIPE"
        assert record["wall"] == 2.2
        assert [child["operator"] for child in record["children"]] == [
            'GEN["a"]',
            "CHECK",
        ]
