"""Tests for the live collector, the run report, and the offline path."""

from repro.core import CHECK, Condition, GEN, REF, RefAction
from repro.obs import ObsCollector, build_report, build_run_report, operator_kind
from repro.obs.report import Pricing
from repro.runtime.events import EventKind, EventLog
from repro.runtime.tracing import export_events, import_events


def _run_pipeline(state, tweet_corpus, collector=None):
    if collector is not None:
        collector.subscribe_to(state.events)
        collector.attach_model(state.model)
    state.prompts.create(
        "qa", f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
    )
    pipeline = (
        GEN("answer", prompt="qa")
        >> CHECK(
            Condition.metadata_below("confidence", 2.0),
            REF(RefAction.APPEND, "Be brief.", key="qa"),
        )
        >> GEN("answer", prompt="qa")
    )
    return pipeline.apply(state)


class TestOperatorKind:
    def test_strips_bracket_suffix(self):
        assert operator_kind('GEN["answer"]') == "GEN"
        assert operator_kind("Pipeline[audit]") == "Pipeline"
        assert operator_kind("CHECK") == "CHECK"


class TestLiveCollection:
    def test_metrics_accrue_during_execution(self, state, tweet_corpus):
        collector = ObsCollector()
        _run_pipeline(state, tweet_corpus, collector)
        registry = collector.registry

        assert registry.sum_counter("spear_gen_calls_total") == 2
        assert registry.get("spear_operator_invocations_total", operator="GEN").value == 2
        assert registry.get("spear_operator_invocations_total", operator="CHECK").value == 1
        assert registry.sum_counter("spear_prompt_tokens_total") > 0
        # Event counter covers lifecycle + semantic events.
        assert registry.sum_counter("spear_events_total") == len(state.events)

    def test_model_layer_cross_checks_event_layer(self, state, tweet_corpus):
        collector = ObsCollector()
        _run_pipeline(state, tweet_corpus, collector)
        registry = collector.registry
        # Both GEN calls went through the model, so the two independent
        # layers (event-derived vs. model listener) must agree.
        assert registry.sum_counter("spear_model_gen_calls_total") == 2
        assert registry.sum_counter(
            "spear_model_prompt_tokens_total"
        ) == registry.sum_counter("spear_prompt_tokens_total")

    def test_cache_gauges_pull_from_model(self, state, tweet_corpus):
        collector = ObsCollector()
        _run_pipeline(state, tweet_corpus, collector)
        model_label = state.model.profile.name
        gauge = collector.registry.get("spear_kv_cache_blocks", model=model_label)
        assert gauge is not None
        assert gauge.value == float(len(state.model.kv_cache))

    def test_subscribe_is_idempotent(self, state, tweet_corpus):
        collector = ObsCollector()
        collector.subscribe_to(state.events)
        collector.subscribe_to(state.events)  # second call is a no-op
        state.events.emit(EventKind.CHECK, "A")
        assert collector.registry.sum_counter("spear_events_total") == 1

    def test_attach_model_is_idempotent(self, state, tweet_corpus):
        collector = ObsCollector()
        collector.attach_model(state.model)
        collector.attach_model(state.model)  # second call is a no-op
        _run_pipeline(state, tweet_corpus)
        # One listener registered → model-layer calls counted once.
        assert collector.registry.sum_counter("spear_model_gen_calls_total") == 2


class TestRunReport:
    def test_report_sections_populated(self, state, tweet_corpus):
        collector = ObsCollector()
        _run_pipeline(state, tweet_corpus, collector)
        report = build_report(collector, top_k=3)

        assert report.operators["GEN"]["invocations"] == 2
        assert report.operators["GEN"]["wall_seconds"]["count"] == 2
        assert report.generation["qa"]["calls"] == 2
        assert 0.0 < report.generation["qa"]["cache_hit_ratio"] <= 1.0
        assert report.generation["qa"]["cost_usd"] > 0
        assert report.totals["gen_calls"] == 2
        assert report.totals["model_gen_calls"] == 2
        assert len(report.slowest_spans) <= 3
        assert report.slowest_spans[0]["wall"] >= report.slowest_spans[-1]["wall"]
        model_label = state.model.profile.name
        assert "kv_cache_hit_rate" in report.cache[model_label]

    def test_mid_run_report_leaves_live_spans_intact(self):
        # Generating a report between events (live scrape) must not close
        # the open span stack: later ENDs still pair up and children stay
        # children.
        collector = ObsCollector()
        log = EventLog()
        collector.subscribe_to(log)
        log.emit(EventKind.OPERATOR_START, "OUTER", at=0.0)
        log.emit(EventKind.OPERATOR_START, "INNER", at=1.0)

        mid = build_report(collector)
        # The snapshot sees the open spans, closed and marked incomplete.
        assert any(not span["complete"] for span in mid.slowest_spans)

        log.emit(EventKind.OPERATOR_END, "INNER", at=2.0)
        log.emit(EventKind.OPERATOR_END, "OUTER", at=3.0)
        final = build_report(collector)
        roots = collector.span_roots()
        assert len(roots) == 1
        outer = roots[0]
        assert outer.complete and outer.end == 3.0
        assert len(outer.children) == 1
        assert outer.children[0].complete and outer.children[0].end == 2.0
        assert all(span["complete"] for span in final.slowest_spans)

    def test_pricing_flows_into_costs(self, state, tweet_corpus):
        collector = ObsCollector()
        _run_pipeline(state, tweet_corpus, collector)
        free = build_report(
            collector, pricing=Pricing(0.0, 0.0, 0.0)
        )
        assert free.totals["cost_usd"] == 0.0

    def test_pricing_cost_math(self):
        pricing = Pricing(
            prompt_usd_per_1m=1.0, cached_usd_per_1m=0.1, output_usd_per_1m=2.0
        )
        # 1M uncached prompt tokens -> $1; cached subset billed at discount.
        assert pricing.cost(1_000_000, 0, 0) == 1.0
        assert pricing.cost(1_000_000, 1_000_000, 0) == 0.1
        assert pricing.cost(0, 0, 500_000) == 1.0


class TestResultCacheMetrics:
    """CACHE_HIT events and attached caches feed spear_result_cache_*."""

    @staticmethod
    def _cached_run(collector):
        from repro.core import Pipeline
        from repro.data import make_tweet_corpus
        from repro.llm.model import SimulatedLLM
        from repro.runtime.executor import Executor
        from repro.runtime.options import RuntimeOptions
        from repro.runtime.result_cache import ResultCache

        llm = SimulatedLLM("qwen2.5-7b-instruct", enable_prefix_cache=False)
        corpus = make_tweet_corpus(2, seed=7)
        llm.bind_tweets(corpus)
        cache = ResultCache()
        executor = Executor(
            options=RuntimeOptions(
                model=llm,
                clock=llm.clock,
                collector=collector,
                result_cache=cache,
            )
        )
        state = executor.new_state()
        state.prompts.create(
            "qa", f"Summarize the tweet.\nTweet:\n{corpus[0].text}"
        )
        pipeline = Pipeline([GEN("answer", prompt="qa")])
        executor.run(pipeline, state=state)
        executor.run(pipeline, state=state)  # the hit
        return cache, state

    def test_hit_counters_accrue_from_events(self):
        collector = ObsCollector()
        cache, _state = self._cached_run(collector)
        registry = collector.registry
        hit_counter = registry.get(
            "spear_result_cache_hits_total", operator="GEN"
        )
        assert hit_counter is not None and hit_counter.value == 1
        assert (
            registry.sum_counter("spear_result_cache_saved_seconds_total") > 0
        )

    def test_pull_gauges_read_cache_snapshot(self):
        collector = ObsCollector()
        cache, state = self._cached_run(collector)
        registry = collector.registry
        assert registry.get("spear_result_cache_entries").value == float(
            len(cache)
        )
        assert registry.get(
            "spear_result_cache_hit_rate"
        ).value == cache.hit_rate
        REF(RefAction.APPEND, "Be brief.", key="qa").apply(state)
        assert registry.get(
            "spear_result_cache_invalidations_total"
        ).value == 1.0

    def test_report_result_cache_section(self):
        collector = ObsCollector()
        cache, _state = self._cached_run(collector)
        report = build_report(collector)
        section = report.result_cache
        assert section["by_operator"]["GEN"]["hits"] == 1
        assert section["by_operator"]["GEN"]["saved_seconds"] > 0
        assert section["entries"] == float(len(cache))
        assert section["hit_rate"] == cache.hit_rate
        assert report.totals["result_cache_hits"] == 1
        assert report.totals["result_cache_saved_seconds"] > 0
        assert report.to_dict()["result_cache"] == section

    def test_attach_result_cache_idempotent(self):
        from repro.runtime.result_cache import ResultCache

        collector = ObsCollector()
        cache = ResultCache()
        collector.attach_result_cache(cache)
        collector.attach_result_cache(cache)  # no duplicate-gauge error
        assert collector.registry.get(
            "spear_result_cache_entries"
        ).value == 0.0

    def test_reports_without_cache_have_empty_section(self, state, tweet_corpus):
        collector = ObsCollector()
        _run_pipeline(state, tweet_corpus, collector)
        report = build_report(collector)
        assert report.result_cache == {}
        assert report.totals["result_cache_hits"] == 0


class TestOfflineReplay:
    def test_exported_trace_reproduces_live_report(
        self, state, tweet_corpus, tmp_path
    ):
        live = ObsCollector()
        state = _run_pipeline(state, tweet_corpus, live)
        live_report = build_report(live)

        path = export_events(state.events, tmp_path / "run.jsonl")
        offline_report = build_run_report(import_events(path))

        # Event-derived sections agree exactly; model/cache sections need
        # the live model and are absent offline.
        assert offline_report.operators == live_report.operators
        assert offline_report.generation == live_report.generation
        assert offline_report.slowest_spans == live_report.slowest_spans
        assert offline_report.totals["gen_calls"] == live_report.totals["gen_calls"]
        assert (
            offline_report.totals["prompt_tokens"]
            == live_report.totals["prompt_tokens"]
        )
        assert offline_report.model == {}

    def test_replay_of_empty_log_yields_empty_report(self):
        report = build_run_report(EventLog())
        assert report.operators == {}
        assert report.generation == {}
        assert report.totals["events"] == 0
