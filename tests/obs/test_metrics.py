"""Tests for the metric primitives and the registry."""

import math

import pytest

from repro.errors import ObservabilityError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_read(self):
        gauge = Gauge()
        gauge.set(4.2)
        assert gauge.value == 4.2

    def test_pull_callback_read_at_collection_time(self):
        backing = {"value": 1.0}
        gauge = Gauge()
        gauge.set_function(lambda: backing["value"])
        assert gauge.value == 1.0
        backing["value"] = 9.0
        assert gauge.value == 9.0

    def test_set_clears_pull_callback(self):
        gauge = Gauge()
        gauge.set_function(lambda: 7.0)
        gauge.set(1.0)
        assert gauge.value == 1.0


class TestHistogram:
    def test_bucket_boundaries_are_inclusive_upper_bounds(self):
        hist = Histogram(buckets=(1.0, 2.0))
        hist.observe(1.0)   # lands in the first bucket (<= 1.0)
        hist.observe(1.5)   # second bucket
        hist.observe(99.0)  # overflow (+Inf) bucket
        assert hist.bucket_counts == [1, 1, 1]
        assert hist.cumulative_counts() == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_count_sum_mean_min_max(self):
        hist = Histogram(buckets=(10.0,))
        for value in (1.0, 3.0, 5.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == 9.0
        assert hist.mean == 3.0
        assert hist.min == 1.0
        assert hist.max == 5.0

    def test_empty_histogram_quantile_and_mean_are_zero(self):
        hist = Histogram(buckets=(1.0,))
        assert hist.mean == 0.0
        assert hist.quantile(0.5) == 0.0

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram(buckets=(0.0, 10.0))
        for value in (2.0, 4.0, 6.0, 8.0, 10.0):  # all in the (0, 10] bucket
            hist.observe(value)
        # rank 2.5/5 -> halfway through the (0, 10] bucket: 0 + 10 * 0.5
        assert hist.quantile(0.5) == 5.0
        assert hist.quantile(1.0) == 10.0

    def test_overflow_quantile_returns_observed_max(self):
        hist = Histogram(buckets=(1.0,))
        hist.observe(42.0)
        assert hist.quantile(0.99) == 42.0

    def test_single_sample_quantiles_are_the_sample(self):
        # p99 of one observation is that observation — not an
        # interpolated point inside its bucket.
        hist = Histogram(buckets=(1.0, 2.0, 5.0))
        hist.observe(3.0)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == 3.0

    def test_all_equal_samples_quantiles_are_the_sample(self):
        hist = Histogram(buckets=(1.0, 10.0))
        for _ in range(100):
            hist.observe(7.0)
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) == 7.0

    def test_quantiles_never_exceed_observed_max(self):
        hist = Histogram(buckets=(1.0, 10.0))
        hist.observe(2.0)
        hist.observe(2.5)
        assert hist.quantile(0.99) <= hist.max

    def test_quantile_order_property_random_samples(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=60, deadline=None)
        @given(
            st.lists(
                st.floats(
                    min_value=0.0,
                    max_value=100.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=1,
                max_size=40,
            )
        )
        def check(samples):
            hist = Histogram(buckets=(0.5, 1.0, 5.0, 10.0, 50.0))
            for sample in samples:
                hist.observe(sample)
            p50 = hist.quantile(0.50)
            p95 = hist.quantile(0.95)
            p99 = hist.quantile(0.99)
            assert not math.isnan(p50)
            assert p50 <= p95 <= p99 <= hist.max

        check()

    def test_quantile_bounds_validated(self):
        with pytest.raises(ObservabilityError):
            Histogram(buckets=(1.0,)).quantile(1.5)

    def test_bucket_bounds_must_strictly_increase(self):
        with pytest.raises(ObservabilityError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ObservabilityError):
            Histogram(buckets=())


class TestMetricsRegistry:
    def test_same_name_and_labels_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("spear_events_total", kind="generate")
        second = registry.counter("spear_events_total", kind="generate")
        assert first is second
        other = registry.counter("spear_events_total", kind="check")
        assert other is not first

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("c", x="1", y="2")
        b = registry.counter("c", y="2", x="1")
        assert a is b

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ObservabilityError):
            registry.gauge("m")

    def test_sum_counter_across_label_sets(self):
        registry = MetricsRegistry()
        registry.counter("tokens", prompt="a").inc(10)
        registry.counter("tokens", prompt="b").inc(5)
        assert registry.sum_counter("tokens") == 15.0
        assert registry.sum_counter("missing") == 0.0

    def test_sum_counter_rejects_non_counters(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(1)
        with pytest.raises(ObservabilityError):
            registry.sum_counter("g")

    def test_collect_yields_sorted_families(self):
        registry = MetricsRegistry()
        registry.counter("zzz")
        registry.gauge("aaa")
        names = [name for name, _, _, _ in registry.collect()]
        assert names == ["aaa", "zzz"]

    def test_get_returns_none_for_unknown(self):
        registry = MetricsRegistry()
        assert registry.get("nope") is None
        registry.counter("yes", k="v").inc()
        assert registry.get("yes", k="v").value == 1.0
        assert registry.get("yes", k="other") is None

    def test_help_text_kept_from_first_non_empty(self):
        registry = MetricsRegistry()
        registry.counter("m")
        registry.counter("m", "Described later.")
        family = next(iter(registry.collect()))
        assert family[2] == "Described later."
