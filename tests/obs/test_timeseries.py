"""Tests for the watermark-driven time-series recorder."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import FORCED_SAMPLE_KINDS, SeriesRecorder
from repro.runtime.events import EventKind, EventLog


def make_recorder(interval=1.0, sink=None):
    registry = MetricsRegistry()
    counter = registry.counter("ticks_total", "test counter")
    recorder = SeriesRecorder(registry, interval=interval, sink=sink)
    return registry, counter, recorder


class TestWatermarks:
    def test_first_event_samples_start(self):
        _registry, _counter, recorder = make_recorder()
        log = EventLog()
        recorder.attach(log)
        log.emit(EventKind.CHECK, "A", at=0.25)
        assert [row["trigger"] for row in recorder.rows] == ["start"]
        assert recorder.rows[0]["at"] == 0.25

    def test_watermark_rows_stamped_at_boundaries(self):
        _registry, counter, recorder = make_recorder(interval=1.0)
        log = EventLog()
        recorder.attach(log)
        log.emit(EventKind.CHECK, "A", at=0.0)  # start
        counter.inc(3)
        # One event far ahead crosses several watermarks at once; each
        # crossing gets its own row stamped *at the boundary*, not at the
        # event's timestamp.
        log.emit(EventKind.CHECK, "A", at=2.5)
        ats = [row["at"] for row in recorder.rows]
        assert ats == [0.0, 1.0, 2.0]
        assert [row["trigger"] for row in recorder.rows[1:]] == [
            "watermark",
            "watermark",
        ]
        # Both watermark rows see the counter value at sampling time.
        assert recorder.rows[-1]["metrics"]["ticks_total"] == 3.0

    def test_out_of_order_events_never_sample_backwards(self):
        _registry, _counter, recorder = make_recorder(interval=1.0)
        log = EventLog()
        recorder.attach(log)
        log.emit(EventKind.CHECK, "A", at=5.0)
        # A lane-folded event with an earlier timestamp must not rewind
        # the watermark or emit a retroactive row.
        log.emit(EventKind.CHECK, "A", at=1.0)
        assert [row["at"] for row in recorder.rows] == [5.0]

    def test_forced_samples_on_regime_changes(self):
        assert FORCED_SAMPLE_KINDS == {
            EventKind.REFINE,
            EventKind.BREAKER,
            EventKind.BATCH,
        }
        _registry, _counter, recorder = make_recorder(interval=100.0)
        log = EventLog()
        recorder.attach(log)
        log.emit(EventKind.CHECK, "A", at=0.0)
        log.emit(EventKind.REFINE, "REF", at=0.5)
        log.emit(EventKind.BREAKER, "GEN", at=0.6)
        log.emit(EventKind.BATCH, "BATCH", at=0.7)
        log.emit(EventKind.CHECK, "A", at=0.8)  # no watermark, no force
        assert [row["trigger"] for row in recorder.rows] == [
            "start",
            "refine",
            "breaker",
            "batch",
        ]

    def test_detach_stops_sampling(self):
        _registry, _counter, recorder = make_recorder()
        log = EventLog()
        recorder.attach(log)
        log.emit(EventKind.CHECK, "A", at=0.0)
        assert recorder.detach(log)
        log.emit(EventKind.CHECK, "A", at=5.0)
        assert len(recorder.rows) == 1

    def test_interval_must_be_positive(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="interval"):
            SeriesRecorder(registry, interval=0.0)


class TestSampling:
    def test_sink_receives_every_row(self):
        rows = []
        _registry, _counter, recorder = make_recorder(sink=rows.append)
        log = EventLog()
        recorder.attach(log)
        log.emit(EventKind.CHECK, "A", at=0.0)
        recorder.sample(1.5, "final")
        assert rows == recorder.rows
        assert rows[-1] == {
            "at": 1.5,
            "trigger": "final",
            "metrics": {"ticks_total": 0.0},
        }

    def test_labelled_instruments_render_prometheus_style(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", "c", operator="GEN").inc()
        recorder = SeriesRecorder(registry)
        row = recorder.sample(0.0)
        assert row["metrics"] == {"calls_total{operator=GEN}": 1.0}

    def test_instrument_cache_tracks_new_registrations(self):
        """Instruments registered *after* the first sample still appear.

        The recorder caches the instrument sweep against the registry's
        registration version; a new counter bumps the version and must
        show up in the next row.
        """
        registry, counter, recorder = make_recorder()
        first = recorder.sample(0.0)
        assert set(first["metrics"]) == {"ticks_total"}
        registry.gauge("depth", "test gauge").set(4.0)
        counter.inc()
        second = recorder.sample(1.0)
        assert second["metrics"] == {"ticks_total": 1.0, "depth": 4.0}

    def test_histograms_are_not_sampled(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "h").observe(0.5)
        registry.counter("n_total", "c").inc()
        recorder = SeriesRecorder(registry)
        # Histograms have no single scalar value; only counters/gauges
        # become series columns.
        assert set(recorder.sample(0.0)["metrics"]) == {"n_total"}
