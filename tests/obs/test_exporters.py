"""Tests for the Prometheus text exposition and JSON report exporters."""

import json

from repro.obs import MetricsRegistry, to_prometheus
from repro.obs.report import RunReport
from repro.obs.exporters import write_json_report

#: full exposition snapshot for a small, deterministically built registry.
PROMETHEUS_SNAPSHOT = """\
# HELP spear_events_total Events observed by kind.
# TYPE spear_events_total counter
spear_events_total{kind="check"} 1
spear_events_total{kind="generate"} 2
# HELP spear_gen_latency_seconds Per-call generation latency.
# TYPE spear_gen_latency_seconds histogram
spear_gen_latency_seconds_bucket{le="1"} 1
spear_gen_latency_seconds_bucket{le="5"} 2
spear_gen_latency_seconds_bucket{le="+Inf"} 2
spear_gen_latency_seconds_sum 3.5
spear_gen_latency_seconds_count 2
# HELP spear_kv_cache_hit_rate Block cache hit rate.
# TYPE spear_kv_cache_hit_rate gauge
spear_kv_cache_hit_rate{model="qwen"} 0.75
"""


def _small_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter(
        "spear_events_total", "Events observed by kind.", kind="generate"
    ).inc(2)
    registry.counter("spear_events_total", kind="check").inc()
    hist = registry.histogram(
        "spear_gen_latency_seconds",
        "Per-call generation latency.",
        buckets=(1.0, 5.0),
    )
    hist.observe(0.5)
    hist.observe(3.0)
    registry.gauge(
        "spear_kv_cache_hit_rate", "Block cache hit rate.", model="qwen"
    ).set(0.75)
    return registry


class TestPrometheusExposition:
    def test_snapshot(self):
        assert to_prometheus(_small_registry()) == PROMETHEUS_SNAPSHOT

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", operator='GEN["a\\b"]\n').inc()
        text = to_prometheus(registry)
        assert r'operator="GEN[\"a\\b\"]\n"' in text
        # Exposition lines must never contain raw newlines inside labels.
        for line in text.splitlines():
            assert line.count('"') % 2 == 0 or line.startswith("#")

    def test_non_integer_values_keep_precision(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(0.123456789)
        assert "g 0.123456789" in to_prometheus(registry)

    def test_help_text_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", 'multi\nline "help" with \\ slash').inc()
        text = to_prometheus(registry)
        assert '# HELP c multi\\nline "help" with \\\\ slash' in text
        # No physical line of the exposition may contain a raw newline
        # introduced by help text.
        assert all("\n" not in line for line in text.splitlines())

    def test_hostile_label_values_round_trip(self):
        # Prompt keys with quotes/backslashes/newlines must survive the
        # exposition format: parse the escaped value back and compare.
        hostile = 'summarize "v2"\\final\nprompt'
        registry = MetricsRegistry()
        registry.counter(
            "spear_prompt_tokens_total", "Tokens by prompt.", prompt=hostile
        ).inc(7)
        text = to_prometheus(registry)
        sample = next(
            line for line in text.splitlines() if not line.startswith("#")
        )
        start = sample.index('prompt="') + len('prompt="')
        end = sample.rindex('"')
        escaped = sample[start:end]
        unescaped = (
            escaped.replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\\\\", "\\")
        )
        assert unescaped == hostile
        assert sample.endswith(" 7")


class TestJsonReport:
    def test_write_json_report_round_trips(self, tmp_path):
        report = RunReport(
            operators={"GEN": {"invocations": 2}},
            generation={},
            model={},
            totals={"events": 4},
            cache={},
            slowest_spans=[],
        )
        path = write_json_report(report, tmp_path / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded["operators"]["GEN"]["invocations"] == 2
        assert loaded["totals"]["events"] == 4
