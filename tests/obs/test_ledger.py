"""Tests for the persistent run ledger (write side + read side)."""

import json

import pytest

from repro.core import CHECK, Condition, GEN, Pipeline, REF, RefAction
from repro.data import make_tweet_corpus
from repro.errors import SpearError
from repro.llm import SimulatedLLM
from repro.obs import Ledger, ObsCollector
from repro.obs.ledger import LedgerRun, RunLedger
from repro.runtime.events import EventKind
from repro.runtime.executor import Executor
from repro.runtime.options import RuntimeOptions


def make_executor(ledger_dir, *, seed=7, collector=True):
    llm = SimulatedLLM("qwen2.5-7b-instruct", enable_prefix_cache=False)
    llm.bind_tweets(make_tweet_corpus(4, seed=seed))
    options = RuntimeOptions(
        model=llm,
        clock=llm.clock,
        collector=ObsCollector() if collector else None,
        ledger_dir=ledger_dir,
    )
    return Executor(options=options)


def make_pipeline(state, corpus_seed=7):
    corpus = make_tweet_corpus(4, seed=corpus_seed)
    state.prompts.create(
        "qa", f"Summarize the tweet.\nTweet:\n{corpus[0].text}"
    )
    return Pipeline(
        [
            GEN("answer", prompt="qa"),
            CHECK(
                Condition.metadata_below("confidence", 2.0),
                REF(RefAction.APPEND, "Be brief.", key="qa"),
            ),
            GEN("answer", prompt="qa"),
        ]
    )


@pytest.fixture
def ledgered_run(tmp_path):
    """One completed ledgered run; returns (root, state, result)."""
    root = tmp_path / "runs"
    executor = make_executor(root)
    state = executor.new_state()
    result = executor.run(make_pipeline(state), state=state)
    return root, state, result


class TestWriteSide:
    def test_run_directory_layout(self, ledgered_run):
        root, _state, _result = ledgered_run
        run_dir = root / "000001"
        for name in (
            "manifest.json",
            "events.jsonl",
            "report.json",
            "attribution.json",
            "series.jsonl",
        ):
            assert (run_dir / name).exists(), name

    def test_manifest_identity_and_status(self, ledgered_run):
        root, state, _result = ledgered_run
        run = Ledger(root).latest()
        assert run.status == "completed"
        assert run.manifest["runner"] == "Executor"
        assert run.manifest["event_count"] == len(state.events)
        assert run.manifest["options"]["model_profile"] == "qwen2.5-7b-instruct"
        assert run.manifest["pipeline"]["operators"]

    def test_events_round_trip_losslessly(self, ledgered_run):
        root, state, _result = ledgered_run
        reloaded = Ledger(root).latest().events()
        original = state.events.all()
        assert len(reloaded) == len(original)
        for back, orig in zip(reloaded, original):
            assert back.kind is orig.kind  # enum identity, not a str
            assert back.operator == orig.operator
            assert back.at == orig.at
            assert dict(back.payload) == dict(orig.payload)

    def test_sequential_run_ids(self, tmp_path):
        root = tmp_path / "runs"
        executor = make_executor(root)
        for _ in range(2):
            state = executor.new_state()
            executor.run(make_pipeline(state), state=state)
        assert Ledger(root).list() == ["000001", "000002"]

    def test_refinement_loop_is_one_run(self, tmp_path):
        from repro.runtime.incremental import RefinementLoop

        root = tmp_path / "runs"
        executor = make_executor(root)
        state = executor.new_state()
        pipeline = make_pipeline(state)
        loop = RefinementLoop(
            executor,
            pipeline,
            refiners=[REF(RefAction.APPEND, "Be concise.", key="qa")],
            max_iterations=2,
        )
        loop.run(state=state)
        # The loop drives Executor.run per iteration, yet the reentrant
        # scope keeps everything in a single runs/<id>/ directory.
        ledger = Ledger(root)
        assert ledger.list() == ["000001"]
        run = ledger.latest()
        assert run.manifest["runner"] == "RefinementLoop"
        assert run.manifest["event_count"] == len(state.events)

    def test_failed_run_is_tombstoned(self, tmp_path):
        root = tmp_path / "runs"
        executor = make_executor(root)
        state = executor.new_state()
        pipeline = Pipeline([GEN("answer", prompt="missing")])
        with pytest.raises(SpearError):
            executor.run(pipeline, state=state)
        run = Ledger(root).latest()
        assert run.status == "failed"
        # The tombstone still carries whatever was observed before the
        # failure — a report over the partial event stream.
        assert run.report().totals["events"] == run.manifest["event_count"]

    def test_finalize_is_idempotent(self, tmp_path):
        from repro.runtime.events import EventLog

        ledger = RunLedger.create(tmp_path / "runs")
        log = EventLog()
        ledger.open(log)
        log.emit(EventKind.CHECK, "A", at=1.0)
        ledger.finalize(status="completed")
        ledger.finalize(status="failed")  # no-op: first outcome wins
        run = LedgerRun(ledger.path)
        assert run.status == "completed"
        assert run.manifest["event_count"] == 1

    def test_no_ledger_dir_writes_nothing(self, tmp_path):
        executor = make_executor(None)
        state = executor.new_state()
        executor.run(make_pipeline(state), state=state)
        assert list(tmp_path.iterdir()) == []
        assert getattr(state, "ledger", None) is None


class TestDeterminism:
    def _run_once(self, root):
        executor = make_executor(root, seed=7)
        state = executor.new_state()
        executor.run(make_pipeline(state), state=state)
        return Ledger(root).latest()

    def test_same_seed_runs_are_byte_identical(self, tmp_path):
        run_a = self._run_once(tmp_path / "a")
        run_b = self._run_once(tmp_path / "b")
        # Everything stamped on the virtual clock diffs to zero byte-for-
        # byte; only the manifest carries host wall-clock times.
        for name in (
            "events.jsonl",
            "report.json",
            "attribution.json",
            "series.jsonl",
        ):
            assert (run_a.path / name).read_bytes() == (
                run_b.path / name
            ).read_bytes(), name

    def test_collector_reuse_matches_replay(self, tmp_path):
        """Finalization via the live collector must equal offline replay.

        With a collector attached, finalize reuses its accrued metrics;
        without one it replays the captured events.  The event-derived
        sections must agree exactly either way.
        """
        with_collector = self._run_once(tmp_path / "a").report()
        executor = make_executor(tmp_path / "b" / "runs", collector=False)
        state = executor.new_state()
        executor.run(make_pipeline(state), state=state)
        replayed = Ledger(tmp_path / "b" / "runs").latest().report()
        assert replayed.operators == with_collector.operators
        assert replayed.generation == with_collector.generation
        assert replayed.slowest_spans == with_collector.slowest_spans
        assert (
            replayed.totals["gen_calls"] == with_collector.totals["gen_calls"]
        )


class TestReadSide:
    def test_list_load_latest(self, ledgered_run):
        root, _state, _result = ledgered_run
        ledger = Ledger(root)
        assert ledger.list() == ["000001"]
        assert ledger.load("000001").run_id == "000001"
        assert ledger.latest().run_id == "000001"

    def test_empty_root(self, tmp_path):
        ledger = Ledger(tmp_path / "nowhere")
        assert ledger.list() == []
        assert ledger.latest() is None

    def test_load_unknown_run_lists_available(self, ledgered_run):
        root, _state, _result = ledgered_run
        with pytest.raises(SpearError, match="available: 000001"):
            Ledger(root).load("000999")

    def test_not_a_run_directory(self, tmp_path):
        (tmp_path / "junk").mkdir()
        with pytest.raises(SpearError, match="no manifest.json"):
            LedgerRun(tmp_path / "junk")

    def test_report_round_trips_rendering_byte_identical(self, tmp_path):
        """Satellite (d): report.json reloads to byte-identical stats text.

        The run is ledgered *without* a collector, so the persisted report
        was built purely from the captured events — rebuilding it offline
        from the persisted events.jsonl must render the exact same
        ``spear stats`` text.
        """
        from repro.cli import render_stats_text
        from repro.obs import build_run_report

        root = tmp_path / "runs"
        executor = make_executor(root, collector=False)
        state = executor.new_state()
        executor.run(make_pipeline(state), state=state)
        run = Ledger(root).latest()
        persisted = run.report()
        rebuilt = build_run_report(run.events())
        assert render_stats_text(persisted) == render_stats_text(rebuilt)
        # And the dict<->dataclass round-trip itself is lossless.
        assert persisted.to_dict() == json.loads(
            (run.path / "report.json").read_text()
        )

    def test_series_rows_parse_and_are_ordered(self, ledgered_run):
        root, _state, _result = ledgered_run
        rows = Ledger(root).latest().series()
        assert rows, "series.jsonl should not be empty with a collector"
        assert rows[0]["trigger"] == "start"
        assert rows[-1]["trigger"] == "final"
        ats = [row["at"] for row in rows]
        assert ats == sorted(ats)
        assert any(
            name.startswith("spear_events_total")
            for row in rows
            for name in row["metrics"]
        )
