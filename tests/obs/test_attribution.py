"""Tests for prompt-lineage cost attribution (token conservation first)."""

from repro.obs import UNATTRIBUTED, build_attribution, build_run_report
from repro.obs.attribution import AttributionReport
from repro.obs.report import Pricing
from repro.runtime.events import EventKind, EventLog


def gen_event(
    log,
    at,
    *,
    key="qa",
    version=1,
    latency=1.0,
    prompt_tokens=100,
    cached_tokens=20,
    output_tokens=50,
    confidence=0.8,
):
    log.emit(
        EventKind.GENERATE,
        'GEN["x"]',
        at=at,
        prompt_key=key,
        prompt_version=version,
        latency=latency,
        prompt_tokens=prompt_tokens,
        cached_tokens=cached_tokens,
        output_tokens=output_tokens,
        confidence=confidence,
    )


class TestCharging:
    def test_each_generate_charges_one_bucket(self):
        log = EventLog()
        gen_event(log, 1.0, key="qa", version=1)
        gen_event(log, 2.0, key="qa", version=1, confidence=0.6)
        gen_event(log, 3.0, key="digest", version=3, prompt_tokens=40)
        report = build_attribution(log, pricing=Pricing(0, 0, 0))

        assert set(report.prompts) == {"qa@v1", "digest@v3"}
        qa = report.prompts["qa@v1"]
        assert qa["calls"] == 2
        assert qa["prompt_tokens"] == 200
        assert qa["mean_confidence"] == 0.7
        assert report.prompts["digest@v3"]["prompt_tokens"] == 40

    def test_conservation_totals(self):
        log = EventLog()
        gen_event(log, 1.0, key="qa", version=1)
        gen_event(log, 2.0, key="digest", version=2, output_tokens=5)
        report = build_attribution(log)
        totals = report.totals
        assert totals["attributed_calls"] == 2
        assert totals["prompt_tokens"] == sum(
            b["prompt_tokens"] for b in report.prompts.values()
        )
        assert totals["output_tokens"] == 55

    def test_pricing_flows_into_buckets(self):
        pricing = Pricing(
            prompt_usd_per_1m=1.0, cached_usd_per_1m=0.0, output_usd_per_1m=0.0
        )
        log = EventLog()
        gen_event(
            log, 1.0, prompt_tokens=1_000_000, cached_tokens=0, output_tokens=0
        )
        report = build_attribution(log, pricing=pricing)
        assert report.prompts["qa@v1"]["cost_usd"] == 1.0
        assert report.totals["cost_usd"] == 1.0

    def test_retries_resolve_to_the_frames_generate(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, 'GEN["x"]', at=0.0)
        log.emit(EventKind.RETRY, 'GEN["x"]', at=0.5, delay=2.0)
        log.emit(EventKind.FAULT, 'GEN["x"]', at=0.5)
        gen_event(log, 1.0, key="qa", version=2)
        log.emit(EventKind.OPERATOR_END, 'GEN["x"]', at=1.0)
        report = build_attribution(log)
        qa = report.prompts["qa@v2"]
        assert qa["retries"] == 1
        assert qa["faults"] == 1
        assert qa["backoff_seconds"] == 2.0
        assert UNATTRIBUTED not in report.prompts

    def test_frame_without_generate_flushes_to_unattributed(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, 'GEN["x"]', at=0.0)
        log.emit(EventKind.RETRY, 'GEN["x"]', at=0.5, delay=1.5)
        log.emit(EventKind.OPERATOR_END, 'GEN["x"]', at=1.0)
        report = build_attribution(log)
        orphan = report.prompts[UNATTRIBUTED]
        assert orphan["retries"] == 1
        assert orphan["backoff_seconds"] == 1.5
        assert report.totals["retries"] == 1

    def test_truncated_log_conserves_pending_charges(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, 'GEN["x"]', at=0.0)
        log.emit(EventKind.RETRY, 'GEN["x"]', at=0.5)
        # Log ends mid-operator (crash): nothing may vanish.
        report = build_attribution(log)
        assert report.prompts[UNATTRIBUTED]["retries"] == 1

    def test_cache_hit_savings_split_across_dependencies(self):
        log = EventLog()
        gen_event(log, 1.0, key="a", version=1)
        gen_event(log, 2.0, key="b", version=2)
        log.emit(
            EventKind.CACHE_HIT,
            'GEN["x"]',
            at=3.0,
            prompt_versions=[["a", 1], ["b", 2]],
            saved_seconds=4.0,
        )
        report = build_attribution(log)
        assert report.prompts["a@v1"]["cache_saved_seconds"] == 2.0
        assert report.prompts["b@v2"]["cache_saved_seconds"] == 2.0
        assert report.prompts["a@v1"]["cache_hits"] == 1
        assert report.totals["cache_saved_seconds"] == 4.0


class TestLineage:
    def _refined_log(self):
        log = EventLog()
        gen_event(log, 1.0, key="qa", version=1, latency=2.0, confidence=0.5)
        log.emit(
            EventKind.REFINE,
            "REF",
            at=1.5,
            key="qa",
            version=2,
            action="append",
            mode="eager",
        )
        gen_event(log, 2.0, key="qa", version=2, latency=1.0, confidence=0.9)
        return log

    def test_lineage_chains_versions(self):
        report = build_attribution(self._refined_log())
        lineage = report.lineage["qa"]
        assert lineage["versions"] == [1, 2]
        assert lineage["edges"] == [
            {
                "to_version": 2,
                "action": "append",
                "mode": "eager",
                "condition": None,
            }
        ]
        assert lineage["totals"]["calls"] == 2
        assert lineage["totals"]["prompt_tokens"] == 200

    def test_refinement_before_after_utility(self):
        report = build_attribution(self._refined_log())
        assert len(report.refinements) == 1
        row = report.refinements[0]
        assert (row["from_version"], row["to_version"]) == (1, 2)
        assert row["before"]["mean_confidence"] == 0.5
        assert row["after"]["mean_confidence"] == 0.9
        assert row["delta"]["mean_confidence"] == 0.4
        assert row["delta"]["mean_latency"] == -1.0

    def test_refinement_edge_needs_calls_on_both_sides(self):
        log = EventLog()
        log.emit(
            EventKind.REFINE,
            "REF",
            at=0.5,
            key="qa",
            version=2,
            action="append",
            mode="eager",
        )
        gen_event(log, 1.0, key="qa", version=2)
        # v1 never generated: lineage exists, but no utility row.
        report = build_attribution(log)
        assert report.refinements == []
        assert report.lineage["qa"]["edges"][0]["to_version"] == 2


class TestRoundTripAndIntegration:
    def test_from_dict_round_trip(self):
        log = EventLog()
        gen_event(log, 1.0)
        report = build_attribution(log)
        clone = AttributionReport.from_dict(report.to_dict())
        assert clone.to_dict() == report.to_dict()

    def test_real_run_conserves_every_token(self, state, tweet_corpus):
        """The invariant of the whole module, on a real pipeline run."""
        from repro.core import CHECK, Condition, GEN, REF, RefAction

        state.prompts.create(
            "qa", f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        )
        pipeline = (
            GEN("answer", prompt="qa")
            >> CHECK(
                Condition.metadata_below("confidence", 2.0),
                REF(RefAction.APPEND, "Be brief.", key="qa"),
            )
            >> GEN("answer", prompt="qa")
        )
        pipeline.apply(state)

        attribution = build_attribution(state.events)
        report = build_run_report(state.events)
        for field in ("prompt_tokens", "cached_tokens", "output_tokens"):
            assert attribution.totals[field] == report.totals[field], field
        assert attribution.totals["attributed_calls"] == report.totals["gen_calls"]
        assert UNATTRIBUTED not in attribution.prompts
        # The refinement edge produced a measured before/after row.
        assert attribution.refinements
        # Prompt versions start at 0; the refinement bumped qa to v1.
        assert attribution.lineage["qa"]["versions"] == [0, 1]
