"""Tests for the seeded fault-injection plan (repro.resilience.faults)."""

import pytest

from repro.resilience.faults import FaultDecision, FaultPlan, FaultSpec, unit_draw


class TestUnitDraw:
    def test_deterministic(self):
        assert unit_draw(1, "a", 2) == unit_draw(1, "a", 2)

    def test_in_unit_interval(self):
        draws = [unit_draw(7, "fault", i) for i in range(500)]
        assert all(0.0 <= draw < 1.0 for draw in draws)

    def test_distinct_inputs_distinct_draws(self):
        assert unit_draw(0, "x") != unit_draw(0, "y")

    def test_roughly_uniform(self):
        draws = [unit_draw(3, "u", i) for i in range(4000)]
        below = sum(draw < 0.1 for draw in draws) / len(draws)
        assert 0.07 < below < 0.13


class TestFaultSpec:
    def test_defaults_inject_nothing(self):
        assert FaultSpec().failure_rate == 0.0

    def test_failure_rate_sums_channels(self):
        spec = FaultSpec(
            transient_rate=0.1, rate_limit_rate=0.05,
            timeout_rate=0.02, malformed_rate=0.03,
        )
        assert spec.failure_rate == pytest.approx(0.2)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            FaultSpec(transient_rate=-0.1)

    def test_rejects_rates_summing_past_one(self):
        with pytest.raises(ValueError):
            FaultSpec(transient_rate=0.6, timeout_rate=0.6)

    def test_rejects_zero_truncation_fraction(self):
        with pytest.raises(ValueError):
            FaultSpec(truncation_fraction=0.0)


class TestFaultPlan:
    def test_clean_plan_never_fails(self):
        plan = FaultPlan(0)
        for i in range(50):
            assert plan.decide("m", f"prompt {i}").kind is None

    def test_same_seed_same_decisions(self):
        spec = FaultSpec(transient_rate=0.3, malformed_rate=0.2)
        plan_a = FaultPlan(42, default=spec)
        plan_b = FaultPlan(42, default=spec)
        decisions_a = [plan_a.decide("m", f"p{i}") for i in range(200)]
        decisions_b = [plan_b.decide("m", f"p{i}") for i in range(200)]
        assert decisions_a == decisions_b

    def test_different_seed_different_decisions(self):
        spec = FaultSpec(transient_rate=0.5)
        kinds_a = [FaultPlan(1, default=spec).decide("m", f"p{i}").kind for i in range(60)]
        kinds_b = [FaultPlan(2, default=spec).decide("m", f"p{i}").kind for i in range(60)]
        assert kinds_a != kinds_b

    def test_attempt_counter_advances_per_prompt(self):
        plan = FaultPlan(0, default=FaultSpec(transient_rate=0.5))
        first = plan.decide("m", "same prompt")
        second = plan.decide("m", "same prompt")
        other = plan.decide("m", "different prompt")
        assert (first.attempt, second.attempt) == (0, 1)
        assert other.attempt == 0

    def test_retry_draws_independently(self):
        # With a 50% rate, 20 attempts of one prompt should mix outcomes.
        plan = FaultPlan(9, default=FaultSpec(transient_rate=0.5))
        kinds = {plan.decide("m", "p").kind for _ in range(20)}
        assert kinds == {None, "transient"}

    def test_empirical_rate_matches_spec(self):
        plan = FaultPlan(5, default=FaultSpec(transient_rate=0.06, rate_limit_rate=0.04))
        decisions = [plan.decide("m", f"p{i}") for i in range(3000)]
        failed = sum(d.kind is not None for d in decisions) / len(decisions)
        assert 0.07 < failed < 0.13

    def test_per_model_override(self):
        plan = FaultPlan(
            0,
            default=FaultSpec(),
            per_model={"flaky": FaultSpec(transient_rate=1.0)},
        )
        assert plan.decide("stable", "p").kind is None
        assert plan.decide("flaky", "p").kind == "transient"

    def test_spike_only_on_first_attempt(self):
        plan = FaultPlan(0, default=FaultSpec(spike_rate=1.0, spike_factor=2.5))
        first = plan.decide("m", "p")
        second = plan.decide("m", "p")
        assert first.spike_factor == 2.5
        assert second.spike_factor == 1.0

    def test_snapshot_and_reset(self):
        plan = FaultPlan(3, default=FaultSpec(transient_rate=1.0))
        plan.decide("m", "a")
        plan.decide("m", "b")
        snap = plan.snapshot()
        assert snap["decisions"] == 2
        assert snap["injected"] == {"transient": 2}
        assert snap["injected_total"] == 2
        plan.reset()
        assert plan.snapshot()["decisions"] == 0
        # attempt counters are also reset: same decision as the first call.
        assert plan.decide("m", "a").attempt == 0

    def test_decision_carries_spec(self):
        spec = FaultSpec(transient_rate=1.0, retry_after_s=7.0)
        decision = FaultPlan(0, default=spec).decide("m", "p")
        assert isinstance(decision, FaultDecision)
        assert decision.spec.retry_after_s == 7.0
