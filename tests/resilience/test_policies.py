"""Tests for retry/breaker/fallback policy objects (repro.resilience.policies)."""

import pytest

from repro.errors import SpearError, TransientModelError
from repro.resilience.policies import (
    BreakerPolicy,
    CircuitBreaker,
    FallbackChain,
    ModelFallback,
    RetryPolicy,
    StaticFallback,
)


class TestRetryPolicy:
    def test_exponential_backoff(self):
        policy = RetryPolicy(base_delay_s=1.0, multiplier=2.0, jitter=0.0)
        assert policy.delay_for(0) == 1.0
        assert policy.delay_for(1) == 2.0
        assert policy.delay_for(2) == 4.0

    def test_delay_capped(self):
        policy = RetryPolicy(
            base_delay_s=1.0, multiplier=10.0, max_delay_s=5.0, jitter=0.0
        )
        assert policy.delay_for(3) == 5.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.2)
        low = policy.delay_for(0, draw=0.0)
        high = policy.delay_for(0, draw=0.999999)
        assert low == pytest.approx(0.8)
        assert high == pytest.approx(1.2, rel=1e-4)
        assert policy.delay_for(0, draw=0.5) == pytest.approx(1.0)

    def test_retry_after_floor(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.0)
        assert policy.delay_for(0, retry_after=3.0) == 3.0

    def test_retryable_follows_error_flag(self):
        policy = RetryPolicy()
        assert policy.retryable(TransientModelError("x"))
        assert not policy.retryable(SpearError("x"))
        assert not policy.retryable(ValueError("x"))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker(BreakerPolicy())
        assert breaker.state(0.0) == CircuitBreaker.CLOSED
        assert breaker.allow(0.0)

    def test_trips_open_at_threshold(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=3, cooldown_s=10.0))
        assert breaker.record_failure(0.0) == CircuitBreaker.CLOSED
        assert breaker.record_failure(1.0) == CircuitBreaker.CLOSED
        assert breaker.record_failure(2.0) == CircuitBreaker.OPEN
        assert not breaker.allow(2.5)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        assert breaker.record_failure(2.0) == CircuitBreaker.CLOSED

    def test_half_open_after_cooldown_admits_one_probe(self):
        breaker = CircuitBreaker(
            BreakerPolicy(failure_threshold=1, cooldown_s=10.0, half_open_probes=1)
        )
        breaker.record_failure(0.0)
        assert not breaker.allow(5.0)
        assert breaker.state(10.0) == CircuitBreaker.HALF_OPEN
        assert breaker.allow(10.0)  # the probe
        assert not breaker.allow(10.0)  # concurrent second call rejected

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, cooldown_s=5.0))
        breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        assert breaker.record_success(5.5) == CircuitBreaker.CLOSED
        assert breaker.allow(5.5)

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=1, cooldown_s=5.0))
        breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        assert breaker.record_failure(5.0) == CircuitBreaker.OPEN
        assert not breaker.allow(9.0)  # new cooldown runs from t=5
        assert breaker.allow(10.0)

    def test_snapshot(self):
        breaker = CircuitBreaker(BreakerPolicy(failure_threshold=2))
        breaker.record_failure(1.0)
        snap = breaker.snapshot(1.0)
        assert snap["state"] == CircuitBreaker.CLOSED
        assert snap["consecutive_failures"] == 1
        breaker.record_failure(2.0)
        snap = breaker.snapshot(2.0)
        assert snap["state"] == CircuitBreaker.OPEN
        assert snap["opened_at"] == 2.0
        assert snap["transitions"] == 1


class TestFallbacks:
    def test_static_fallback_resolves_literal_and_callable(self):
        assert StaticFallback("canned").resolve(None, "p") == "canned"
        dynamic = StaticFallback(lambda state, prompt: prompt.upper())
        assert dynamic.resolve(None, "hi") == "HI"

    def test_chain_coerces_and_validates(self):
        chain = FallbackChain([ModelFallback("gpt-4o-mini"), StaticFallback("x")])
        assert len(chain) == 2
        assert bool(chain)
        assert not FallbackChain()
        with pytest.raises(SpearError):
            FallbackChain(["not a target"])
