"""Tests for ResilienceRuntime: retry recovery, breakers, degraded fallback."""

from types import SimpleNamespace

import pytest

from repro.core.state import ExecutionState
from repro.errors import (
    CircuitOpenError,
    RateLimitError,
    SpearError,
    TransientModelError,
)
from repro.llm.model import SimulatedLLM
from repro.resilience import (
    BreakerPolicy,
    FallbackChain,
    FaultPlan,
    FaultSpec,
    ModelFallback,
    ResilienceRuntime,
    RetryPolicy,
    StaticFallback,
)
from repro.runtime.clock import VirtualClock
from repro.runtime.events import EventKind


class FlakyModel:
    """A stub backend that fails the first ``fail_times`` calls."""

    def __init__(self, fail_times=0, error_factory=None):
        self.profile = SimpleNamespace(name="stub-model")
        self.calls = 0
        self.fail_times = fail_times
        self._error_factory = error_factory or (
            lambda: TransientModelError("boom", injected=True)
        )

    def generate(self, prompt, *, max_tokens=None):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise self._error_factory()
        return SimpleNamespace(text=f"ok after {self.calls}", task="stub")


def make_state(model):
    return ExecutionState(model=model, clock=VirtualClock())


class TestRetryPath:
    def test_recovers_after_transient_failures(self):
        model = FlakyModel(fail_times=2)
        state = make_state(model)
        runtime = ResilienceRuntime(
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.5, jitter=0.0)
        )
        result = runtime.generate(state, "hello")
        assert result.text == "ok after 3"
        assert model.calls == 3
        assert state.metadata["resilience_retries"] == 2
        # backoff 0.5 then 1.0 charged to the virtual clock.
        assert state.clock.now == pytest.approx(1.5)
        assert len(state.events.of_kind(EventKind.FAULT)) == 2
        retries = state.events.of_kind(EventKind.RETRY)
        assert [event.payload["attempt"] for event in retries] == [1, 2]

    def test_exhaustion_reraises_last_error(self):
        model = FlakyModel(fail_times=10)
        state = make_state(model)
        runtime = ResilienceRuntime(retry=RetryPolicy(max_attempts=2, jitter=0.0))
        with pytest.raises(TransientModelError):
            runtime.generate(state, "hello")
        assert model.calls == 2

    def test_non_retryable_error_fails_fast(self):
        model = FlakyModel(
            fail_times=10, error_factory=lambda: SpearError("fatal")
        )
        state = make_state(model)
        runtime = ResilienceRuntime(retry=RetryPolicy(max_attempts=5))
        with pytest.raises(SpearError):
            runtime.generate(state, "hello")
        assert model.calls == 1

    def test_retry_after_floors_the_backoff(self):
        model = FlakyModel(
            fail_times=1,
            error_factory=lambda: RateLimitError(retry_after=5.0),
        )
        state = make_state(model)
        runtime = ResilienceRuntime(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.1, jitter=0.0)
        )
        runtime.generate(state, "hello")
        assert state.clock.now >= 5.0

    def test_no_policy_means_single_attempt(self):
        model = FlakyModel(fail_times=1)
        state = make_state(model)
        runtime = ResilienceRuntime()
        with pytest.raises(TransientModelError):
            runtime.generate(state, "hello")
        assert model.calls == 1


class TestCleanPathByteIdentity:
    def test_first_attempt_success_leaves_no_trace(self):
        model = FlakyModel(fail_times=0)
        state = make_state(model)
        runtime = ResilienceRuntime(
            retry=RetryPolicy(max_attempts=4),
            breaker=BreakerPolicy(),
            fallback=FallbackChain((StaticFallback("never used"),)),
        )
        result = runtime.generate(state, "hello")
        assert result.text == "ok after 1"
        assert state.clock.now == 0.0
        assert state.events.all() == []
        assert "resilience_retries" not in state.metadata
        assert "degraded" not in state.metadata


class TestBreaker:
    def test_trips_then_rejects_with_circuit_open(self):
        model = FlakyModel(fail_times=100)
        state = make_state(model)
        runtime = ResilienceRuntime(
            retry=RetryPolicy(max_attempts=5, base_delay_s=0.1, jitter=0.0),
            breaker=BreakerPolicy(failure_threshold=2, cooldown_s=1e6),
        )
        with pytest.raises(CircuitOpenError):
            runtime.generate(state, "hello")
        # Two real calls trip the breaker; remaining attempts are rejected
        # without touching the model.
        assert model.calls == 2
        tripped = [
            event
            for event in state.events.of_kind(EventKind.BREAKER)
            if event.payload["action"] == "tripped"
        ]
        assert len(tripped) == 1
        rejected = [
            event
            for event in state.events.of_kind(EventKind.BREAKER)
            if event.payload["action"] == "rejected"
        ]
        assert len(rejected) == 3

    def test_breaker_shared_across_calls(self):
        model = FlakyModel(fail_times=100)
        state = make_state(model)
        runtime = ResilienceRuntime(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.1, jitter=0.0),
            breaker=BreakerPolicy(failure_threshold=2, cooldown_s=1e6),
        )
        with pytest.raises(TransientModelError):
            runtime.generate(state, "hello")
        assert model.calls == 2  # breaker now open
        with pytest.raises(CircuitOpenError):
            runtime.generate(state, "hello again")
        assert model.calls == 2  # rejected without calling the model

    def test_breaker_for_is_per_model_label(self):
        runtime = ResilienceRuntime(breaker=BreakerPolicy())
        assert runtime.breaker_for("a") is runtime.breaker_for("a")
        assert runtime.breaker_for("a") is not runtime.breaker_for("b")
        assert ResilienceRuntime().breaker_for("a") is None


class TestFallback:
    def test_static_fallback_marks_degraded(self):
        model = FlakyModel(fail_times=100)
        state = make_state(model)
        runtime = ResilienceRuntime(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.1, jitter=0.0),
            fallback=FallbackChain((StaticFallback("canned answer"),)),
        )
        result = runtime.generate(state, "hello")
        assert result.text == "canned answer"
        assert result.extras["degraded"] is True
        assert state.metadata["degraded"] is True
        assert state.metadata["degraded_target"] == "static"
        assert state.metadata["degraded_runs"] == 1
        fallbacks = state.events.of_kind(EventKind.FALLBACK)
        assert len(fallbacks) == 1
        assert fallbacks[0].payload["reason"] == "TransientModelError"

    def test_model_fallback_serves_from_cheaper_tier(self):
        llm = SimulatedLLM(
            "qwen2.5-7b-instruct",
            enable_prefix_cache=False,
            fault_plan=FaultPlan(0, default=FaultSpec(transient_rate=1.0)),
        )
        state = ExecutionState(model=llm, clock=llm.clock)
        runtime = ResilienceRuntime(
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.1, jitter=0.0),
            fallback=FallbackChain((ModelFallback("gpt-4o-mini"),)),
        )
        before = state.clock.now
        result = runtime.generate(
            state,
            "Summarize the tweet in at most 30 words.\nTweet:\ngreat day",
        )
        assert result.text
        assert state.metadata["degraded_target"] == "gpt-4o-mini"
        # The fallback tier's latency is charged to the run's clock.
        assert state.clock.now > before

    def test_all_tiers_exhausted_raises_last_error(self):
        model = FlakyModel(fail_times=100)
        state = make_state(model)
        runtime = ResilienceRuntime(retry=RetryPolicy(max_attempts=2, jitter=0.0))
        with pytest.raises(TransientModelError):
            runtime.generate(state, "hello")
