"""Tests for the semantic operator layer."""

import pytest

from repro.data.tweets import make_tweet_corpus
from repro.errors import PlanningError
from repro.llm import SimulatedLLM
from repro.semantic import SemanticExecutor, SemanticQuery, SemFilter, SemMap

MAP_INSTRUCTION = "Summarize and clean up the tweet in at most 30 words."
FILTER_INSTRUCTION = (
    "Select the tweet only if its sentiment is negative. Respond with yes or no."
)


def _llm(corpus):
    model = SimulatedLLM()
    model.bind_tweets(corpus)
    return model


@pytest.fixture(scope="module")
def low_selectivity_corpus():
    return make_tweet_corpus(60, seed=7, negative_fraction=0.15)


@pytest.fixture(scope="module")
def high_selectivity_corpus():
    return make_tweet_corpus(60, seed=7, negative_fraction=0.9)


class TestQueryBuilder:
    def test_chaining(self):
        query = SemanticQuery(["a"]).sem_map("m").sem_filter("f")
        assert [op.kind for op in query.ops] == ["map", "filter"]
        assert isinstance(query.ops[0], SemMap)
        assert isinstance(query.ops[1], SemFilter)

    def test_empty_query_rejected(self):
        with pytest.raises(PlanningError):
            SemanticQuery(["a"]).validate()

    def test_blank_instruction_rejected(self):
        with pytest.raises(PlanningError):
            SemanticQuery(["a"]).sem_map("   ").validate()


class TestPlanning:
    def test_map_filter_fuses(self, low_selectivity_corpus):
        query = (
            SemanticQuery([t.text for t in low_selectivity_corpus])
            .sem_map(MAP_INSTRUCTION)
            .sem_filter(FILTER_INSTRUCTION)
        )
        result = query.execute(_llm(low_selectivity_corpus))
        assert [step.kind for step in result.plan] == ["fused"]
        assert result.plan[0].order == "map_filter"

    def test_filter_map_stays_sequential_at_low_selectivity(
        self, low_selectivity_corpus
    ):
        query = (
            SemanticQuery([t.text for t in low_selectivity_corpus])
            .sem_filter(FILTER_INSTRUCTION)
            .sem_map(MAP_INSTRUCTION)
        )
        result = query.execute(_llm(low_selectivity_corpus))
        assert [step.kind for step in result.plan] == ["filter", "map"]

    def test_filter_map_fuses_at_high_selectivity(self, high_selectivity_corpus):
        query = (
            SemanticQuery([t.text for t in high_selectivity_corpus])
            .sem_filter(FILTER_INSTRUCTION)
            .sem_map(MAP_INSTRUCTION)
        )
        result = query.execute(_llm(high_selectivity_corpus))
        assert [step.kind for step in result.plan] == ["fused"]
        assert result.plan[0].order == "filter_map"
        assert result.plan[0].selectivity > 0.6

    def test_fusion_disabled(self, low_selectivity_corpus):
        query = (
            SemanticQuery([t.text for t in low_selectivity_corpus])
            .sem_map(MAP_INSTRUCTION)
            .sem_filter(FILTER_INSTRUCTION)
        )
        executor = SemanticExecutor(
            _llm(low_selectivity_corpus), enable_fusion=False
        )
        result = executor.execute(query)
        assert [step.kind for step in result.plan] == ["map", "filter"]
        assert result.pilot_calls == 0

    def test_single_stage_never_fuses(self, low_selectivity_corpus):
        query = SemanticQuery([t.text for t in low_selectivity_corpus]).sem_map(
            MAP_INSTRUCTION
        )
        result = query.execute(_llm(low_selectivity_corpus))
        assert [step.kind for step in result.plan] == ["map"]

    def test_plan_description(self, low_selectivity_corpus):
        query = (
            SemanticQuery([t.text for t in low_selectivity_corpus])
            .sem_map(MAP_INSTRUCTION)
            .sem_filter(FILTER_INSTRUCTION)
        )
        result = query.execute(_llm(low_selectivity_corpus))
        assert "FUSED[map_filter]" in result.plan_description()


class TestExecution:
    def test_filter_keeps_mostly_negatives(self, low_selectivity_corpus):
        query = SemanticQuery(
            [t.text for t in low_selectivity_corpus]
        ).sem_filter(FILTER_INSTRUCTION)
        result = query.execute(_llm(low_selectivity_corpus))
        kept_texts = {row.original for row in result.kept()}
        negatives = {t.text for t in low_selectivity_corpus if t.is_negative}
        # At 15% prevalence, precision is noise-dominated; recall is the
        # stable signal that the filter understood the predicate.
        recall = len(kept_texts & negatives) / len(negatives)
        assert recall > 0.6

    def test_map_rewrites_text(self, low_selectivity_corpus):
        query = SemanticQuery(
            [t.text for t in low_selectivity_corpus.tweets[:10]]
        ).sem_map(MAP_INSTRUCTION)
        result = query.execute(_llm(low_selectivity_corpus))
        changed = sum(1 for row in result.rows if row.text != row.original)
        assert changed >= 8
        assert all(row.kept for row in result.rows)

    def test_sequential_filter_map_skips_dropped_items(self, low_selectivity_corpus):
        items = [t.text for t in low_selectivity_corpus]
        query = (
            SemanticQuery(items)
            .sem_filter(FILTER_INSTRUCTION)
            .sem_map(MAP_INSTRUCTION)
        )
        result = query.execute(_llm(low_selectivity_corpus))
        expected = result.pilot_calls + len(items) + len(result.kept())
        assert result.calls == expected

    def test_stats_accumulate(self, low_selectivity_corpus):
        query = SemanticQuery(
            [t.text for t in low_selectivity_corpus.tweets[:5]]
        ).sem_map(MAP_INSTRUCTION)
        result = query.execute(_llm(low_selectivity_corpus))
        assert result.calls == 5
        assert result.sim_seconds > 0

    def test_fused_updates_text_for_kept_rows(self, high_selectivity_corpus):
        query = (
            SemanticQuery([t.text for t in high_selectivity_corpus.tweets[:20]])
            .sem_map(MAP_INSTRUCTION)
            .sem_filter(FILTER_INSTRUCTION)
        )
        result = query.execute(_llm(high_selectivity_corpus))
        for row in result.kept():
            assert row.text != row.original


class TestMultiStagePlans:
    def test_three_stage_chain_fuses_leading_pair(self, high_selectivity_corpus):
        query = (
            SemanticQuery([t.text for t in high_selectivity_corpus.tweets[:30]])
            .sem_map(MAP_INSTRUCTION)
            .sem_filter(FILTER_INSTRUCTION)
            .sem_map("Summarize the tweet in at most 30 words.")
        )
        result = query.execute(_llm(high_selectivity_corpus))
        assert [step.kind for step in result.plan] == ["fused", "map"]

    def test_two_maps_never_fuse(self, low_selectivity_corpus):
        query = (
            SemanticQuery([t.text for t in low_selectivity_corpus.tweets[:10]])
            .sem_map(MAP_INSTRUCTION)
            .sem_map("Summarize the tweet in at most 30 words.")
        )
        result = query.execute(_llm(low_selectivity_corpus))
        assert [step.kind for step in result.plan] == ["map", "map"]
        assert result.pilot_calls == 0
