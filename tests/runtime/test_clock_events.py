"""Tests for the virtual clock and structured event log."""

import pytest

from repro.runtime.clock import VirtualClock
from repro.runtime.events import EventKind, EventLog


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        clock = VirtualClock()
        assert clock.now == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_custom_start(self):
        assert VirtualClock(10.0).now == 10.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance(5)
        clock.reset()
        assert clock.now == 0.0
        clock.reset(2.0)
        assert clock.now == 2.0


class TestEventLog:
    def test_emit_assigns_monotonic_sequence(self):
        log = EventLog()
        first = log.emit(EventKind.CHECK, "A")
        second = log.emit(EventKind.REFINE, "B")
        assert second.seq == first.seq + 1
        assert len(log) == 2

    def test_payload_and_timestamp_captured(self):
        log = EventLog()
        event = log.emit(EventKind.GENERATE, 'GEN["x"]', at=1.25, confidence=0.8)
        assert event.at == 1.25
        assert event.payload["confidence"] == 0.8

    def test_of_kind_filters(self):
        log = EventLog()
        log.emit(EventKind.CHECK, "A")
        log.emit(EventKind.REFINE, "B")
        log.emit(EventKind.CHECK, "C")
        assert [event.operator for event in log.of_kind(EventKind.CHECK)] == ["A", "C"]

    def test_for_operator_matches_label_prefix(self):
        log = EventLog()
        log.emit(EventKind.GENERATE, 'GEN["answer"]')
        log.emit(EventKind.GENERATE, 'GEN["other"]')
        assert len(log.for_operator('GEN["answer"]')) == 1

    def test_last_with_and_without_kind(self):
        log = EventLog()
        assert log.last() is None
        log.emit(EventKind.CHECK, "A")
        log.emit(EventKind.REFINE, "B")
        assert log.last().operator == "B"
        assert log.last(EventKind.CHECK).operator == "A"
        assert log.last(EventKind.MERGE) is None

    def test_subscribers_receive_events(self):
        log = EventLog()
        received = []
        log.subscribe(received.append)
        log.emit(EventKind.CHECK, "A")
        assert len(received) == 1
        assert received[0].operator == "A"

    def test_to_dicts_serializes(self):
        log = EventLog()
        log.emit(EventKind.PLAN, "P", budget=10)
        record = log.to_dicts()[0]
        assert record["kind"] == "plan"
        assert record["payload"] == {"budget": 10}

    def test_clear_keeps_subscribers(self):
        log = EventLog()
        received = []
        log.subscribe(received.append)
        log.emit(EventKind.CHECK, "A")
        log.clear()
        assert len(log) == 0
        log.emit(EventKind.CHECK, "B")
        assert len(received) == 2

    def test_unsubscribe_stops_delivery(self):
        log = EventLog()
        received = []
        log.subscribe(received.append)
        log.emit(EventKind.CHECK, "A")
        assert log.unsubscribe(received.append) is True
        log.emit(EventKind.CHECK, "B")
        assert len(received) == 1
        # Unsubscribing an unknown callback is a no-op, not an error.
        assert log.unsubscribe(received.append) is False

    def test_failing_subscriber_does_not_break_emit(self):
        log = EventLog()
        received = []

        def bad_subscriber(event):
            raise RuntimeError("boom")

        log.subscribe(bad_subscriber)
        log.subscribe(received.append)
        event = log.emit(EventKind.CHECK, "A", at=1.5)
        # emit returns normally and later subscribers still ran...
        assert event.operator == "A"
        assert event in received
        # ...and the failure is recorded as an ERROR event, not raised.
        errors = log.of_kind(EventKind.ERROR)
        assert len(errors) == 1
        assert errors[0].payload["error"] == "RuntimeError"
        assert errors[0].payload["message"] == "boom"
        assert errors[0].payload["during_seq"] == event.seq
        assert "bad_subscriber" in errors[0].operator

    def test_subscriber_failure_error_reaches_other_subscribers(self):
        # Live subscribers must see the synthesized ERROR event too,
        # else a live collector and an offline replay of the export
        # would disagree on error counts.
        log = EventLog()
        received = []

        def bad_subscriber(event):
            raise RuntimeError("boom")

        log.subscribe(bad_subscriber)
        log.subscribe(received.append)
        log.emit(EventKind.CHECK, "A")
        kinds = [event.kind for event in received]
        assert EventKind.ERROR in kinds
        assert EventKind.CHECK in kinds
        # The failing subscriber's ERROR is delivered, but a failure
        # while *handling* an ERROR event is only recorded: two CHECK
        # emits → exactly two ERROR events, no cascade.
        log.emit(EventKind.CHECK, "B")
        assert len(log.of_kind(EventKind.ERROR)) == 2

    def test_record_allows_payload_keys_shadowing_emit_params(self):
        log = EventLog()
        event = log.record(
            EventKind.GENERATE,
            "GEN[x]",
            at=2.0,
            payload={"kind": "custom", "operator": "inner", "at": 9.9},
        )
        assert event.payload == {"kind": "custom", "operator": "inner", "at": 9.9}
        assert event.at == 2.0

    def test_failing_subscriber_error_does_not_recurse(self):
        log = EventLog()

        def always_fails(event):
            raise ValueError("persistent")

        log.subscribe(always_fails)
        log.emit(EventKind.CHECK, "A")
        log.emit(EventKind.CHECK, "B")
        # One ERROR per emitted event — the ERROR records themselves do
        # not re-notify subscribers (no runaway growth).
        assert len(log) == 4
        assert len(log.of_kind(EventKind.ERROR)) == 2
