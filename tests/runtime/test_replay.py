"""Tests for refinement replay (paper §6)."""

import pytest

from repro.core import PromptStore, RefAction
from repro.errors import ReplayError
from repro.runtime.replay import (
    ReplayStep,
    export_replay_log,
    replay,
    snapshot_at,
    verify_replay,
)


def _store() -> PromptStore:
    store = PromptStore()
    store.create("qa", "v0", function="f_base")
    store["qa"].record(RefAction.APPEND, "v0\nv1", function="f_1")
    store["qa"].record(RefAction.UPDATE, "v2", function="f_2")
    store.create("other", "x")
    return store


class TestExport:
    def test_steps_ordered_per_key(self):
        steps = export_replay_log(_store())
        qa_steps = [step for step in steps if step.key == "qa"]
        assert [step.version for step in qa_steps] == [0, 1, 2]
        assert [step.action for step in qa_steps] == ["CREATE", "APPEND", "UPDATE"]


class TestReplay:
    def test_replay_reconstructs_texts_and_history(self):
        store = _store()
        rebuilt = replay(export_replay_log(store))
        assert rebuilt.text("qa") == "v2"
        assert rebuilt["qa"].text_at(1) == "v0\nv1"
        assert rebuilt.text("other") == "x"

    def test_replay_up_to_version(self):
        store = _store()
        rebuilt = replay(export_replay_log(store), up_to_version={"qa": 1})
        assert rebuilt.text("qa") == "v0\nv1"

    def test_snapshot_at(self):
        store = _store()
        assert snapshot_at(store, "qa", 0) == "v0"
        assert snapshot_at(store, "qa", 2) == "v2"

    def test_non_contiguous_steps_rejected(self):
        steps = [
            ReplayStep("qa", 0, "CREATE", "f", "v0"),
            ReplayStep("qa", 2, "UPDATE", "f", "v2"),
        ]
        with pytest.raises(ReplayError):
            replay(steps)

    def test_first_step_must_be_version_zero(self):
        steps = [ReplayStep("qa", 1, "UPDATE", "f", "v1")]
        with pytest.raises(ReplayError):
            replay(steps)


def _mixed_store() -> PromptStore:
    """A store whose history mixes refinement, rollback and clone.

    ``qa`` is refined twice then rolled back; it is cloned to ``qa_b``,
    which diverges with its own refinement and a rollback of its own.
    """
    store = _store()
    store["qa"].rollback(0)  # qa: v3 == v0 text
    store.clone("qa", "qa_b")
    store["qa_b"].record(RefAction.APPEND, "v0\nbranch", function="f_branch")
    store["qa"].record(RefAction.UPDATE, "v4", function="f_4")
    store["qa_b"].rollback(1)
    return store


class TestMixedHistories:
    """Rollback + clone interleavings (beyond the linear cases below)."""

    def test_export_covers_both_lineages(self):
        steps = export_replay_log(_mixed_store())
        by_key = {}
        for step in steps:
            by_key.setdefault(step.key, []).append(step)
        assert [step.version for step in by_key["qa"]] == [0, 1, 2, 3, 4]
        assert [step.version for step in by_key["qa_b"]] == [0, 1, 2, 3, 4, 5]
        # The clone's divergent suffix is its own, not the source's.
        assert by_key["qa_b"][4].action == "APPEND"
        assert by_key["qa"][4].action == "UPDATE"

    def test_replay_reconstructs_both_lineages(self):
        store = _mixed_store()
        rebuilt = replay(export_replay_log(store))
        assert rebuilt.text("qa") == "v4"
        assert rebuilt.text("qa_b") == "v0\nv1"  # rolled back to v1
        assert rebuilt["qa_b"].text_at(4) == "v0\nbranch"
        assert rebuilt["qa"].text_at(3) == "v0"  # the rollback snapshot

    def test_verify_replay_on_mixed_store(self):
        assert verify_replay(_mixed_store())

    def test_snapshot_at_on_cloned_lineage(self):
        store = _mixed_store()
        assert snapshot_at(store, "qa_b", 4) == "v0\nbranch"
        assert snapshot_at(store, "qa_b", 3) == "v0"
        assert snapshot_at(store, "qa", 3) == "v0"

    def test_clone_of_fresh_entry_round_trips(self):
        store = PromptStore()
        store.create("src", "seed")
        store.clone("src", "copy")
        store["copy"].record(RefAction.APPEND, "seed\nmore", function="f_m")
        assert verify_replay(store)
        rebuilt = replay(export_replay_log(store))
        assert rebuilt.text("copy") == "seed\nmore"
        assert rebuilt.text("src") == "seed"

    def test_rollback_of_rollback_round_trips(self):
        store = _store()
        store["qa"].rollback(1)
        store["qa"].rollback(0)
        store["qa"].rollback(3)  # restore the first rollback's text
        assert verify_replay(store)
        rebuilt = replay(export_replay_log(store))
        assert rebuilt.text("qa") == "v0\nv1"


class TestVerify:
    def test_verify_replay_on_consistent_store(self):
        assert verify_replay(_store())

    def test_verify_replay_after_rollbacks_and_merges(self):
        store = _store()
        store["qa"].rollback(0)
        assert verify_replay(store)

    def test_verify_replay_with_live_pipeline_history(self, state, tweet_corpus):
        from repro.core import EXPAND, GEN

        tweet = tweet_corpus[0]
        state.prompts.create(
            "qa", f"Summarize the tweet.\nTweet:\n{tweet.text}"
        )
        state = EXPAND("qa", "Be concise.").apply(state)
        state = GEN("answer", prompt="qa").apply(state)
        assert verify_replay(state.prompts)
