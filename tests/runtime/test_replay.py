"""Tests for refinement replay (paper §6)."""

import pytest

from repro.core import PromptStore, RefAction
from repro.errors import ReplayError
from repro.runtime.replay import (
    ReplayStep,
    export_replay_log,
    replay,
    snapshot_at,
    verify_replay,
)


def _store() -> PromptStore:
    store = PromptStore()
    store.create("qa", "v0", function="f_base")
    store["qa"].record(RefAction.APPEND, "v0\nv1", function="f_1")
    store["qa"].record(RefAction.UPDATE, "v2", function="f_2")
    store.create("other", "x")
    return store


class TestExport:
    def test_steps_ordered_per_key(self):
        steps = export_replay_log(_store())
        qa_steps = [step for step in steps if step.key == "qa"]
        assert [step.version for step in qa_steps] == [0, 1, 2]
        assert [step.action for step in qa_steps] == ["CREATE", "APPEND", "UPDATE"]


class TestReplay:
    def test_replay_reconstructs_texts_and_history(self):
        store = _store()
        rebuilt = replay(export_replay_log(store))
        assert rebuilt.text("qa") == "v2"
        assert rebuilt["qa"].text_at(1) == "v0\nv1"
        assert rebuilt.text("other") == "x"

    def test_replay_up_to_version(self):
        store = _store()
        rebuilt = replay(export_replay_log(store), up_to_version={"qa": 1})
        assert rebuilt.text("qa") == "v0\nv1"

    def test_snapshot_at(self):
        store = _store()
        assert snapshot_at(store, "qa", 0) == "v0"
        assert snapshot_at(store, "qa", 2) == "v2"

    def test_non_contiguous_steps_rejected(self):
        steps = [
            ReplayStep("qa", 0, "CREATE", "f", "v0"),
            ReplayStep("qa", 2, "UPDATE", "f", "v2"),
        ]
        with pytest.raises(ReplayError):
            replay(steps)

    def test_first_step_must_be_version_zero(self):
        steps = [ReplayStep("qa", 1, "UPDATE", "f", "v1")]
        with pytest.raises(ReplayError):
            replay(steps)


class TestVerify:
    def test_verify_replay_on_consistent_store(self):
        assert verify_replay(_store())

    def test_verify_replay_after_rollbacks_and_merges(self):
        store = _store()
        store["qa"].rollback(0)
        assert verify_replay(store)

    def test_verify_replay_with_live_pipeline_history(self, state, tweet_corpus):
        from repro.core import EXPAND, GEN

        tweet = tweet_corpus[0]
        state.prompts.create(
            "qa", f"Summarize the tweet.\nTweet:\n{tweet.text}"
        )
        state = EXPAND("qa", "Be concise.").apply(state)
        state = GEN("answer", prompt="qa").apply(state)
        assert verify_replay(state.prompts)
