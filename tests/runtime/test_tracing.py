"""Tests for timeline rendering and run summaries."""

from repro.core import CHECK, Condition, GEN, REF, RefAction
from repro.runtime.events import EventKind, EventLog
from repro.runtime.tracing import render_timeline, summarize_run


def _run_small_pipeline(state, tweet_corpus):
    state.prompts.create(
        "qa", f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
    )
    pipeline = (
        GEN("answer", prompt="qa")
        >> CHECK(
            Condition.metadata_below("confidence", 2.0),
            REF(RefAction.APPEND, "Be brief.", key="qa"),
        )
        >> GEN("answer", prompt="qa")
    )
    return pipeline.apply(state)


class TestRenderTimeline:
    def test_semantic_events_rendered(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        timeline = render_timeline(state.events)
        assert "generate" in timeline
        assert "check" in timeline
        assert "refine" in timeline
        # Lifecycle brackets hidden by default.
        assert "<GEN" not in timeline

    def test_lifecycle_included_on_request(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        timeline = render_timeline(state.events, include_lifecycle=True)
        assert '<GEN["answer"]>' in timeline
        assert '</GEN["answer"]>' in timeline

    def test_details_include_condition_and_outcome(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        timeline = render_timeline(state.events)
        assert 'condition=M["confidence"] < 2.0' in timeline
        assert "outcome=True" in timeline

    def test_timestamps_monotone(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        stamps = [
            float(line.split("s")[0]) for line in render_timeline(state.events).splitlines()
        ]
        assert stamps == sorted(stamps)

    def test_indentation_follows_nesting(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, "OUTER")
        log.emit(EventKind.CHECK, "INNER", condition="x", outcome=True)
        log.emit(EventKind.OPERATOR_END, "OUTER")
        log.emit(EventKind.CHECK, "TOP", condition="y", outcome=False)
        lines = render_timeline(log).splitlines()
        inner_line, top_line = lines
        assert inner_line.index("check") > top_line.index("check")

    def test_empty_log(self):
        assert render_timeline(EventLog()) == ""


class TestSummarizeRun:
    def test_counts_and_latency(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        summary = summarize_run(state.events)
        assert summary["generate"]["count"] == 2
        assert summary["check"]["count"] == 1
        assert summary["refine"]["count"] == 1
        assert summary["generate"]["latency"] > 0

    def test_lifecycle_not_counted_as_kind(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, "A")
        log.emit(EventKind.OPERATOR_END, "A")
        summary = summarize_run(log)
        # Lifecycle events never form per-kind buckets; they are distilled
        # into the per-operator wall-time rollup instead.
        assert EventKind.OPERATOR_START.value not in summary
        assert EventKind.OPERATOR_END.value not in summary
        assert summary["operators"]["A"]["count"] == 1

    def test_operator_wall_time_from_lifecycle_pairs(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, "A", at=1.0)
        log.emit(EventKind.OPERATOR_START, "B", at=2.0)
        log.emit(EventKind.OPERATOR_END, "B", at=5.0)
        log.emit(EventKind.OPERATOR_END, "A", at=6.0)
        operators = summarize_run(log)["operators"]
        assert operators["A"] == {"count": 1, "wall_time": 5.0, "unclosed": 0}
        assert operators["B"] == {"count": 1, "wall_time": 3.0, "unclosed": 0}

    def test_reentrant_operator_accumulates(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, "A", at=0.0)
        log.emit(EventKind.OPERATOR_START, "A", at=1.0)
        log.emit(EventKind.OPERATOR_END, "A", at=2.0)
        log.emit(EventKind.OPERATOR_END, "A", at=4.0)
        operators = summarize_run(log)["operators"]
        # Inner pair (1→2) + outer pair (0→4).
        assert operators["A"]["count"] == 2
        assert operators["A"]["wall_time"] == 5.0

    def test_unbalanced_logs_handled_gracefully(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_END, "ghost", at=1.0)  # END, no START
        log.emit(EventKind.OPERATOR_START, "truncated", at=2.0)  # never ends
        operators = summarize_run(log)["operators"]
        assert "ghost" not in operators
        assert operators["truncated"] == {
            "count": 0,
            "wall_time": 0.0,
            "unclosed": 1,
        }

    def test_wall_time_present_for_real_run(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        operators = summarize_run(state.events)["operators"]
        gen_labels = [label for label in operators if label.startswith("GEN")]
        assert gen_labels
        assert sum(operators[label]["wall_time"] for label in gen_labels) > 0


class TestEventExport:
    def test_jsonl_round_trip(self, state, tweet_corpus, tmp_path):
        from repro.runtime.tracing import export_events, import_events

        state = _run_small_pipeline(state, tweet_corpus)
        path = export_events(state.events, tmp_path / "trace.jsonl")
        loaded = import_events(path)
        assert len(loaded) == len(state.events)
        original = state.events.all()
        for before, after in zip(original, loaded.all()):
            assert after.kind == before.kind
            assert after.operator == before.operator
            assert after.at == before.at

    def test_exported_file_is_one_json_object_per_line(self, state, tweet_corpus, tmp_path):
        import json

        from repro.runtime.tracing import export_events

        state = _run_small_pipeline(state, tweet_corpus)
        path = export_events(state.events, tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(state.events)
        for line in lines:
            record = json.loads(line)
            assert {"seq", "kind", "operator", "at", "payload"} <= set(record)

    def test_rendered_timeline_identical_after_round_trip(
        self, state, tweet_corpus, tmp_path
    ):
        from repro.runtime.tracing import export_events, import_events

        state = _run_small_pipeline(state, tweet_corpus)
        path = export_events(state.events, tmp_path / "trace.jsonl")
        assert render_timeline(import_events(path)) == render_timeline(state.events)


class TestLosslessRoundTrip:
    """Enum and dataclass payload values survive export/import unchanged."""

    def test_enum_payload_round_trips_as_enum(self, tmp_path):
        from repro.core.entry import RefAction
        from repro.runtime.tracing import export_events, import_events

        log = EventLog()
        log.emit(EventKind.REFINE, "REF[x]", action=RefAction.APPEND)
        loaded = import_events(export_events(log, tmp_path / "t.jsonl"))
        value = loaded.all()[0].payload["action"]
        assert value is RefAction.APPEND

    def test_dataclass_payload_round_trips(self, tmp_path):
        from repro.llm.latency import LatencyBreakdown
        from repro.runtime.tracing import export_events, import_events

        breakdown = LatencyBreakdown(
            overhead=0.5, prefill=1.0, cached_prefill=0.1, decode=2.0
        )
        log = EventLog()
        log.emit(EventKind.GENERATE, "GEN[x]", breakdown=breakdown)
        loaded = import_events(export_events(log, tmp_path / "t.jsonl"))
        assert loaded.all()[0].payload["breakdown"] == breakdown

    def test_unserializable_payload_fails_loudly(self, tmp_path):
        import pytest

        log = EventLog()
        log.emit(EventKind.GENERATE, "GEN[x]", bad=object())
        with pytest.raises(TypeError, match="not\\s+JSONL-exportable"):
            from repro.runtime.tracing import export_events

            export_events(log, tmp_path / "t.jsonl")

    def test_property_round_trip(self, tmp_path):
        """Property test: arbitrary JSON/enum/dataclass payloads round-trip."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.core.entry import RefAction, RefinementMode
        from repro.llm.latency import LatencyBreakdown
        from repro.runtime.tracing import export_events, import_events

        scalars = st.one_of(
            st.none(),
            st.booleans(),
            st.integers(min_value=-(2**31), max_value=2**31),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            st.text(max_size=20),
            st.sampled_from(list(RefAction)),
            st.sampled_from(list(RefinementMode)),
            st.builds(
                LatencyBreakdown,
                overhead=st.floats(0, 10, allow_nan=False),
                prefill=st.floats(0, 10, allow_nan=False),
                cached_prefill=st.floats(0, 10, allow_nan=False),
                decode=st.floats(0, 10, allow_nan=False),
            ),
        )
        payloads = st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=8,
            ),
            st.one_of(scalars, st.lists(scalars, max_size=3)),
            max_size=4,
        )

        @settings(max_examples=40, deadline=None)
        @given(payload=payloads)
        def round_trips(payload):
            log = EventLog()
            log.record(EventKind.GENERATE, "GEN[p]", at=1.25, payload=payload)
            loaded = import_events(export_events(log, tmp_path / "prop.jsonl"))
            event = loaded.all()[0]
            assert dict(event.payload) == payload
            assert event.kind is EventKind.GENERATE
            assert event.at == 1.25

        round_trips()

    def test_payload_keys_shadowing_emit_params_round_trip(self, tmp_path):
        """Keys named like emit()'s own parameters must still import."""
        from repro.runtime.tracing import export_events, import_events

        log = EventLog()
        log.record(
            EventKind.GENERATE,
            "GEN[x]",
            at=3.0,
            payload={"kind": "custom", "operator": "inner", "at": 1.0},
        )
        loaded = import_events(export_events(log, tmp_path / "t.jsonl"))
        event = loaded.all()[0]
        assert dict(event.payload) == {"kind": "custom", "operator": "inner", "at": 1.0}
        assert event.kind is EventKind.GENERATE
        assert event.at == 3.0


class TestUntrustedTraceFiles:
    """Trace files are untrusted input: type tags must not execute code."""

    def _write_trace(self, tmp_path, payload_value):
        import json

        record = {
            "seq": 0,
            "kind": "generate",
            "operator": "GEN[x]",
            "at": 0.0,
            "payload": {"value": payload_value},
        }
        path = tmp_path / "evil.jsonl"
        path.write_text(json.dumps(record) + "\n")
        return path

    def test_non_repro_module_rejected(self, tmp_path):
        import pytest

        from repro.errors import SpearError
        from repro.runtime.tracing import import_events

        path = self._write_trace(
            tmp_path,
            {"__spear__": "enum", "type": "os:system", "value": "echo pwned"},
        )
        with pytest.raises(SpearError, match="repro"):
            import_events(path)

    def test_repro_prefix_spoof_rejected(self, tmp_path):
        import pytest

        from repro.errors import SpearError
        from repro.runtime.tracing import import_events

        path = self._write_trace(
            tmp_path,
            {"__spear__": "enum", "type": "reprox.evil:run", "value": 1},
        )
        with pytest.raises(SpearError):
            import_events(path)

    def test_repro_callable_that_is_not_an_enum_rejected(self, tmp_path):
        import pytest

        from repro.errors import SpearError
        from repro.runtime.tracing import import_events

        path = self._write_trace(
            tmp_path,
            {
                "__spear__": "enum",
                "type": "repro.runtime.tracing:import_events",
                "value": "/etc/passwd",
            },
        )
        with pytest.raises(SpearError, match="not an enum"):
            import_events(path)

    def test_repro_class_that_is_not_a_dataclass_rejected(self, tmp_path):
        import pytest

        from repro.errors import SpearError
        from repro.runtime.tracing import import_events

        path = self._write_trace(
            tmp_path,
            {
                "__spear__": "dataclass",
                "type": "repro.runtime.events:EventLog",
                "fields": {},
            },
        )
        with pytest.raises(SpearError, match="not a dataclass"):
            import_events(path)
