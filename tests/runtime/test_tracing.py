"""Tests for timeline rendering and run summaries."""

from repro.core import CHECK, Condition, GEN, REF, RefAction
from repro.runtime.events import EventKind, EventLog
from repro.runtime.tracing import render_timeline, summarize_run


def _run_small_pipeline(state, tweet_corpus):
    state.prompts.create(
        "qa", f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
    )
    pipeline = (
        GEN("answer", prompt="qa")
        >> CHECK(
            Condition.metadata_below("confidence", 2.0),
            REF(RefAction.APPEND, "Be brief.", key="qa"),
        )
        >> GEN("answer", prompt="qa")
    )
    return pipeline.apply(state)


class TestRenderTimeline:
    def test_semantic_events_rendered(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        timeline = render_timeline(state.events)
        assert "generate" in timeline
        assert "check" in timeline
        assert "refine" in timeline
        # Lifecycle brackets hidden by default.
        assert "<GEN" not in timeline

    def test_lifecycle_included_on_request(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        timeline = render_timeline(state.events, include_lifecycle=True)
        assert '<GEN["answer"]>' in timeline
        assert '</GEN["answer"]>' in timeline

    def test_details_include_condition_and_outcome(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        timeline = render_timeline(state.events)
        assert 'condition=M["confidence"] < 2.0' in timeline
        assert "outcome=True" in timeline

    def test_timestamps_monotone(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        stamps = [
            float(line.split("s")[0]) for line in render_timeline(state.events).splitlines()
        ]
        assert stamps == sorted(stamps)

    def test_indentation_follows_nesting(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, "OUTER")
        log.emit(EventKind.CHECK, "INNER", condition="x", outcome=True)
        log.emit(EventKind.OPERATOR_END, "OUTER")
        log.emit(EventKind.CHECK, "TOP", condition="y", outcome=False)
        lines = render_timeline(log).splitlines()
        inner_line, top_line = lines
        assert inner_line.index("check") > top_line.index("check")

    def test_empty_log(self):
        assert render_timeline(EventLog()) == ""


class TestSummarizeRun:
    def test_counts_and_latency(self, state, tweet_corpus):
        state = _run_small_pipeline(state, tweet_corpus)
        summary = summarize_run(state.events)
        assert summary["generate"]["count"] == 2
        assert summary["check"]["count"] == 1
        assert summary["refine"]["count"] == 1
        assert summary["generate"]["latency"] > 0

    def test_lifecycle_excluded(self):
        log = EventLog()
        log.emit(EventKind.OPERATOR_START, "A")
        log.emit(EventKind.OPERATOR_END, "A")
        assert summarize_run(log) == {}


class TestEventExport:
    def test_jsonl_round_trip(self, state, tweet_corpus, tmp_path):
        from repro.runtime.tracing import export_events, import_events

        state = _run_small_pipeline(state, tweet_corpus)
        path = export_events(state.events, tmp_path / "trace.jsonl")
        loaded = import_events(path)
        assert len(loaded) == len(state.events)
        original = state.events.all()
        for before, after in zip(original, loaded.all()):
            assert after.kind == before.kind
            assert after.operator == before.operator
            assert after.at == before.at

    def test_exported_file_is_one_json_object_per_line(self, state, tweet_corpus, tmp_path):
        import json

        from repro.runtime.tracing import export_events

        state = _run_small_pipeline(state, tweet_corpus)
        path = export_events(state.events, tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == len(state.events)
        for line in lines:
            record = json.loads(line)
            assert {"seq", "kind", "operator", "at", "payload"} <= set(record)

    def test_rendered_timeline_identical_after_round_trip(
        self, state, tweet_corpus, tmp_path
    ):
        from repro.runtime.tracing import export_events, import_events

        state = _run_small_pipeline(state, tweet_corpus)
        path = export_events(state.events, tmp_path / "trace.jsonl")
        assert render_timeline(import_events(path)) == render_timeline(state.events)
