"""Tests for the Executor runtime entry point."""

import pytest

from repro.core import GEN, Pipeline, RET
from repro.errors import UnknownContextKeyError
from repro.runtime import Executor, RuntimeOptions


class TestExecutor:
    def test_shares_clock_with_model(self, llm):
        executor = Executor(options=RuntimeOptions(model=llm))
        assert executor.clock is llm.clock

    def test_new_state_wired_with_services(self, llm):
        executor = Executor(options=RuntimeOptions(model=llm))
        executor.register_source("notes", lambda s, q: "payload")
        executor.register_agent("echo", object())
        state = executor.new_state(context={"seed": 1})
        assert state.model is llm
        assert state.context["seed"] == 1
        assert state.sources() == ["notes"]
        assert state.agents() == ["echo"]

    def test_run_returns_elapsed_and_events(self, llm, tweet_corpus):
        executor = Executor(options=RuntimeOptions(model=llm))
        executor.register_source("tweets", lambda s, q: tweet_corpus[0].text)
        state = executor.new_state()
        state.prompts.create(
            "map", "Summarize the tweet in at most 30 words.\nTweet:\n{tweets}"
        )
        pipeline = Pipeline([RET("tweets"), GEN("summary", prompt="map")])
        result = executor.run(pipeline, state=state)
        assert result.elapsed > 0
        assert result.output("summary")
        assert "summary" in result.context
        assert result.metadata["gen_calls"] == 1
        assert any(event.kind.value == "generate" for event in result.events)

    def test_run_builds_state_when_missing(self, llm):
        executor = Executor(options=RuntimeOptions(model=llm))
        result = executor.run(Pipeline([]), context={"a": 1})
        assert result.context["a"] == 1
        assert result.elapsed == 0

    def test_generate_once_quickstart(self, llm, tweet_corpus):
        executor = Executor(options=RuntimeOptions(model=llm))
        result = executor.generate_once(
            "map",
            f"Summarize the tweet in at most 30 words.\nTweet:\n{tweet_corpus[0].text}",
        )
        assert isinstance(result.output("answer"), str)

    def test_views_shared_across_states(self, llm):
        executor = Executor(options=RuntimeOptions(model=llm))
        executor.views.define("v", "text")
        state_1 = executor.new_state()
        state_2 = executor.new_state()
        assert state_1.views is state_2.views

    def test_default_clock_without_model(self):
        executor = Executor()
        assert executor.clock.now == 0.0

    def test_output_unknown_label_names_available_labels(self, llm):
        executor = Executor(options=RuntimeOptions(model=llm))
        result = executor.run(Pipeline([]), context={"summary": "s", "verdict": "v"})
        with pytest.raises(UnknownContextKeyError) as excinfo:
            result.output("sumary")
        message = str(excinfo.value)
        assert "unknown context key: 'sumary'" in message
        assert "available labels: ['summary', 'verdict']" in message
        assert excinfo.value.available == ["summary", "verdict"]

    def test_output_unknown_label_on_empty_context(self, llm):
        executor = Executor(options=RuntimeOptions(model=llm))
        result = executor.run(Pipeline([]))
        with pytest.raises(UnknownContextKeyError, match="the context is empty"):
            result.output("answer")

    def test_events_slice_per_run(self, llm):
        executor = Executor(options=RuntimeOptions(model=llm))
        state = executor.new_state()
        first = executor.run(Pipeline([]), state=state)
        second = executor.run(Pipeline([]), state=state)
        # Each RunResult carries only its own events.
        assert len(first.events) == len(second.events) == 2
