"""Unified runner API: run(pipeline, *, items=, options=) + result protocol.

Every runner — Executor, BatchRunner, ParallelBatchRunner,
RefinementLoop — accepts the same ``run`` shape, and every result obeys
the shared protocol: ``.output(label)``, ``.report``, ``.cache``.  The
serving layer dispatches to any of them without caring which.
"""

import warnings

import pytest

from repro.core import GEN, REF, Pipeline, RefAction
from repro.core.state import ExecutionState
from repro.data import make_tweet_corpus
from repro.llm.model import SimulatedLLM
from repro.runtime.batch import BatchRunner, bind_item
from repro.runtime.executor import Executor
from repro.runtime.incremental import RefinementLoop
from repro.runtime.options import RuntimeOptions
from repro.runtime.parallel import ParallelBatchRunner
from repro.runtime.result_cache import ResultCache

PROMPT = "Summarize the tweet in at most 30 words.\nTweet:\n{tweet}"


def _llm(n_items=4, seed=7, prefix_cache=True):
    # prefix_cache=False keeps GEN pure so the result cache can memoize.
    llm = SimulatedLLM(
        "qwen2.5-7b-instruct", enable_prefix_cache=prefix_cache
    )
    corpus = make_tweet_corpus(n_items, seed=seed)
    llm.bind_tweets(corpus)
    return llm, list(corpus)


def _items(corpus):
    return [{"tweet": tweet.text} for tweet in corpus]


def _state(llm, **kwargs):
    state = ExecutionState(model=llm, clock=llm.clock, **kwargs)
    state.prompts.create("map", PROMPT)
    return state


def _pipeline():
    return Pipeline([GEN("summary", prompt="map")])


class TestBindItem:
    def test_mapping_spreads_into_context(self):
        llm, _ = _llm()
        state = ExecutionState(model=llm, clock=llm.clock)
        bind_item(state, {"tweet": "hello", "lang": "en"})
        assert state.context["tweet"] == "hello"
        assert state.context["lang"] == "en"

    def test_scalar_lands_under_item(self):
        llm, _ = _llm()
        state = ExecutionState(model=llm, clock=llm.clock)
        bind_item(state, "hello")
        assert state.context["item"] == "hello"

    def test_none_binds_nothing(self):
        llm, _ = _llm()
        state = ExecutionState(model=llm, clock=llm.clock)
        bind_item(state, None)
        assert list(state.context.keys()) == []


class TestExecutorUnifiedRun:
    def test_items_fan_out_returns_batch_result(self):
        llm, corpus = _llm()
        executor = Executor(options=RuntimeOptions(model=llm, clock=llm.clock))
        batch = executor.run(
            _pipeline(), items=_items(corpus), state=_state(llm)
        )
        assert len(batch.items) == len(corpus)
        assert all(batch.output("summary"))

    def test_items_with_base_state_shares_prompts(self):
        llm, corpus = _llm()
        executor = Executor(options=RuntimeOptions(model=llm, clock=llm.clock))
        base = _state(llm)
        batch = executor.run(_pipeline(), items=_items(corpus), state=base)
        # Items forked from the base: its own context stays untouched.
        assert "summary" not in list(base.context.keys())
        assert not batch.failures()

    def test_per_call_options_override(self):
        llm, corpus = _llm(prefix_cache=False)
        executor = Executor(options=RuntimeOptions(model=llm, clock=llm.clock))
        cache = ResultCache()
        options = RuntimeOptions(
            model=llm, clock=llm.clock, result_cache=cache
        )
        state = _state(llm)
        state.context.put("tweet", corpus[0].text, producer="test")
        pipeline = _pipeline()
        executor.run(pipeline, options=options, state=state)
        executor.run(pipeline, options=options, state=state)
        assert cache.snapshot()["hits"] >= 1
        # The original executor is untouched by the per-call override.
        assert executor.result_cache is None


class TestSharedResultProtocol:
    def test_run_result_protocol(self):
        llm, corpus = _llm()
        executor = Executor(options=RuntimeOptions(model=llm, clock=llm.clock))
        state = _state(llm)
        state.context.put("tweet", corpus[0].text, producer="test")
        result = executor.run(_pipeline(), state=state)
        assert result.output("summary")
        report = result.report
        assert report["runner"] == "run"
        assert report["elapsed"] == result.elapsed
        assert isinstance(result.cache, dict)

    def test_batch_result_protocol_sequential(self):
        llm, corpus = _llm()
        batch = BatchRunner(_state(llm)).run(_pipeline(), items=_items(corpus))
        assert batch.output("summary") == batch.outputs("summary")
        report = batch.report
        assert report["runner"] == "batch"
        assert report["items"] == len(corpus)
        assert report["throughput"] == batch.throughput

    def test_batch_result_protocol_parallel(self):
        llm, corpus = _llm()
        runner = ParallelBatchRunner(_state(llm), workers=2)
        batch = runner.run(_pipeline(), items=_items(corpus))
        assert all(batch.output("summary"))
        assert batch.report["workers"] == 2

    def test_batch_cache_delta_in_protocol(self):
        llm, corpus = _llm(prefix_cache=False)
        state = _state(llm)
        cache = ResultCache()
        state.result_cache = cache
        cache.subscribe_to(state.events, state.prompts)
        runner = BatchRunner(state)
        runner.run(_pipeline(), items=_items(corpus))
        warm = runner.run(_pipeline(), items=_items(corpus))
        assert warm.cache["hits"] >= 1
        assert warm.report["cache"]["hits"] == warm.cache["hits"]

    def test_loop_report_protocol(self):
        llm, corpus = _llm()
        state = _state(llm)
        state.context.put("tweet", corpus[0].text, producer="test")
        loop = RefinementLoop(
            pipeline=_pipeline(),
            refiners=[REF(RefAction.APPEND, "Shorter.", key="map")],
            options=RuntimeOptions(
                model=llm, clock=llm.clock, result_cache=ResultCache()
            ),
        )
        report = loop.run(state=state)
        assert report.output("summary")
        assert report.report["runner"] == "loop"
        assert set(report.cache) == {
            "hits", "misses", "invalidations", "saved_seconds"
        }


class TestRefinementLoopUnifiedRun:
    def _loop(self, llm):
        return RefinementLoop(
            pipeline=_pipeline(),
            refiners=[],
            options=RuntimeOptions(model=llm, clock=llm.clock),
        )

    def _state(self, llm, corpus):
        state = _state(llm)
        state.context.put("tweet", corpus[0].text, producer="test")
        return state

    def test_legacy_positional_state_warns(self):
        llm, corpus = _llm()
        loop = self._loop(llm)
        state = self._state(llm, corpus)
        with pytest.warns(DeprecationWarning, match="run\\(state=...\\)"):
            report = loop.run(state)
        assert report.final is not None

    def test_state_keyword_does_not_warn(self):
        llm, corpus = _llm()
        loop = self._loop(llm)
        state = self._state(llm, corpus)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = loop.run(state=state)
        assert report.final is not None

    def test_items_raises_clean_typeerror(self):
        llm, corpus = _llm()
        loop = self._loop(llm)
        state = self._state(llm, corpus)
        with pytest.raises(TypeError, match="items="):
            loop.run(items=_items(corpus), state=state)

    def test_state_required(self):
        llm, _ = _llm()
        with pytest.raises(TypeError, match="state="):
            self._loop(llm).run()

    def test_pipeline_override_runs_given_pipeline(self):
        llm, corpus = _llm()
        loop = self._loop(llm)
        state = self._state(llm, corpus)
        override = Pipeline([GEN("alt", prompt="map")])
        report = loop.run(override, state=state)
        assert report.output("alt")
        # The loop itself is unchanged for later runs.
        assert loop.pipeline is not override


class TestParallelRunnerDeprecations:
    def test_positional_items_warn(self):
        llm, corpus = _llm()
        runner = ParallelBatchRunner(_state(llm), workers=2)
        with pytest.warns(DeprecationWarning, match="items="):
            batch = runner.run(_pipeline(), _items(corpus))
        assert len(batch.items) == len(corpus)

    def test_default_binder_used_when_bind_omitted(self):
        llm, corpus = _llm()
        batch = ParallelBatchRunner(_state(llm), workers=2).run(
            _pipeline(), items=_items(corpus)
        )
        assert all(batch.output("summary"))

    def test_per_call_options_build_sibling(self):
        from repro.obs.metrics import MetricsRegistry

        llm, corpus = _llm()
        runner = ParallelBatchRunner(_state(llm), workers=2)
        metrics = MetricsRegistry()
        batch = runner.run(
            _pipeline(),
            items=_items(corpus),
            options=RuntimeOptions(metrics=metrics),
        )
        assert not batch.failures()
        assert runner.last_batcher is not None
