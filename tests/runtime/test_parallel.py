"""Tests for the parallel batch runner and its determinism guarantees."""

import pytest

from repro.core import GEN, Pipeline
from repro.core.algebra import FunctionOperator
from repro.core.state import ExecutionState
from repro.data import make_tweet_corpus
from repro.llm.model import SimulatedLLM
from repro.obs import ObsCollector
from repro.obs.metrics import MetricsRegistry
from repro.runtime.batch import BatchRunner
from repro.runtime.events import EventKind
from repro.runtime.options import RuntimeOptions
from repro.runtime.parallel import ParallelBatchRunner

PROMPT = (
    "Select the tweet only if its sentiment is negative. "
    "Respond with yes or no.\nTweet:\n{tweet}"
)
MAP_PROMPT = (
    "Summarize and clean up the tweet in at most 30 words.\nTweet:\n{tweet}"
)


def _bind_tweet(state, tweet):
    state.context.put("tweet", tweet.text, producer="bind")


def _build_state(n_items=20, seed=7, prefix_cache=True):
    llm = SimulatedLLM("qwen2.5-7b-instruct", enable_prefix_cache=prefix_cache)
    corpus = make_tweet_corpus(n_items, seed=seed)
    llm.bind_tweets(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    state.prompts.create("filter", PROMPT)
    state.prompts.create("map", MAP_PROMPT)
    return state, list(corpus)


def _pipeline():
    return Pipeline([GEN("summary", prompt="map"), GEN("verdict", prompt="filter")])


def _texts(batch):
    return [
        (r.context.get("summary"), r.context.get("verdict")) for r in batch.items
    ]


class TestParallelBatchRunner:
    def test_outputs_identical_to_sequential(self):
        state_seq, items = _build_state()
        sequential = BatchRunner(state_seq, bind=_bind_tweet).run(_pipeline(), items=items)

        for workers in (1, 3, 8):
            state_par, items_par = _build_state()
            parallel = ParallelBatchRunner(
                state_par, bind=_bind_tweet, workers=workers
            ).run(_pipeline(), items=items_par)
            assert _texts(parallel) == _texts(sequential)
            assert [r.item.uid for r in parallel.items] == [
                r.item.uid for r in sequential.items
            ]

    def test_simulated_speedup_at_16_workers(self):
        state_seq, items = _build_state(n_items=48)
        sequential = BatchRunner(state_seq, bind=_bind_tweet).run(_pipeline(), items=items)

        state_par, items_par = _build_state(n_items=48)
        parallel = ParallelBatchRunner(
            state_par, bind=_bind_tweet, workers=16
        ).run(_pipeline(), items=items_par)

        assert _texts(parallel) == _texts(sequential)
        assert sequential.elapsed / parallel.elapsed >= 4.0
        assert parallel.throughput > sequential.throughput

    def test_workers_capped_by_item_count(self):
        state, items = _build_state(n_items=3)
        batch = ParallelBatchRunner(state, bind=_bind_tweet, workers=16).run(
            _pipeline(), items=items
        )
        assert batch.workers == 3
        assert len(batch.items) == 3

    def test_microbatching_coalesces_calls(self):
        state, items = _build_state(n_items=12)
        runner = ParallelBatchRunner(state, bind=_bind_tweet, workers=4)
        runner.run(_pipeline(), items=items)
        stats = runner.last_batcher.snapshot()
        assert stats["largest_batch"] == 4
        assert stats["batched_calls"] == 24  # 12 items x 2 GEN calls
        assert stats["open_lanes"] == 0
        assert stats["pending"] == 0

    def test_microbatch_disabled_still_parallel(self):
        state_seq, items = _build_state(n_items=16)
        sequential = BatchRunner(state_seq, bind=_bind_tweet).run(_pipeline(), items=items)

        state, items_par = _build_state(n_items=16)
        runner = ParallelBatchRunner(
            state, bind=_bind_tweet, workers=8, microbatch=False
        )
        batch = runner.run(_pipeline(), items=items_par)
        assert _texts(batch) == _texts(sequential)
        # Lane overlap alone still beats sequential...
        assert batch.elapsed < sequential.elapsed
        # ...and every engine step held exactly one request.
        assert runner.last_batcher.snapshot()["largest_batch"] == 1

    def test_base_clock_advanced_to_batch_end(self):
        state, items = _build_state(n_items=8)
        start = state.clock.now
        batch = ParallelBatchRunner(state, bind=_bind_tweet, workers=4).run(
            _pipeline(), items=items
        )
        assert state.clock.now == pytest.approx(start + batch.elapsed)

    def test_base_state_context_untouched(self):
        state, items = _build_state(n_items=6)
        ParallelBatchRunner(state, bind=_bind_tweet, workers=3).run(
            _pipeline(), items=items
        )
        assert "tweet" not in state.context
        assert "verdict" not in state.context

    def test_lane_spans_and_batch_event_in_base_log(self):
        state, items = _build_state(n_items=6)
        ParallelBatchRunner(state, bind=_bind_tweet, workers=3).run(
            _pipeline(), items=items
        )
        lane_starts = [
            e for e in state.events.of_kind(EventKind.OPERATOR_START)
            if e.operator.startswith("LANE[")
        ]
        lane_ends = [
            e for e in state.events.of_kind(EventKind.OPERATOR_END)
            if e.operator.startswith("LANE[")
        ]
        assert len(lane_starts) == 3
        assert len(lane_ends) == 3
        batch_events = state.events.of_kind(EventKind.BATCH)
        assert len(batch_events) == 1
        payload = batch_events[0].payload
        assert payload["mode"] == "parallel"
        assert payload["items"] == 6
        assert payload["workers"] == 3
        assert payload["gen_batches"] >= 1

    def test_span_tree_stays_well_formed(self):
        state, items = _build_state(n_items=6)
        ParallelBatchRunner(state, bind=_bind_tweet, workers=3).run(
            _pipeline(), items=items
        )
        collector = ObsCollector()
        collector.replay(state.events)
        roots = collector.spans.finish()
        lanes = [root for root in roots if root.operator.startswith("LANE[")]
        assert len(lanes) == 3
        for lane in lanes:
            assert lane.complete
            assert lane.children  # the per-item GEN spans nest inside

    def test_on_error_raise(self):
        state, items = _build_state(n_items=8)

        def boom(item_state):
            raise RuntimeError("kaput")

        runner = ParallelBatchRunner(state, bind=_bind_tweet, workers=4)
        with pytest.raises(RuntimeError, match="kaput"):
            runner.run(Pipeline([FunctionOperator(boom, "BOOM")]), items=items)

    def test_on_error_collect(self):
        state, items = _build_state(n_items=9)

        def bind_or_boom(item_state, tweet):
            if tweet.uid.endswith("2"):
                raise ValueError(f"bad item {tweet.uid}")
            _bind_tweet(item_state, tweet)

        batch = ParallelBatchRunner(
            state, bind=bind_or_boom, workers=3, on_error="collect"
        ).run(_pipeline(), items=items)
        assert len(batch.items) == 9
        failed = batch.failures()
        assert failed and all(
            isinstance(r.error, ValueError) for r in failed
        )
        assert all(r.ok for r in batch.items if r not in failed)

    def test_invalid_arguments(self):
        state, _ = _build_state(n_items=1)
        with pytest.raises(ValueError):
            ParallelBatchRunner(state, bind=_bind_tweet, on_error="ignore")
        with pytest.raises(ValueError):
            ParallelBatchRunner(state, bind=_bind_tweet, workers=0)

    def test_empty_items(self):
        state, _ = _build_state(n_items=1)
        batch = ParallelBatchRunner(state, bind=_bind_tweet).run(_pipeline(), items=[])
        assert batch.items == []
        assert batch.workers == 0
        assert batch.throughput == 0.0

    def test_metrics_instrumented(self):
        registry = MetricsRegistry()
        state, items = _build_state(n_items=8)
        ParallelBatchRunner(
            state,
            bind=_bind_tweet,
            workers=4,
            options=RuntimeOptions(metrics=registry),
        ).run(_pipeline(), items=items)
        assert registry.sum_counter("spear_microbatch_flushes_total") >= 1
        size_hist = registry.get(
            "spear_microbatch_size", model="qwen2.5-7b-instruct"
        )
        assert size_hist is not None and size_hist.max == 4
        lane_hist = registry.get("spear_lane_elapsed_seconds")
        assert lane_hist is not None and lane_hist.count == 4


class TestParallelStress:
    def test_stress_no_lost_events_or_counter_races(self):
        """>=200 items across >=8 workers: everything the sequential run
        counts, the parallel run counts too."""
        n = 200
        state_seq, items = _build_state(n_items=n, seed=11)
        sequential = BatchRunner(state_seq, bind=_bind_tweet).run(
            _pipeline(), items=items
        )

        state_par, items_par = _build_state(n_items=n, seed=11)
        seen = []
        state_par.model.add_listener(lambda result: seen.append(result))
        parallel = ParallelBatchRunner(
            state_par, bind=_bind_tweet, workers=8
        ).run(_pipeline(), items=items_par)

        # Per-item outputs identical, in item order.
        assert _texts(parallel) == _texts(sequential)

        # Model counters equal the sequential run's (no lost increments).
        seq_model = state_seq.model.snapshot()
        par_model = state_par.model.snapshot()
        for key in (
            "calls",
            "total_prompt_tokens",
            "total_cached_tokens",
            "total_output_tokens",
        ):
            assert par_model[key] == seq_model[key], key

        # No listener drops: one notification per generation call.
        assert len(seen) == par_model["calls"]
        assert state_par.model.listener_errors == []

        # No lost or duplicated events: same number of GENERATE events,
        # and the merged log's sequence numbers are strictly increasing.
        seq_gen = state_seq.events.of_kind(EventKind.GENERATE)
        par_gen = state_par.events.of_kind(EventKind.GENERATE)
        assert len(par_gen) == len(seq_gen) == 2 * n
        seqs = [e.seq for e in state_par.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

        # Cache stats survived the concurrency (shared prefix still hits).
        assert par_model["overall_cache_hit_rate"] == pytest.approx(
            seq_model["overall_cache_hit_rate"]
        )
        assert parallel.elapsed < sequential.elapsed

    def test_stress_result_cache_stays_bit_identical(self):
        """The Table-3 workload with the operator result cache enabled:
        parallel lanes sharing one cache stay bit-identical to the
        sequential baseline, on the cold batch and on a fully-cached
        re-run."""
        from repro.runtime.result_cache import ResultCache

        n = 120
        # The prefix cache is off in both arms: with it on, GEN declines
        # result-caching (latency would depend on hidden cache warmth).
        state_seq, items = _build_state(n_items=n, seed=11, prefix_cache=False)
        sequential = BatchRunner(state_seq, bind=_bind_tweet).run(
            _pipeline(), items=items
        )

        state_par, items_par = _build_state(
            n_items=n, seed=11, prefix_cache=False
        )
        cache = ResultCache(capacity=8192)
        state_par.result_cache = cache
        cache.subscribe_to(state_par.events, state_par.prompts)
        runner = ParallelBatchRunner(state_par, bind=_bind_tweet, workers=8)

        cold = runner.run(_pipeline(), items=items_par)
        assert _texts(cold) == _texts(sequential)

        # Second pass over the same items: everything is memoized, the
        # outputs stay identical, and the batch is dramatically faster.
        warm = runner.run(_pipeline(), items=items_par)
        assert _texts(warm) == _texts(sequential)
        assert cache.hits >= 2 * n
        assert warm.elapsed < cold.elapsed / 10

        # The BATCH summary event accounts the cache activity.
        batch_events = state_par.events.of_kind(EventKind.BATCH)
        payload = batch_events[-1].payload
        assert payload["result_cache_hits"] == 2 * n
        assert payload["result_cache_saved_seconds"] > 0

    def test_stress_cached_lanes_see_refinement_invalidation(self):
        """A refinement between parallel batches invalidates exactly the
        refined prompt's entries; the next batch re-runs only that stage."""
        from repro.core import REF, RefAction
        from repro.runtime.result_cache import ResultCache

        n = 40
        state, items = _build_state(n_items=n, seed=11, prefix_cache=False)
        cache = ResultCache(capacity=8192)
        state.result_cache = cache
        cache.subscribe_to(state.events, state.prompts)
        runner = ParallelBatchRunner(state, bind=_bind_tweet, workers=8)
        runner.run(_pipeline(), items=items)

        REF(RefAction.APPEND, "Focus on school.", key="filter").apply(state)
        assert cache.invalidations == n  # every verdict entry, nothing else

        hits_before = cache.hits
        misses_before = cache.misses
        second = runner.run(_pipeline(), items=items)
        # Map entries hit; every refined-filter entry re-executes.
        assert cache.hits - hits_before == n
        assert cache.misses - misses_before == n

        # And the re-run output matches a fresh sequential run on an
        # identically refined state.
        state_seq, items_seq = _build_state(
            n_items=n, seed=11, prefix_cache=False
        )
        REF(RefAction.APPEND, "Focus on school.", key="filter").apply(state_seq)
        sequential = BatchRunner(state_seq, bind=_bind_tweet).run(
            _pipeline(), items=items_seq
        )
        assert _texts(second) == _texts(sequential)
