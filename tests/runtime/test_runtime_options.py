"""RuntimeOptions: one config object for all runners, legacy kwargs removed."""

import warnings

import pytest

from repro.core import GEN, Pipeline
from repro.core.state import ExecutionState
from repro.data import make_tweet_corpus
from repro.llm.model import SimulatedLLM
from repro.obs.metrics import MetricsRegistry
from repro.resilience import ResilienceRuntime, RetryPolicy
from repro.runtime.executor import Executor
from repro.runtime.incremental import RefinementLoop
from repro.runtime.options import RuntimeOptions
from repro.runtime.parallel import ParallelBatchRunner
from repro.runtime.result_cache import ResultCache

PROMPT = "Summarize the tweet in at most 30 words.\nTweet:\n{tweet}"


def _llm(n_items=6, seed=7):
    llm = SimulatedLLM("qwen2.5-7b-instruct")
    corpus = make_tweet_corpus(n_items, seed=seed)
    llm.bind_tweets(corpus)
    return llm, list(corpus)


def _bind(state, tweet):
    state.context.put("tweet", tweet.text, producer="bind")


class TestRuntimeOptionsObject:
    def test_defaults_are_empty(self):
        options = RuntimeOptions()
        assert options.model is None
        assert options.resilience is None

    def test_replace_returns_updated_copy(self):
        base = RuntimeOptions()
        resilience = ResilienceRuntime(retry=RetryPolicy())
        updated = base.replace(resilience=resilience)
        assert updated.resilience is resilience
        assert base.resilience is None


class TestExecutorOptions:
    def test_options_configure_executor(self):
        llm, _ = _llm()
        cache = ResultCache()
        resilience = ResilienceRuntime(retry=RetryPolicy())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            executor = Executor(
                options=RuntimeOptions(
                    model=llm, result_cache=cache, resilience=resilience
                )
            )
        assert executor.model is llm
        assert executor.result_cache is cache
        state = executor.new_state()
        assert state.resilience is resilience

    def test_legacy_kwargs_raise_typeerror_naming_replacement(self):
        llm, _ = _llm()
        with pytest.raises(TypeError, match=r"options=RuntimeOptions\(model=\.\.\.\)"):
            Executor(model=llm)

    def test_options_and_legacy_kwargs_conflict(self):
        llm, _ = _llm()
        with pytest.raises(TypeError, match="both"):
            Executor(options=RuntimeOptions(model=llm), model=llm)


class TestParallelRunnerOptions:
    def test_options_attach_metrics_and_resilience(self):
        llm, items = _llm()
        state = ExecutionState(model=llm, clock=llm.clock)
        state.prompts.create("map", PROMPT)
        metrics = MetricsRegistry()
        resilience = ResilienceRuntime(retry=RetryPolicy())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            runner = ParallelBatchRunner(
                state,
                bind=_bind,
                workers=2,
                options=RuntimeOptions(metrics=metrics, resilience=resilience),
            )
        assert runner.metrics is metrics
        assert state.resilience is resilience
        batch = runner.run(Pipeline([GEN("summary", prompt="map")]), items=items)
        assert not batch.failures()

    def test_legacy_metrics_kwarg_raises_typeerror(self):
        llm, _ = _llm()
        state = ExecutionState(model=llm, clock=llm.clock)
        with pytest.raises(
            TypeError, match=r"options=RuntimeOptions\(metrics=\.\.\.\)"
        ):
            ParallelBatchRunner(state, bind=_bind, metrics=MetricsRegistry())

    def test_options_and_legacy_conflict(self):
        llm, _ = _llm()
        state = ExecutionState(model=llm, clock=llm.clock)
        with pytest.raises(TypeError, match="both"):
            ParallelBatchRunner(
                state,
                bind=_bind,
                options=RuntimeOptions(),
                metrics=MetricsRegistry(),
            )


class TestRefinementLoopOptions:
    def test_loop_builds_executor_from_options(self):
        llm, _ = _llm()
        pipeline = Pipeline([GEN("summary", prompt="map")])
        loop = RefinementLoop(
            pipeline=pipeline,
            refiners=[],
            options=RuntimeOptions(model=llm),
        )
        assert loop.executor.model is llm

    def test_executor_and_options_conflict(self):
        llm, _ = _llm()
        pipeline = Pipeline([GEN("summary", prompt="map")])
        with pytest.raises(TypeError):
            RefinementLoop(
                Executor(options=RuntimeOptions(model=llm)),
                pipeline,
                refiners=[],
                options=RuntimeOptions(model=llm),
            )

    def test_pipeline_required(self):
        with pytest.raises(TypeError, match="pipeline"):
            RefinementLoop(refiners=[])
