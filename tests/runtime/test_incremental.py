"""Tests for the cache-driven incremental refinement loop."""

import pytest

from repro.core import GEN, REF, Condition, Pipeline, RefAction
from repro.core.state import ExecutionState
from repro.data import make_tweet_corpus
from repro.llm.model import SimulatedLLM
from repro.runtime.executor import Executor
from repro.runtime.incremental import RefinementLoop
from repro.runtime.options import RuntimeOptions
from repro.runtime.result_cache import ResultCache

MAP_PROMPT = (
    "Summarize and clean up the tweet in at most 30 words.\nTweet:\n{tweet}"
)
FILTER_PROMPT = (
    "Select the tweet only if its sentiment is negative. "
    "Respond with yes or no.\nTweet:\n{tweet}"
)


def _build_state(seed=7):
    llm = SimulatedLLM("qwen2.5-7b-instruct", enable_prefix_cache=False)
    corpus = make_tweet_corpus(4, seed=seed)
    llm.bind_tweets(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    state.prompts.create("map_p", MAP_PROMPT)
    state.prompts.create("filter_p", FILTER_PROMPT)
    state.context.put("tweet", corpus[0].text, producer="test")
    return state


def _pipeline():
    return Pipeline(
        [GEN("summary", prompt="map_p"), GEN("verdict", prompt="filter_p")]
    )


def _loop(state, refiners, **kwargs):
    executor = Executor(
        options=RuntimeOptions(
            model=state.model, clock=state.clock, result_cache=ResultCache()
        )
    )
    return RefinementLoop(executor, _pipeline(), refiners=refiners, **kwargs)


class TestRefinementLoop:
    def test_sequence_of_refiners_runs_len_plus_one_iterations(self):
        state = _build_state()
        refiners = [
            REF(RefAction.APPEND, "Focus on school.", key="filter_p"),
            REF(RefAction.APPEND, "Count homework gripes.", key="filter_p"),
        ]
        report = _loop(state, refiners).run(state=state)

        assert len(report.iterations) == 3
        assert report.final is not None
        first, second, third = report.iterations
        # Cold first run: everything misses; the refiner then kills only
        # the filter entry.
        assert first.cache_hits == 0 and first.cache_misses == 2
        assert first.invalidations == 1
        assert first.refined_key == "filter_p"
        # Later runs: the map stage hits, the refined filter re-runs.
        for iteration in (second, third):
            assert iteration.cache_hits == 1
            assert iteration.cache_misses == 1
        assert third.refined_key is None
        assert second.elapsed < first.elapsed
        assert report.total_saved_seconds > 0
        assert report.cache_hits == 2
        assert report.cache_misses == 4

    def test_callable_refiner_stops_on_none(self):
        state = _build_state()

        def refine(current, iteration):
            if iteration >= 1:
                return None
            return REF(RefAction.APPEND, f"hint {iteration}", key="filter_p")

        report = _loop(state, refine).run(state=state)
        assert len(report.iterations) == 2
        assert report.iterations[0].refined_key == "filter_p"
        assert report.iterations[1].refined_key is None

    def test_stop_condition_halts_before_refining(self):
        state = _build_state()
        refiners = [REF(RefAction.APPEND, "never applied", key="filter_p")]
        report = _loop(
            state, refiners, stop=Condition.metadata_above("gen_calls", 0)
        ).run(state=state)
        # The condition holds after the first run, so no refinement.
        assert len(report.iterations) == 1
        assert report.iterations[0].refined_key is None
        assert state.prompts["filter_p"].version == 0

    def test_max_iterations_caps_callable_loops(self):
        state = _build_state()

        def always(current, iteration):
            return REF(RefAction.APPEND, f"hint {iteration}", key="filter_p")

        report = _loop(state, always, max_iterations=3).run(state=state)
        assert len(report.iterations) == 3

    def test_max_iterations_validation(self):
        state = _build_state()
        with pytest.raises(ValueError):
            _loop(state, [], max_iterations=0)

    def test_loop_without_cache_still_works(self):
        state = _build_state()
        executor = Executor(options=RuntimeOptions(model=state.model, clock=state.clock))
        refiners = [REF(RefAction.APPEND, "Focus.", key="filter_p")]
        report = RefinementLoop(
            executor, _pipeline(), refiners=refiners
        ).run(state=state)
        assert len(report.iterations) == 2
        assert report.cache_hits == 0
        assert report.total_saved_seconds == 0

    def test_to_dict_round_trips_the_report(self):
        state = _build_state()
        refiners = [REF(RefAction.APPEND, "Focus.", key="filter_p")]
        report = _loop(state, refiners).run(state=state)
        payload = report.to_dict()
        assert len(payload["iterations"]) == 2
        assert payload["total_elapsed"] == pytest.approx(report.total_elapsed)
        assert payload["cache_hits"] == report.cache_hits
        assert payload["iterations"][0]["refined_key"] == "filter_p"
