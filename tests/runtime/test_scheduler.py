"""Tests for the continuous-batching GEN scheduler.

Covers the engine in isolation (policy, watermark, token budget, lane
lifecycle), the runner integration (byte-identity to sequential,
deterministic step composition, priority/deadline policy), the hypothesis
property suite over randomized pipelines, the mixed-priority stress run,
and the starvation regression for lanes that die before their first
submit.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GEN, Pipeline
from repro.core.state import ExecutionState
from repro.data import make_tweet_corpus
from repro.llm.batcher import GenMicroBatcher
from repro.llm.model import SimulatedLLM
from repro.obs import ObsCollector
from repro.runtime.batch import BatchRunner
from repro.runtime.clock import VirtualClock
from repro.runtime.events import EventKind
from repro.runtime.options import RuntimeOptions
from repro.runtime.parallel import ParallelBatchRunner
from repro.runtime.scheduler import (
    GenScheduler,
    PriorityClass,
    SchedulerConfig,
    resolve_priority_class,
    resolve_scheduler_config,
)

FILTER_PROMPT = (
    "Select the tweet only if its sentiment is negative. "
    "Respond with yes or no.\nTweet:\n{tweet}"
)
MAP_PROMPT = (
    "Summarize and clean up the tweet in at most 30 words.\nTweet:\n{tweet}"
)


def _bind_tweet(state, tweet):
    state.context.put("tweet", tweet.text, producer="bind")


def _build_state(n_items=20, seed=7, prefix_cache=True):
    llm = SimulatedLLM("qwen2.5-7b-instruct", enable_prefix_cache=prefix_cache)
    corpus = make_tweet_corpus(n_items, seed=seed)
    llm.bind_tweets(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    state.prompts.create("filter", FILTER_PROMPT)
    state.prompts.create("map", MAP_PROMPT)
    return state, list(corpus)


def _pipeline():
    return Pipeline(
        [GEN("summary", prompt="map"), GEN("verdict", prompt="filter")]
    )


def _texts(batch):
    return [
        (r.context.get("summary"), r.context.get("verdict"))
        for r in batch.items
    ]


def _step_trace(engine):
    """The composition-relevant view of a step trace, for equality checks."""
    return [
        (
            record.index,
            record.forced,
            record.preemptions,
            tuple(
                (m.lane_id, m.priority, m.arrival, m.start, m.completion)
                for m in record.members
            ),
        )
        for record in engine.steps
    ]


class TestConfig:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch=0)
        with pytest.raises(ValueError):
            SchedulerConfig(max_batch_tokens=0)
        with pytest.raises(ValueError):
            SchedulerConfig(watermark_s=-1.0)

    def test_resolve_scheduler_config(self):
        assert resolve_scheduler_config(False) is None
        assert resolve_scheduler_config(None) == SchedulerConfig()
        assert resolve_scheduler_config(True) == SchedulerConfig()
        config = SchedulerConfig(max_batch_tokens=512)
        assert resolve_scheduler_config(config) is config
        with pytest.raises(TypeError):
            resolve_scheduler_config(42)

    def test_resolve_priority_class(self):
        assert resolve_priority_class(None) is PriorityClass.NORMAL
        assert resolve_priority_class("bulk") is PriorityClass.BULK
        assert resolve_priority_class("INTERACTIVE") is PriorityClass.INTERACTIVE
        assert (
            resolve_priority_class(PriorityClass.BULK) is PriorityClass.BULK
        )
        with pytest.raises(ValueError):
            resolve_priority_class("urgent")
        assert PriorityClass.INTERACTIVE.rank < PriorityClass.NORMAL.rank
        assert PriorityClass.NORMAL.rank < PriorityClass.BULK.rank


class TestEngineUnit:
    def _model(self, n=8, seed=7):
        llm = SimulatedLLM("qwen2.5-7b-instruct")
        llm.bind_tweets(make_tweet_corpus(n, seed=seed))
        return llm

    def test_lane_lifecycle_errors(self):
        engine = GenScheduler(self._model())
        clock = VirtualClock()
        engine.open_lane(0, clock)
        with pytest.raises(ValueError):
            engine.open_lane(0, clock)
        with pytest.raises(RuntimeError):
            engine.configure_lane(1, priority="bulk")
        with pytest.raises(RuntimeError):
            engine.submit(1, "hello")
        engine.close_lane(0)
        with pytest.raises(RuntimeError):
            engine.submit(0, "hello")

    def test_single_lane_matches_direct_model(self):
        """One lane with a free pipe degenerates to the direct call path:
        same text, same latency, same clock advance."""
        direct = self._model()
        prompt = "Summarize the tweet.\nTweet:\nthe trains are late again"
        direct_result = direct.generate(prompt)

        scheduled = self._model()
        engine = GenScheduler(scheduled)
        proxy = engine.open_lane(0, scheduled.clock)
        sched_result = proxy.generate(prompt)
        engine.close_lane(0)

        assert sched_result.text == direct_result.text
        assert sched_result.latency.total == pytest.approx(
            direct_result.latency.total
        )
        assert scheduled.clock.now == pytest.approx(direct.clock.now)

    def test_closing_idle_lane_releases_pending_peer(self):
        """Starvation regression: a lane that dies between open_lane and
        its first submit must not leave peers waiting forever."""
        for make_engine in (
            lambda model: GenScheduler(model),
            lambda model: GenMicroBatcher(model),
        ):
            model = self._model()
            engine = make_engine(model)
            proxy = engine.open_lane(0, VirtualClock())
            engine.open_lane(1, VirtualClock())

            outcome = {}

            def worker(proxy=proxy, outcome=outcome):
                outcome["result"] = proxy.generate(
                    "Summarize the tweet.\nTweet:\nso tired of delays"
                )

            thread = threading.Thread(target=worker, daemon=True)
            thread.start()
            # Lane 1 "raises before its first submit": all it can do is
            # close.  That must release lane 0 as a step of one.
            engine.close_lane(1)
            thread.join(timeout=10)
            assert not thread.is_alive(), type(engine).__name__
            assert outcome["result"].text

    def test_token_budget_splits_steps(self):
        state, items = _build_state(n_items=12)
        runner = ParallelBatchRunner(
            state,
            bind=_bind_tweet,
            workers=12,
            options=RuntimeOptions(
                scheduler=SchedulerConfig(max_batch_tokens=120)
            ),
        )
        runner.run(Pipeline([GEN("summary", prompt="map")]), items=items)
        engine = runner.last_batcher
        assert engine.flushes > 1  # the budget split the quiescence set
        for record in engine.steps:
            # Within budget, except a protected singleton admission.
            assert record.tokens <= 120 or record.size == 1

    def test_watermark_zero_forces_arrival_order(self):
        """watermark_s=0 forces every pending request: admission becomes
        pure arrival order regardless of priority class."""
        state, items = _build_state(n_items=8)
        runner = ParallelBatchRunner(
            state,
            bind=_bind_tweet,
            workers=4,
            options=RuntimeOptions(
                scheduler=SchedulerConfig(watermark_s=0.0),
                priority=lambda item: "interactive"
                if item.uid.endswith("1")
                else "bulk",
            ),
        )
        runner.run(_pipeline(), items=items)
        engine = runner.last_batcher
        assert engine.forced == engine.batched_calls
        for record in engine.steps:
            arrivals = [m.arrival for m in record.members]
            assert arrivals == sorted(arrivals)

    def test_snapshot_keys_superset_of_barrier(self):
        state, items = _build_state(n_items=6)
        runner = ParallelBatchRunner(state, bind=_bind_tweet, workers=3)
        runner.run(_pipeline(), items=items)
        snapshot = runner.last_batcher.snapshot()
        for key in (
            "flushes",
            "batched_calls",
            "largest_batch",
            "mean_batch_size",
            "total_batch_wall",
            "open_lanes",
            "pending",
            "steps",
            "preemptions",
            "forced",
            "mean_wait",
        ):
            assert key in snapshot, key
        assert snapshot["open_lanes"] == 0
        assert snapshot["pending"] == 0


class TestRunnerIntegration:
    def test_outputs_identical_to_sequential(self):
        state_seq, items = _build_state()
        sequential = BatchRunner(state_seq, bind=_bind_tweet).run(
            _pipeline(), items=items
        )
        for workers in (1, 3, 8):
            state_par, items_par = _build_state()
            parallel = ParallelBatchRunner(
                state_par, bind=_bind_tweet, workers=workers
            ).run(_pipeline(), items=items_par)
            assert _texts(parallel) == _texts(sequential)

    def test_step_composition_deterministic(self):
        """Two same-seed runs form byte-identical step traces — batch
        composition is a function of the workload, not thread timing."""
        traces = []
        for _ in range(2):
            state, items = _build_state(n_items=24, seed=13)
            runner = ParallelBatchRunner(state, bind=_bind_tweet, workers=8)
            runner.run(_pipeline(), items=items)
            traces.append(_step_trace(runner.last_batcher))
        assert traces[0] == traces[1]
        assert traces[0]  # a real trace, not two empty lists

    def test_legacy_barrier_engine_still_selectable(self):
        state_seq, items = _build_state(n_items=12)
        sequential = BatchRunner(state_seq, bind=_bind_tweet).run(
            _pipeline(), items=items
        )
        state, items_par = _build_state(n_items=12)
        runner = ParallelBatchRunner(
            state,
            bind=_bind_tweet,
            workers=4,
            options=RuntimeOptions(scheduler=False),
        )
        batch = runner.run(_pipeline(), items=items_par)
        assert isinstance(runner.last_batcher, GenMicroBatcher)
        assert _texts(batch) == _texts(sequential)

    def test_interactive_waits_less_than_bulk(self):
        """Mixed workload: interactive items admit ahead of bulk, so their
        queue waits are strictly better in aggregate."""
        state, items = _build_state(n_items=32, seed=9)
        runner = ParallelBatchRunner(
            state,
            bind=_bind_tweet,
            workers=8,
            options=RuntimeOptions(
                scheduler=SchedulerConfig(max_batch=4, watermark_s=1e9),
                priority=lambda item: "interactive"
                if int(item.uid[-1]) % 4 == 0
                else "bulk",
                deadline_s=lambda item: 2.0
                if int(item.uid[-1]) % 4 == 0
                else None,
            ),
        )
        runner.run(_pipeline(), items=items)
        engine = runner.last_batcher
        stats = engine.wait_stats()
        assert set(stats) == {"interactive", "bulk"}
        assert stats["interactive"]["p50"] <= stats["bulk"]["p50"]
        assert stats["interactive"]["mean"] < stats["bulk"]["mean"]
        # The policy actually reordered work at least once.
        assert engine.preemptions > 0

    def test_no_deadline_inversions_among_admitted(self):
        """Within each step's policy-ordered (non-forced) suffix, the
        admission order respects (priority rank, deadline) — an admitted
        item never sorts behind a worse-ranked peer in its own step."""
        state, items = _build_state(n_items=32, seed=9)
        rank = {"interactive": 0, "normal": 1, "bulk": 2}
        runner = ParallelBatchRunner(
            state,
            bind=_bind_tweet,
            workers=8,
            options=RuntimeOptions(
                scheduler=SchedulerConfig(max_batch=4, watermark_s=1e9),
                priority=lambda item: ("interactive", "normal", "bulk")[
                    int(item.uid[-1]) % 3
                ],
                deadline_s=lambda item: float(1 + int(item.uid[-1]) % 5),
            ),
        )
        runner.run(_pipeline(), items=items)
        for record in runner.last_batcher.steps:
            suffix = record.members[record.forced :]
            keys = [
                (
                    rank[m.priority],
                    m.deadline if m.deadline is not None else float("inf"),
                )
                for m in suffix
            ]
            assert keys == sorted(keys), record

    def test_sched_events_and_batch_payload(self):
        state, items = _build_state(n_items=8)
        runner = ParallelBatchRunner(state, bind=_bind_tweet, workers=4)
        runner.run(_pipeline(), items=items)
        sched_events = state.events.of_kind(EventKind.SCHED)
        assert len(sched_events) == runner.last_batcher.flushes
        payload = sched_events[0].payload
        for key in (
            "step", "size", "tokens", "forced", "preemptions",
            "queue_depth", "wall", "lanes", "classes", "waits",
        ):
            assert key in payload, key
        assert len(payload["lanes"]) == payload["size"]
        batch_payload = state.events.of_kind(EventKind.BATCH)[0].payload
        assert batch_payload["sched_steps"] == runner.last_batcher.flushes
        assert "sched_mean_wait" in batch_payload

    def test_collector_derives_sched_metrics(self):
        state, items = _build_state(n_items=8)
        runner = ParallelBatchRunner(state, bind=_bind_tweet, workers=4)
        runner.run(_pipeline(), items=items)
        collector = ObsCollector()
        collector.replay(state.events)
        registry = collector.registry
        assert registry.sum_counter("spear_sched_steps_total") >= 1
        size_hist = registry.get("spear_sched_step_size")
        assert size_hist is not None and size_hist.max == 4
        wait_hist = registry.get(
            "spear_sched_wait_seconds", **{"class": "normal"}
        )
        assert wait_hist is not None and wait_hist.count == 16


LONG_MAP_PROMPT = (
    "You are a careful social media analyst working for a city transit "
    "agency. Read the rider tweet below and produce a faithful, neutral "
    "summary in at most 30 words. Do not speculate beyond the text, do "
    "not add hashtags, and keep the rider's key complaint intact. If the "
    "tweet names a line, a station, or a time, preserve them exactly.\n"
    "Tweet:\n{tweet}"
)


class TestPrefixAware:
    """Prefix-aware admission: trunk grouping, dedup pricing, pinning."""

    def _run(self, n_items=12, workers=6, seed=7, config=None):
        llm = SimulatedLLM("qwen2.5-7b-instruct")
        corpus = make_tweet_corpus(n_items, seed=seed)
        llm.bind_tweets(corpus)
        state = ExecutionState(model=llm, clock=llm.clock)
        state.prompts.create("map", LONG_MAP_PROMPT)
        runner = ParallelBatchRunner(
            state,
            bind=_bind_tweet,
            workers=workers,
            options=RuntimeOptions(scheduler=config),
        )
        batch = runner.run(
            Pipeline([GEN("summary", prompt="map")]), items=list(corpus)
        )
        return state, runner, batch

    def test_shared_trunk_charged_once_per_step(self):
        state, runner, _ = self._run()
        engine = runner.last_batcher
        assert engine.dedup_tokens_total > 0
        snapshot = engine.snapshot()
        assert snapshot["dedup_tokens"] == engine.dedup_tokens_total
        assert snapshot["mean_step_dedup_tokens"] > 0
        block = state.model.kv_cache.block_size
        for record in engine.steps:
            assert record.dedup_tokens == sum(
                m.dedup_tokens for m in record.members
            )
            for member in record.members:
                # Only cached, block-aligned trunk tokens are deduped.
                assert member.dedup_tokens % block == 0
                assert member.dedup_tokens <= member.prompt_tokens
            if len(record.members) > 1:
                # One shared trunk: every member but the first dedups.
                assert record.prefix_groups == 1
                assert (
                    sum(1 for m in record.members if m.dedup_tokens > 0)
                    == len(record.members) - 1
                )

    def test_dedup_saves_wall_time_outputs_unchanged(self):
        state_on, runner_on, batch_on = self._run()
        state_off, runner_off, batch_off = self._run(
            config=SchedulerConfig(prefix_group_blocks=0, prefix_dedup=False)
        )
        texts = lambda b: [r.context.get("summary") for r in b.items]
        assert texts(batch_on) == texts(batch_off)
        assert runner_off.last_batcher.dedup_tokens_total == 0
        assert all(r.prefix_groups == 0 for r in runner_off.last_batcher.steps)
        # The shared trunk was actually priced once, not once per member.
        assert state_on.clock.now < state_off.clock.now

    def test_pins_released_after_run(self):
        state, runner, _ = self._run()
        snapshot = state.model.kv_cache.snapshot()
        assert snapshot["pinned_blocks"] == 0
        assert snapshot["blocks"] > 0

    def test_legacy_chain_cache_still_works(self):
        from repro.llm.kv_cache import BlockPrefixCache

        llm = SimulatedLLM(
            "qwen2.5-7b-instruct", kv_cache=BlockPrefixCache()
        )
        corpus = make_tweet_corpus(8, seed=7)
        llm.bind_tweets(corpus)
        state = ExecutionState(model=llm, clock=llm.clock)
        state.prompts.create("map", LONG_MAP_PROMPT)
        runner = ParallelBatchRunner(state, bind=_bind_tweet, workers=4)
        batch = runner.run(
            Pipeline([GEN("summary", prompt="map")]), items=list(corpus)
        )
        assert all(r.context.get("summary") for r in batch.items)
        # No pin() on the chain tier: the scheduler degrades gracefully
        # but dedup pricing still applies (it needs only token overlap).
        assert runner.last_batcher.dedup_tokens_total > 0

    def test_prefix_composition_deterministic(self):
        traces = []
        for _ in range(2):
            _, runner, _ = self._run(n_items=24, seed=13, workers=8)
            engine = runner.last_batcher
            traces.append(
                [
                    (
                        record.index,
                        record.dedup_tokens,
                        record.prefix_groups,
                        tuple(m.lane_id for m in record.members),
                        tuple(m.dedup_tokens for m in record.members),
                    )
                    for record in engine.steps
                ]
            )
        assert traces[0] == traces[1]
        assert traces[0]

    def test_trunk_key_and_grouping_unit(self):
        from types import SimpleNamespace

        llm = SimulatedLLM("qwen2.5-7b-instruct")
        engine = GenScheduler(
            llm, config=SchedulerConfig(prefix_group_blocks=1)
        )
        block = llm.kv_cache.block_size

        def req(tokens, lane, rank=1):
            return SimpleNamespace(
                tokens=tokens, lane_id=lane, priority_rank=rank
            )

        trunk_a = list(range(block))
        trunk_b = list(range(1000, 1000 + block))
        r1 = req(trunk_a + [1], lane=0)
        r2 = req(trunk_b + [2], lane=1)
        r3 = req(trunk_a + [3], lane=2)
        # Same trunk, same priority -> same key; grouping pulls r3 next
        # to r1 while group order follows first appearance.
        assert engine._trunk_key(r1) == engine._trunk_key(r3)
        assert engine._trunk_key(r1) != engine._trunk_key(r2)
        assert engine._group_by_trunk([r1, r2, r3]) == [r1, r3, r2]
        # Priority rank is part of the key: bulk never rides an
        # interactive trunk group.
        r4 = req(trunk_a + [4], lane=3, rank=2)
        assert engine._trunk_key(r1) != engine._trunk_key(r4)
        # Short prompts stay singletons keyed by lane.
        short = req(trunk_a[: block - 1], lane=5)
        assert engine._trunk_key(short) == ("solo", 5)

    def test_dedup_capped_by_cached_tokens(self):
        from types import SimpleNamespace

        llm = SimulatedLLM("qwen2.5-7b-instruct")
        engine = GenScheduler(llm)
        block = llm.kv_cache.block_size
        trunk = list(range(3 * block))

        def req(tokens, lane):
            return SimpleNamespace(
                tokens=tokens, lane_id=lane, priority_rank=1
            )

        admitted = [req(trunk + [1], 0), req(trunk + [2], 1)]
        # Second member shares 3 blocks but only 1 survived to its
        # lookup: dedup must not exceed what the cache actually served.
        triples = [(len(trunk) + 1, 0, 10), (len(trunk) + 1, block, 10)]
        assert engine._dedup_tokens(admitted, triples) == [0, block]
        # With ample cache the full trunk dedups.
        triples = [(len(trunk) + 1, 0, 10), (len(trunk) + 1, 3 * block, 10)]
        assert engine._dedup_tokens(admitted, triples) == [0, 3 * block]

    def test_sched_events_carry_prefix_payload(self):
        state, runner, _ = self._run(n_items=8, workers=4)
        sched_events = state.events.of_kind(EventKind.SCHED)
        assert sched_events
        for event in sched_events:
            assert "dedup_tokens" in event.payload
            assert "prefix_groups" in event.payload
        assert sum(e.payload["dedup_tokens"] for e in sched_events) == (
            runner.last_batcher.dedup_tokens_total
        )

    def test_collector_derives_prefix_metrics(self):
        state, runner, _ = self._run(n_items=8, workers=4)
        collector = ObsCollector()
        collector.attach_model(state.model)
        collector.replay(state.events)
        registry = collector.registry
        assert registry.sum_counter("spear_prefix_dedup_tokens_total") == (
            runner.last_batcher.dedup_tokens_total
        )
        hist = registry.get("spear_prefix_step_dedup_tokens")
        assert hist is not None and hist.count == len(
            runner.last_batcher.steps
        )
        groups = registry.get("spear_prefix_groups_per_step")
        assert groups is not None and groups.max >= 1
        kv = state.model.kv_cache.snapshot()
        model_label = {"model": state.model.profile.name}
        for gauge, key in (
            ("spear_prefix_cache_nodes", "nodes"),
            ("spear_prefix_cache_leaves", "leaves"),
            ("spear_prefix_cache_pinned_blocks", "pinned_blocks"),
        ):
            metric = registry.get(gauge, **model_label)
            assert metric is not None, gauge
            assert metric.value == kv[key], gauge


_WORKLOADS = st.tuples(
    st.integers(min_value=1, max_value=16),  # items
    st.integers(min_value=1, max_value=8),  # workers
    st.integers(min_value=0, max_value=2**16),  # seed
    st.lists(  # pipeline stages
        st.sampled_from(["map", "filter"]), min_size=1, max_size=3
    ),
    st.sampled_from([None, 80, 400]),  # max_batch_tokens
    st.sampled_from([0.0, 5.0, 1e9]),  # watermark_s
)


class TestSchedulerProperties:
    @settings(max_examples=20, deadline=None)
    @given(_WORKLOADS)
    def test_byte_identical_and_seed_deterministic(self, workload):
        """On randomized pipelines and policy knobs, scheduler outputs are
        byte-identical to sequential and step composition is a pure
        function of the workload + seed."""
        n_items, workers, seed, stages, max_tokens, watermark = workload
        pipeline = Pipeline(
            [
                GEN(f"out{i}", prompt=key)
                for i, key in enumerate(stages)
            ]
        )
        config = SchedulerConfig(
            max_batch_tokens=max_tokens, watermark_s=watermark
        )

        state_seq, items = _build_state(n_items=n_items, seed=seed)
        sequential = BatchRunner(state_seq, bind=_bind_tweet).run(
            pipeline, items=items
        )
        keys = [f"out{i}" for i in range(len(stages))]

        def outputs(batch):
            return [
                tuple(r.context.get(key) for key in keys)
                for r in batch.items
            ]

        traces = []
        for _ in range(2):
            state_par, items_par = _build_state(n_items=n_items, seed=seed)
            runner = ParallelBatchRunner(
                state_par,
                bind=_bind_tweet,
                workers=workers,
                options=RuntimeOptions(scheduler=config),
            )
            batch = runner.run(pipeline, items=items_par)
            assert outputs(batch) == outputs(sequential)
            traces.append(_step_trace(runner.last_batcher))
        assert traces[0] == traces[1]


class TestSchedulerStress:
    def test_stress_mixed_priorities(self):
        """200 items, mixed priority classes, 8 workers: no lost events,
        no dropped listeners, no deadline inversions among admitted
        items, outputs byte-identical to sequential."""
        n = 200
        state_seq, items = _build_state(n_items=n, seed=11)
        sequential = BatchRunner(state_seq, bind=_bind_tweet).run(
            _pipeline(), items=items
        )

        state_par, items_par = _build_state(n_items=n, seed=11)
        seen = []
        state_par.model.add_listener(lambda result: seen.append(result))
        rank = {"interactive": 0, "normal": 1, "bulk": 2}

        def priority_of(item):
            return ("interactive", "normal", "bulk")[int(item.uid[-1]) % 3]

        runner = ParallelBatchRunner(
            state_par,
            bind=_bind_tweet,
            workers=8,
            options=RuntimeOptions(
                scheduler=SchedulerConfig(max_batch=4, watermark_s=1e9),
                priority=priority_of,
                deadline_s=lambda item: float(1 + int(item.uid[-1]) % 7),
            ),
        )
        parallel = runner.run(_pipeline(), items=items_par)

        # Outputs byte-identical, in item order.
        assert _texts(parallel) == _texts(sequential)

        # Model counters match sequential: no lost increments.
        seq_model = state_seq.model.snapshot()
        par_model = state_par.model.snapshot()
        for key in (
            "calls",
            "total_prompt_tokens",
            "total_cached_tokens",
            "total_output_tokens",
        ):
            assert par_model[key] == seq_model[key], key

        # No dropped listeners: one notification per generation call.
        assert len(seen) == par_model["calls"]
        assert state_par.model.listener_errors == []

        # No lost events in the folded log.
        seq_gen = state_seq.events.of_kind(EventKind.GENERATE)
        par_gen = state_par.events.of_kind(EventKind.GENERATE)
        assert len(par_gen) == len(seq_gen) == 2 * n
        seqs = [e.seq for e in state_par.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

        # Engine accounting is conserved and drained.
        engine = runner.last_batcher
        assert engine.batched_calls == 2 * n
        snapshot = engine.snapshot()
        assert snapshot["open_lanes"] == 0 and snapshot["pending"] == 0

        # No deadline inversions among admitted items: each step's
        # policy-ordered suffix is sorted by (rank, deadline).
        for record in engine.steps:
            suffix = record.members[record.forced :]
            keys = [
                (
                    rank[m.priority],
                    m.deadline if m.deadline is not None else float("inf"),
                )
                for m in suffix
            ]
            assert keys == sorted(keys)


class TestStarvationRegression:
    def test_lane_raising_before_first_submit_releases_peers(self):
        """Runner-level regression: an item whose bind raises on a lane's
        first item must not starve peers waiting in the admission set.
        A watchdog bounds the run so a regression fails fast instead of
        hanging the suite."""
        state, items = _build_state(n_items=8)

        def bind_or_boom(item_state, tweet):
            if int(tweet.uid[-1]) % 2 == 1:  # every odd lane's first item
                raise ValueError(f"bad item {tweet.uid}")
            _bind_tweet(item_state, tweet)

        runner = ParallelBatchRunner(
            state, bind=bind_or_boom, workers=8, on_error="collect"
        )
        outcome = {}

        def run():
            outcome["batch"] = runner.run(_pipeline(), items=items)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive(), "parallel run deadlocked"
        batch = outcome["batch"]
        assert len(batch.items) == 8
        assert len(batch.failures()) == 4
        assert all(r.ok for r in batch.items if r not in batch.failures())

    def test_legacy_barrier_engine_same_regression(self):
        state, items = _build_state(n_items=8)

        def bind_or_boom(item_state, tweet):
            if int(tweet.uid[-1]) % 2 == 1:
                raise ValueError(f"bad item {tweet.uid}")
            _bind_tweet(item_state, tweet)

        runner = ParallelBatchRunner(
            state,
            bind=bind_or_boom,
            workers=8,
            on_error="collect",
            options=RuntimeOptions(scheduler=False),
        )
        outcome = {}

        def run():
            outcome["batch"] = runner.run(_pipeline(), items=items)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=30)
        assert not thread.is_alive(), "parallel run deadlocked"
        assert len(outcome["batch"].failures()) == 4


class TestExecutorIntegration:
    def test_single_lane_executor_byte_identical(self):
        from repro.runtime.executor import Executor

        def run(options):
            llm = SimulatedLLM("qwen2.5-7b-instruct")
            llm.bind_tweets(make_tweet_corpus(4, seed=3))
            executor = Executor(options=options.replace(model=llm))
            state = executor.new_state(
                context={"tweet": "the trains are late again, awful"}
            )
            state.prompts.create("map", MAP_PROMPT)
            result = executor.run(
                Pipeline([GEN("summary", prompt="map")]), state=state
            )
            return result

        plain = run(RuntimeOptions())
        sched = run(RuntimeOptions(scheduler=True, deadline_s=5.0))
        assert sched.output("summary") == plain.output("summary")
        assert sched.elapsed == pytest.approx(plain.elapsed)
        kinds = [e.kind for e in sched.events]
        assert EventKind.SCHED in kinds
        assert EventKind.SCHED not in [e.kind for e in plain.events]

    def test_refinement_loop_marks_iterations_bulk(self):
        from repro.core import REF, RefAction
        from repro.runtime.executor import Executor
        from repro.runtime.incremental import RefinementLoop

        llm = SimulatedLLM("qwen2.5-7b-instruct")
        llm.bind_tweets(make_tweet_corpus(4, seed=3))
        executor = Executor(
            options=RuntimeOptions(model=llm, scheduler=True)
        )
        state = executor.new_state(
            context={"tweet": "the trains are late again, awful"}
        )
        state.prompts.create("map", MAP_PROMPT)
        loop = RefinementLoop(
            executor,
            Pipeline([GEN("summary", prompt="map")]),
            refiners=[REF(RefAction.APPEND, "Be concise.", key="map")],
            max_iterations=2,
        )
        loop.run(state=state)
        sched_events = [
            e for e in state.events.all() if e.kind is EventKind.SCHED
        ]
        assert sched_events
        classes = {
            priority
            for event in sched_events
            for priority in event.payload["classes"]
        }
        assert classes == {"bulk"}
