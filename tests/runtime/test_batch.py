"""Tests for the batch runner."""

import pytest

from repro.core import GEN, Pipeline, REF, RefAction
from repro.core.algebra import FunctionOperator
from repro.runtime.batch import BatchRunner


def _bind_tweet(state, tweet):
    state.context.put("tweet", tweet.text, producer="bind")


@pytest.fixture
def filter_pipeline(state):
    state.prompts.create(
        "filter",
        "Select the tweet only if its sentiment is negative. "
        "Respond with yes or no.\nTweet:\n{tweet}",
    )
    return Pipeline([GEN("verdict", prompt="filter")])


class TestBatchRunner:
    def test_runs_pipeline_per_item(self, state, tweet_corpus, filter_pipeline):
        runner = BatchRunner(state, bind=_bind_tweet)
        batch = runner.run(filter_pipeline, items=tweet_corpus.tweets[:10])
        assert len(batch.items) == 10
        assert all(result.ok for result in batch.items)
        assert all(isinstance(v, str) for v in batch.outputs("verdict"))

    def test_items_isolated_from_each_other(self, state, tweet_corpus, filter_pipeline):
        runner = BatchRunner(state, bind=_bind_tweet)
        batch = runner.run(filter_pipeline, items=tweet_corpus.tweets[:5])
        tweets_seen = [result.context["tweet"] for result in batch.items]
        assert tweets_seen == [t.text for t in tweet_corpus.tweets[:5]]
        # The base state never saw any item's context writes.
        assert "tweet" not in state.context
        assert "verdict" not in state.context

    def test_prompt_store_and_caches_shared(self, state, tweet_corpus, filter_pipeline):
        runner = BatchRunner(state, bind=_bind_tweet)
        runner.run(filter_pipeline, items=tweet_corpus.tweets[:10])
        # The shared instruction prefix accumulates hits across items.
        assert state.model.overall_cache_hit_rate > 0.3

    def test_elapsed_accounting(self, state, tweet_corpus, filter_pipeline):
        runner = BatchRunner(state, bind=_bind_tweet)
        batch = runner.run(filter_pipeline, items=tweet_corpus.tweets[:4])
        assert batch.elapsed == pytest.approx(
            sum(result.elapsed for result in batch.items)
        )
        assert batch.mean_item_seconds > 0

    def test_signals_per_item(self, state, tweet_corpus, filter_pipeline):
        runner = BatchRunner(state, bind=_bind_tweet)
        batch = runner.run(filter_pipeline, items=tweet_corpus.tweets[:3])
        confidences = batch.signals("confidence")
        assert len(confidences) == 3
        assert all(0 <= value <= 1 for value in confidences)

    def test_on_error_raise(self, state):
        def boom(item_state):
            raise RuntimeError("kaput")

        runner = BatchRunner(state, bind=lambda s, item: None)
        with pytest.raises(RuntimeError):
            runner.run(Pipeline([FunctionOperator(boom, "BOOM")]), items=[1, 2])

    def test_on_error_collect(self, state):
        calls = []

        def sometimes_boom(item_state):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("first item fails")
            return item_state

        runner = BatchRunner(state, bind=lambda s, item: None, on_error="collect")
        batch = runner.run(
            Pipeline([FunctionOperator(sometimes_boom, "MAYBE")]), [1, 2, 3]
        )
        assert len(batch.failures()) == 1
        assert not batch.items[0].ok
        assert batch.items[1].ok

    def test_bind_failure_collected_not_raised(self, state, tweet_corpus, filter_pipeline):
        def flaky_bind(item_state, tweet):
            if tweet is tweet_corpus.tweets[1]:
                raise KeyError("bind exploded")
            _bind_tweet(item_state, tweet)

        runner = BatchRunner(state, bind=flaky_bind, on_error="collect")
        batch = runner.run(filter_pipeline, items=tweet_corpus.tweets[:3])
        # The failing bind becomes an item failure, not a batch abort.
        assert len(batch.items) == 3
        assert batch.items[0].ok
        assert not batch.items[1].ok
        assert isinstance(batch.items[1].error, KeyError)
        assert batch.items[2].ok

    def test_bind_failure_raises_under_raise_policy(self, state, tweet_corpus, filter_pipeline):
        def bad_bind(item_state, tweet):
            raise KeyError("bind exploded")

        runner = BatchRunner(state, bind=bad_bind)
        with pytest.raises(KeyError):
            runner.run(filter_pipeline, items=tweet_corpus.tweets[:2])

    def test_throughput(self, state, tweet_corpus, filter_pipeline):
        runner = BatchRunner(state, bind=_bind_tweet)
        batch = runner.run(filter_pipeline, items=tweet_corpus.tweets[:5])
        assert batch.elapsed > 0
        assert batch.throughput == pytest.approx(5 / batch.elapsed)
        assert batch.workers == 1

    def test_throughput_zero_for_empty_batch(self, state, filter_pipeline):
        runner = BatchRunner(state, bind=_bind_tweet)
        batch = runner.run(filter_pipeline, items=[])
        assert batch.throughput == 0.0

    def test_batch_event_emitted(self, state, tweet_corpus, filter_pipeline):
        from repro.runtime.events import EventKind

        runner = BatchRunner(state, bind=_bind_tweet)
        batch = runner.run(filter_pipeline, items=tweet_corpus.tweets[:4])
        events = state.events.of_kind(EventKind.BATCH)
        assert len(events) == 1
        payload = events[0].payload
        assert payload["mode"] == "sequential"
        assert payload["items"] == 4
        assert payload["workers"] == 1
        assert payload["throughput"] == pytest.approx(batch.throughput)

    def test_invalid_on_error_policy(self, state):
        with pytest.raises(ValueError):
            BatchRunner(state, bind=lambda s, i: None, on_error="ignore")

    def test_internal_result_objects_not_exposed(self, state, tweet_corpus, filter_pipeline):
        runner = BatchRunner(state, bind=_bind_tweet)
        batch = runner.run(filter_pipeline, items=tweet_corpus.tweets[:2])
        for result in batch.items:
            assert not any(key.endswith("__result") for key in result.context)

    def test_empty_items(self, state, filter_pipeline):
        runner = BatchRunner(state, bind=_bind_tweet)
        batch = runner.run(filter_pipeline, items=[])
        assert batch.items == []
        assert batch.mean_item_seconds == 0.0

    def test_shared_prompt_refinements_visible_across_items(self, state, tweet_corpus):
        # Refinements made during item k apply to item k+1 (shared P).
        state.prompts.create(
            "filter",
            "Select the tweet only if its sentiment is negative. "
            "Respond with yes or no.\nTweet:\n{tweet}",
        )
        pipeline = Pipeline(
            [REF(RefAction.APPEND, "extra", key="filter"), GEN("v", prompt="filter")]
        )
        runner = BatchRunner(state, bind=_bind_tweet)
        runner.run(pipeline, items=tweet_corpus.tweets[:3])
        assert state.prompts["filter"].version == 3
