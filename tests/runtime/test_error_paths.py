"""Error-path behaviour: RETRY exhaustion, subscriber isolation, cache refusal."""

from types import SimpleNamespace

import pytest

from repro.core import GEN, Condition, Pipeline, RETRY
from repro.core.algebra import FunctionOperator, Operator
from repro.core.footprint import Footprint
from repro.core.state import ExecutionState
from repro.data import make_tweet_corpus
from repro.dl import compile_source
from repro.errors import OperatorError, SpearError, TransientModelError
from repro.llm.model import SimulatedLLM
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    ResilienceRuntime,
    RetryPolicy,
)
from repro.runtime.clock import VirtualClock
from repro.runtime.events import EventKind
from repro.runtime.parallel import ParallelBatchRunner
from repro.runtime.result_cache import ResultCache

MAP_PROMPT = (
    "Summarize and clean up the tweet in at most 30 words.\nTweet:\n{tweet}"
)

NEVER = Condition.of(lambda state: False, "never")


class TestRetryPolicyOperator:
    def _flaky_operator(self, fail_times):
        calls = []

        def attempt(state):
            calls.append(1)
            if len(calls) <= fail_times:
                raise TransientModelError("flaky step", injected=True)
            state.context.put("out", f"ok after {len(calls)}", producer="test")
            return state

        return FunctionOperator(attempt, "FLAKY"), calls

    def test_policy_retries_retryable_errors(self):
        op, calls = self._flaky_operator(fail_times=2)
        retry = RETRY(
            op, NEVER,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.5, jitter=0.0),
        )
        state = retry.apply(ExecutionState())
        assert state.context["out"] == "ok after 3"
        assert len(calls) == 3
        assert state.M["retries"] == 2
        # Exponential backoff (0.5 + 1.0) charged to the virtual clock.
        assert state.clock.now == pytest.approx(1.5)
        assert len(state.events.of_kind(EventKind.RETRY)) == 2

    def test_policy_exhaustion_reraises(self):
        op, calls = self._flaky_operator(fail_times=10)
        retry = RETRY(op, NEVER, policy=RetryPolicy(max_attempts=2, jitter=0.0))
        with pytest.raises(TransientModelError):
            retry.apply(ExecutionState())
        assert len(calls) == 2

    def test_policy_leaves_non_retryable_alone(self):
        def attempt(state):
            raise OperatorError("configuration is broken")

        retry = RETRY(
            FunctionOperator(attempt, "BROKEN"), NEVER,
            policy=RetryPolicy(max_attempts=5),
        )
        with pytest.raises(OperatorError):
            retry.apply(ExecutionState())

    def test_policy_and_max_retries_conflict(self):
        with pytest.raises(OperatorError):
            RETRY(
                FunctionOperator(lambda s: s), NEVER,
                max_retries=2, policy=RetryPolicy(),
            )

    def test_dsl_max_retries_lowers_onto_policy(self):
        program = compile_source(
            'pipeline p { RETRY[GEN["x", prompt="q"], M["c"] < 0.5, '
            "max_retries=3] }"
        )
        retry = program.pipeline("p").operators[0]
        assert isinstance(retry, RETRY)
        assert retry.policy is not None
        assert retry.policy.max_attempts == 4
        assert retry.max_retries == 3


class TestRetryExhaustionInParallelRunner:
    def test_collected_errors_surface_per_item(self):
        llm = SimulatedLLM(
            "qwen2.5-7b-instruct",
            enable_prefix_cache=False,
            fault_plan=FaultPlan(0, default=FaultSpec(transient_rate=1.0)),
        )
        corpus = make_tweet_corpus(6, seed=7)
        llm.bind_tweets(corpus)
        state = ExecutionState(model=llm, clock=llm.clock)
        state.prompts.create("map", MAP_PROMPT)
        pipeline = Pipeline(
            [
                RETRY(
                    GEN("summary", prompt="map"), NEVER,
                    policy=RetryPolicy(
                        max_attempts=2, base_delay_s=0.1, jitter=0.0
                    ),
                )
            ]
        )
        runner = ParallelBatchRunner(
            state, bind=lambda st, t: st.context.put(
                "tweet", t.text, producer="bind"
            ),
            on_error="collect", workers=3,
        )
        batch = runner.run(pipeline, items=list(corpus))
        failures = batch.failures()
        # Every attempt faults, so every item exhausts its retries and the
        # last TransientModelError is collected rather than aborting the run.
        assert len(failures) == len(batch.items) == 6
        assert {type(f.error).__name__ for f in failures} == {
            "TransientModelError"
        }
        assert all(f.metadata.get("retries", 0) >= 1 for f in failures)


class TestSubscriberIsolation:
    def test_raising_subscriber_does_not_break_resilient_run(self):
        class FlakyModel:
            profile = SimpleNamespace(name="stub-model")

            def __init__(self):
                self.calls = 0

            def generate(self, prompt, *, max_tokens=None):
                self.calls += 1
                if self.calls == 1:
                    raise TransientModelError("boom", injected=True)
                return SimpleNamespace(text="recovered", task="stub")

        state = ExecutionState(model=FlakyModel(), clock=VirtualClock())
        state.resilience = ResilienceRuntime(
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.1, jitter=0.0)
        )

        def bad_subscriber(event):
            raise RuntimeError("subscriber exploded")

        state.events.subscribe(bad_subscriber)
        result = state.resilience.generate(state, "hello")
        # The run recovered despite the subscriber raising on every event.
        assert result.text == "recovered"
        errors = state.events.of_kind(EventKind.ERROR)
        assert errors
        assert all(
            event.operator.startswith("subscriber[") for event in errors
        )


class TestResultCacheRefusesFailures:
    def test_failed_attempt_is_not_admitted(self):
        class FailingOp(Operator):
            label = 'FAIL["x"]'

            def footprint(self, state):
                return Footprint(
                    operator=self.label, identity="x", model_key=None
                )

            def _run(self, state):
                raise SpearError("this attempt must not be cached")

        state = ExecutionState()
        cache = ResultCache()
        state.result_cache = cache
        op = FailingOp()
        with pytest.raises(SpearError):
            op.apply(state)
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 0
        # The footprint is also not a hit on retry: the next attempt runs live.
        assert cache.lookup(op.footprint(state)) is None
        with pytest.raises(SpearError):
            op.apply(state)
        assert cache.snapshot()["entries"] == 0
