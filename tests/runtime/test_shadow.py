"""Tests for shadow execution (paper §6)."""

from repro.core import EXPAND, GEN, Pipeline
from repro.runtime.events import EventKind
from repro.runtime.shadow import shadow_run


def _qa_pipeline(extra=None):
    operators = []
    if extra is not None:
        operators.append(EXPAND("qa", extra))
    operators.append(GEN("answer", prompt="qa"))
    return Pipeline(operators)


class TestShadowRun:
    def _prepare(self, state, tweet_corpus):
        tweet = tweet_corpus[0]
        state.prompts.create(
            "qa",
            "### Task\nSelect the tweet only if its sentiment is negative. "
            f"Respond with yes or no.\nTweet:\n{tweet.text}",
        )
        return state

    def test_shadow_does_not_leak_into_primary(self, state, tweet_corpus):
        state = self._prepare(state, tweet_corpus)
        report = shadow_run(
            state,
            primary=_qa_pipeline(),
            shadow=_qa_pipeline("Shadow-only refinement line."),
        )
        assert "Shadow-only" not in report.primary_state.prompts.text("qa")
        assert "Shadow-only" in report.shadow_state.prompts.text("qa")

    def test_shadow_clock_rewound(self, state, tweet_corpus):
        state = self._prepare(state, tweet_corpus)
        report = shadow_run(state, _qa_pipeline(), _qa_pipeline())
        # The timeline reflects only the primary run.
        assert state.clock.now == report.elapsed_primary
        assert report.elapsed_shadow > 0

    def test_signal_deltas_and_confidence_comparison(self, state, tweet_corpus):
        state = self._prepare(state, tweet_corpus)
        report = shadow_run(
            state,
            _qa_pipeline(),
            _qa_pipeline("Focus on school-related negativity."),
        )
        assert "confidence" in report.signal_deltas
        primary_conf, shadow_conf = report.signal_deltas["confidence"]
        assert report.shadow_improves_confidence == (shadow_conf > primary_conf)

    def test_shadow_events_marked(self, state, tweet_corpus):
        state = self._prepare(state, tweet_corpus)
        shadow_run(state, _qa_pipeline(), _qa_pipeline())
        phases = [
            event.payload["phase"]
            for event in state.events.of_kind(EventKind.SHADOW)
        ]
        assert phases == ["start", "end"]

    def test_diverging_context_keys_reported(self, state, tweet_corpus):
        state = self._prepare(state, tweet_corpus)
        report = shadow_run(
            state,
            _qa_pipeline(),
            _qa_pipeline("Answer no regardless of the content."),
        )
        # Divergence depends on the noise channel; the field must at least
        # be a list of plain keys, never the internal __result entries.
        assert all(not key.endswith("__result") for key in report.diverging_context_keys)

    def test_shadow_is_faster_flag(self, state, tweet_corpus):
        state = self._prepare(state, tweet_corpus)
        report = shadow_run(
            state,
            _qa_pipeline("extra line one\nextra line two"),
            _qa_pipeline(),
        )
        assert report.shadow_is_faster == (
            report.elapsed_shadow < report.elapsed_primary
        )
