"""Property-based tests: arbitrary prompt stores survive persistence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PromptStore, RefAction, RefinementMode
from repro.runtime.persistence import store_from_dict, store_to_dict
from repro.runtime.replay import verify_replay

_keys = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
_texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=80
)
_actions = st.sampled_from(
    [RefAction.APPEND, RefAction.PREPEND, RefAction.UPDATE, RefAction.REPLACE]
)
_modes = st.one_of(st.none(), st.sampled_from(list(RefinementMode)))


@st.composite
def prompt_stores(draw):
    store = PromptStore()
    for key in draw(st.lists(_keys, min_size=1, max_size=4, unique=True)):
        store.create(
            key,
            draw(_texts),
            tags=set(draw(st.lists(_keys, max_size=2))),
            params={name: draw(_texts) for name in draw(st.lists(_keys, max_size=2))},
            view=draw(st.one_of(st.none(), _keys)),
        )
        for __ in range(draw(st.integers(min_value=0, max_value=4))):
            action = draw(_actions)
            entry = store[key]
            if action is RefAction.APPEND:
                new_text = entry.text + "\n" + draw(_texts)
            elif action is RefAction.PREPEND:
                new_text = draw(_texts) + "\n" + entry.text
            else:
                new_text = draw(_texts)
            entry.record(
                action,
                new_text,
                function=draw(_keys),
                mode=draw(_modes),
                condition=draw(st.one_of(st.none(), _texts)),
                signals={"confidence": draw(st.floats(0, 1, allow_nan=False))},
            )
    return store


class TestPersistenceProperties:
    @settings(max_examples=60, deadline=None)
    @given(prompt_stores())
    def test_round_trip_preserves_everything(self, store):
        loaded = store_from_dict(store_to_dict(store))
        assert loaded.keys() == store.keys()
        for key in store.keys():
            original = store[key]
            copy = loaded[key]
            assert copy.text == original.text
            assert copy.version == original.version
            assert copy.tags == original.tags
            assert copy.params == original.params
            assert copy.view == original.view
            for snapshot in original.versions:
                assert copy.text_at(snapshot.version) == snapshot.text
            assert [r.to_dict() for r in copy.ref_log] == [
                r.to_dict() for r in original.ref_log
            ]

    @settings(max_examples=40, deadline=None)
    @given(prompt_stores())
    def test_loaded_stores_are_replayable(self, store):
        loaded = store_from_dict(store_to_dict(store))
        assert verify_replay(loaded)

    @settings(max_examples=40, deadline=None)
    @given(prompt_stores())
    def test_serialization_is_deterministic(self, store):
        first = store_to_dict(store)
        second = store_to_dict(store)
        assert first == second
