"""Tests for the operator-level result cache (version-precise invalidation)."""

import json

import pytest

from repro.core import GEN, REF, Pipeline, RefAction
from repro.core.footprint import Footprint
from repro.core.state import ExecutionState
from repro.data import make_tweet_corpus
from repro.llm.model import SimulatedLLM
from repro.runtime.events import EventKind
from repro.runtime.executor import Executor
from repro.runtime.options import RuntimeOptions
from repro.runtime.result_cache import ReadOnlyResultCache, ResultCache

MAP_PROMPT = (
    "Summarize and clean up the tweet in at most 30 words.\nTweet:\n{tweet}"
)
DIGEST_PROMPT = (
    "Condense the summary above into one takeaway.\nSummary:\n{summary}"
)
FILTER_PROMPT = (
    "Select the tweet only if its sentiment is negative. "
    "Respond with yes or no.\nTweet:\n{tweet}"
)


def _build_state(seed=7):
    # The prefix cache is off so GEN is cacheable: with it on, simulated
    # latency depends on cache warmth (hidden state), and GEN.footprint
    # conservatively declines to participate.
    llm = SimulatedLLM("qwen2.5-7b-instruct", enable_prefix_cache=False)
    corpus = make_tweet_corpus(4, seed=seed)
    llm.bind_tweets(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    state.prompts.create("map_p", MAP_PROMPT)
    state.prompts.create("digest_p", DIGEST_PROMPT)
    state.prompts.create("filter_p", FILTER_PROMPT)
    state.context.put("tweet", corpus[0].text, producer="test")
    return state


def _pipeline():
    # summary feeds takeaway (context edge); verdict reads the raw tweet.
    return Pipeline(
        [
            GEN("summary", prompt="map_p"),
            GEN("takeaway", prompt="digest_p"),
            GEN("verdict", prompt="filter_p"),
        ]
    )


def _executor(state, cache):
    return Executor(
        options=RuntimeOptions(
            model=state.model, clock=state.clock, result_cache=cache
        )
    )


def _freeze(state):
    context = {key: repr(state.context[key]) for key in state.context.keys()}
    metadata = {key: repr(state.metadata[key]) for key in state.metadata.keys()}
    return json.dumps({"context": context, "metadata": metadata}, sort_keys=True)


def _cache_hit_operators(events):
    # ``events`` is a RunResult's per-run slice (a plain list of Events).
    return [
        event.operator
        for event in events
        if event.kind is EventKind.CACHE_HIT
    ]


class TestHitPath:
    def test_second_run_hits_every_gen(self):
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)

        first = executor.run(_pipeline(), state=state)
        assert first.cache["hits"] == 0
        assert first.cache["misses"] == 3

        second = executor.run(_pipeline(), state=first.state)
        assert second.cache["hits"] == 3
        assert second.cache["misses"] == 0
        assert second.elapsed == pytest.approx(3 * cache.hit_cost)
        assert second.cache["saved_seconds"] > 0

    def test_cache_hit_events_emitted_inside_operator_spans(self):
        state = _build_state()
        executor = _executor(state, ResultCache())
        executor.run(_pipeline(), state=state)
        second = executor.run(_pipeline(), state=state)

        hits = [
            event
            for event in second.events
            if event.kind is EventKind.CACHE_HIT
        ]
        assert [event.operator for event in hits] == [
            'GEN["summary"]',
            'GEN["takeaway"]',
            'GEN["verdict"]',
        ]
        payload = hits[0].payload
        assert payload["prompt_keys"] == ["map_p"]
        assert payload["saved_seconds"] > 0
        assert payload["fingerprint"]
        # Each hit sits between its operator's START and END events.
        kinds = [event.kind for event in second.events]
        for index, event in enumerate(second.events):
            if event.kind is EventKind.CACHE_HIT:
                assert kinds[index - 1] is EventKind.OPERATOR_START
                assert kinds[index + 1] is EventKind.OPERATOR_END

    def test_cached_outputs_byte_identical_to_uncached(self):
        uncached = _build_state()
        executor = Executor(
            options=RuntimeOptions(model=uncached.model, clock=uncached.clock)
        )
        executor.run(_pipeline(), state=uncached)
        executor.run(_pipeline(), state=uncached)

        cached = _build_state()
        executor = _executor(cached, ResultCache())
        executor.run(_pipeline(), state=cached)
        executor.run(_pipeline(), state=cached)

        assert _freeze(cached) == _freeze(uncached)

    def test_no_cache_still_runs(self):
        state = _build_state()
        executor = Executor(
            options=RuntimeOptions(model=state.model, clock=state.clock)
        )
        result = executor.run(_pipeline(), state=state)
        assert result.cache == {}
        assert "verdict" in result.state.context


class TestInvalidationPrecision:
    """Refining one prompt invalidates exactly its transitive dependents."""

    def test_refining_leaf_prompt_keeps_upstream_hits(self):
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)

        # verdict depends on filter_p alone; summary/takeaway do not.
        REF(RefAction.APPEND, "Focus on school.", key="filter_p").apply(state)
        assert cache.invalidations == 1
        assert len(cache) == 2

        second = executor.run(_pipeline(), state=state)
        assert second.cache["hits"] == 2
        assert second.cache["misses"] == 1
        assert _cache_hit_operators(second.events) == [
            'GEN["summary"]',
            'GEN["takeaway"]',
        ]

    def test_refining_upstream_prompt_chases_context_edges(self):
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)

        # summary reads map_p; takeaway reads summary's *output* —
        # transitive via the writer → reader edge.  verdict reads only
        # the raw tweet and filter_p, so it survives.
        REF(RefAction.APPEND, "Mention the author.", key="map_p").apply(state)
        assert cache.invalidations == 2
        assert len(cache) == 1

        second = executor.run(_pipeline(), state=state)
        assert 'GEN["verdict"]' in _cache_hit_operators(second.events)
        assert second.cache["misses"] == 2

    def test_refined_prompt_reinserts_at_new_version(self):
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)
        REF(RefAction.APPEND, "Focus.", key="filter_p").apply(state)
        executor.run(_pipeline(), state=state)  # repopulates at v1

        # Re-running now hits everything again — the v1 entry is live.
        third = executor.run(_pipeline(), state=state)
        assert third.cache["hits"] == 3
        assert third.cache["misses"] == 0

    def test_silent_version_bump_never_produces_stale_hit(self):
        # A record() that bypasses the event log gets no invalidation,
        # but the version/text digest in the fingerprint already misses.
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)

        entry = state.prompts["filter_p"]
        entry.record(
            RefAction.APPEND, entry.text + "\nBe strict.", function="f_manual"
        )
        assert cache.invalidations == 0  # no event seen

        second = executor.run(_pipeline(), state=state)
        assert second.cache["misses"] == 1
        assert second.cache["hits"] == 2

    def test_invalidate_prompt_directly(self):
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)
        removed = cache.invalidate_prompt("map_p")
        assert removed == 2  # summary + its reader, takeaway
        assert cache.invalidate_prompt("map_p") == 0  # idempotent


class TestSubscriptionGuard:
    def test_foreign_store_refinement_ignored(self):
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)

        # A REFINE event whose version does not match the bound store's
        # current version is a clone's edit — it must not invalidate.
        state.events.emit(
            EventKind.REFINE,
            'REF["filter_p"]',
            at=state.clock.now,
            key="filter_p",
            version=99,
        )
        assert cache.invalidations == 0

        # An unknown key is likewise ignored.
        state.events.emit(
            EventKind.REFINE,
            'REF["ghost"]',
            at=state.clock.now,
            key="ghost",
            version=1,
        )
        assert cache.invalidations == 0

    def test_subscribe_idempotent_per_log(self):
        state = _build_state()
        cache = ResultCache()
        cache.subscribe_to(state.events, state.prompts)
        cache.subscribe_to(state.events, state.prompts)
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)
        REF(RefAction.APPEND, "Focus.", key="filter_p").apply(state)
        # A double subscription would double-count the invalidation.
        assert cache.invalidations == 1


class TestCacheMechanics:
    def test_lru_eviction_at_capacity(self):
        state = _build_state()
        cache = ResultCache(capacity=2)
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)
        assert len(cache) == 2
        assert cache.evictions == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)
        with pytest.raises(ValueError):
            ResultCache(hit_cost=-1.0)

    def test_snapshot_and_hit_rate(self):
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)
        executor.run(_pipeline(), state=state)
        snapshot = cache.snapshot()
        assert snapshot["entries"] == 3.0
        assert snapshot["hits"] == 3.0
        assert snapshot["misses"] == 3.0
        assert snapshot["hit_rate"] == pytest.approx(0.5)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_clear_drops_entries_keeps_counters(self):
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)
        cache.clear()
        assert len(cache) == 0
        assert cache.misses == 3
        second = executor.run(_pipeline(), state=state)
        assert second.cache["misses"] == 3

    def test_prefix_cache_enabled_disables_gen_caching(self):
        llm = SimulatedLLM("qwen2.5-7b-instruct")  # prefix cache ON
        corpus = make_tweet_corpus(2, seed=7)
        llm.bind_tweets(corpus)
        state = ExecutionState(model=llm, clock=llm.clock)
        state.prompts.create("filter_p", FILTER_PROMPT)
        state.context.put("tweet", corpus[0].text, producer="test")
        cache = ResultCache()
        executor = _executor(state, cache)
        pipeline = Pipeline([GEN("verdict", prompt="filter_p")])
        executor.run(pipeline, state=state)
        executor.run(pipeline, state=state)
        assert cache.hits == 0 and cache.misses == 0
        assert len(cache) == 0


class TestReadOnlyView:
    def test_read_only_hits_but_never_mutates(self):
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)

        view = cache.read_only()
        assert isinstance(view, ReadOnlyResultCache)
        assert view.read_only() is view
        assert len(view) == len(cache)
        assert view.recorder(state) is None
        assert view.invalidate_prompt("map_p") == 0
        assert len(cache) == 3  # nothing invalidated through the view

        footprint = Footprint(operator="X", identity="x", model_key=None)
        view.insert(footprint, None)
        assert len(cache) == 3
        assert view.lookup(footprint) is None  # counted on the primary
        assert cache.misses == 4
        assert view.snapshot()["entries"] == 3.0
        assert view.hit_cost == cache.hit_cost

    def test_shadow_fork_shares_cache_read_only(self):
        state = _build_state()
        cache = ResultCache()
        executor = _executor(state, cache)
        executor.run(_pipeline(), state=state)

        from repro.runtime.shadow import shadow_run

        entries_before = len(cache)
        report = shadow_run(
            state,
            _pipeline(),
            Pipeline(
                [
                    REF(RefAction.APPEND, "Be strict.", key="filter_p"),
                    GEN("verdict", prompt="filter_p"),
                ]
            ),
        )
        assert report is not None
        # The shadow's refinement of its cloned store must not have
        # invalidated the primary's entries, nor inserted speculative
        # ones for its diverged prompt.
        assert len(cache) == entries_before
        assert cache.invalidations == 0
