"""Tests for prompt-store persistence (save/load with full history)."""

import json

import pytest

from repro.core import PromptStore, RefAction, RefinementMode
from repro.errors import ReplayError
from repro.runtime.persistence import (
    load_store,
    save_store,
    store_from_dict,
    store_to_dict,
)
from repro.runtime.replay import verify_replay


def _populated_store() -> PromptStore:
    store = PromptStore()
    store.create(
        "qa",
        "base question",
        tags={"clinical"},
        params={"drug": "Enoxaparin"},
        view="med_summary",
        function="f_view_med_summary",
    )
    store["qa"].record(
        RefAction.APPEND,
        "base question\nFocus on dosage.",
        function="f_manual_append",
        mode=RefinementMode.MANUAL,
        condition='M["confidence"] < 0.7',
        signals={"confidence": 0.6},
    )
    store["qa"].ref_log[-1].signals["outcome_confidence"] = 0.85
    store.create("other", "plain")
    return store


class TestRoundTrip:
    def test_texts_and_versions_roundtrip(self):
        store = _populated_store()
        loaded = store_from_dict(store_to_dict(store))
        assert loaded.keys() == store.keys()
        assert loaded.text("qa") == store.text("qa")
        assert loaded["qa"].text_at(0) == "base question"
        assert loaded["qa"].version == 1

    def test_metadata_roundtrips(self):
        loaded = store_from_dict(store_to_dict(_populated_store()))
        entry = loaded["qa"]
        assert entry.tags == {"clinical"}
        assert entry.params == {"drug": "Enoxaparin"}
        assert entry.view == "med_summary"

    def test_ref_log_roundtrips_exactly(self):
        loaded = store_from_dict(store_to_dict(_populated_store()))
        record = loaded["qa"].ref_log[-1]
        assert record.action is RefAction.APPEND
        assert record.mode is RefinementMode.MANUAL
        assert record.condition == 'M["confidence"] < 0.7'
        assert record.signals["outcome_confidence"] == 0.85

    def test_loaded_store_supports_replay(self):
        loaded = store_from_dict(store_to_dict(_populated_store()))
        assert verify_replay(loaded)

    def test_loaded_store_supports_rollback(self):
        loaded = store_from_dict(store_to_dict(_populated_store()))
        loaded["qa"].rollback(0)
        assert loaded.text("qa") == "base question"

    def test_file_roundtrip(self, tmp_path):
        store = _populated_store()
        path = save_store(store, tmp_path / "prompts.json")
        loaded = load_store(path)
        assert store_to_dict(loaded) == store_to_dict(store)

    def test_file_is_valid_json(self, tmp_path):
        path = save_store(_populated_store(), tmp_path / "prompts.json")
        payload = json.loads(path.read_text())
        assert payload["format"] == 1
        assert "qa" in payload["entries"]


class TestValidation:
    def test_unknown_format_rejected(self):
        with pytest.raises(ReplayError):
            store_from_dict({"format": 99, "entries": {}})

    def test_missing_versions_rejected(self):
        payload = store_to_dict(_populated_store())
        payload["entries"]["qa"]["versions"] = []
        with pytest.raises(ReplayError):
            store_from_dict(payload)

    def test_non_contiguous_versions_rejected(self):
        payload = store_to_dict(_populated_store())
        payload["entries"]["qa"]["versions"][1]["version"] = 5
        with pytest.raises(ReplayError):
            store_from_dict(payload)

    def test_version_without_log_record_rejected(self):
        payload = store_to_dict(_populated_store())
        payload["entries"]["qa"]["ref_log"].pop()
        with pytest.raises(ReplayError):
            store_from_dict(payload)


class TestLiveIntegration:
    def test_pipeline_history_survives_persistence(self, state, tweet_corpus, tmp_path):
        from repro.core import EXPAND, GEN

        state.prompts.create(
            "qa", f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        )
        state = EXPAND("qa", "Be concise.").apply(state)
        state = GEN("answer", prompt="qa").apply(state)

        path = save_store(state.prompts, tmp_path / "p.json")
        loaded = load_store(path)
        assert loaded.text("qa") == state.prompts.text("qa")
        assert (
            loaded["qa"].ref_log[-1].signals.get("outcome_confidence")
            == state.prompts["qa"].ref_log[-1].signals.get("outcome_confidence")
        )
