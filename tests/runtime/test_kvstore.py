"""Tests for pluggable KV backends and their PromptStore integration."""

from repro.core import PromptStore
from repro.runtime.clock import VirtualClock
from repro.runtime.kvstore import (
    InMemoryBackend,
    JournalingBackend,
    LatencyModelBackend,
)


class TestInMemoryBackend:
    def test_mapping_operations(self):
        backend = InMemoryBackend()
        backend["a"] = 1
        assert backend["a"] == 1
        assert "a" in backend
        assert list(backend) == ["a"]
        assert len(backend) == 1
        del backend["a"]
        assert "a" not in backend


class TestLatencyModelBackend:
    def test_operations_charge_the_clock(self):
        clock = VirtualClock()
        backend = LatencyModelBackend(
            clock, read_latency=0.001, write_latency=0.002
        )
        backend["a"] = 1
        assert clock.now == 0.002
        __ = backend["a"]
        assert clock.now == 0.003
        assert backend.reads == 1
        assert backend.writes == 1

    def test_contains_and_iter_are_free(self):
        clock = VirtualClock()
        backend = LatencyModelBackend(clock)
        backend["a"] = 1
        at = clock.now
        assert "a" in backend
        assert list(backend) == ["a"]
        assert clock.now == at

    def test_delete_counts_as_write(self):
        clock = VirtualClock()
        backend = LatencyModelBackend(clock, write_latency=0.01)
        backend["a"] = 1
        del backend["a"]
        assert backend.writes == 2


class TestJournalingBackend:
    def test_journal_records_mutations_in_order(self):
        backend = JournalingBackend()
        backend["a"] = 1
        backend["b"] = 2
        del backend["a"]
        assert backend.journal == [("set", "a"), ("set", "b"), ("del", "a")]

    def test_callback_invoked(self):
        calls = []
        backend = JournalingBackend(on_mutation=lambda op, key: calls.append((op, key)))
        backend["a"] = 1
        assert calls == [("set", "a")]


class TestPromptStoreIntegration:
    def test_prompt_store_over_latency_backend(self):
        clock = VirtualClock()
        backend = LatencyModelBackend(clock)
        store = PromptStore(backend)
        store.create("qa", "text")
        assert store.text("qa") == "text"
        assert clock.now > 0

    def test_prompt_store_over_journaling_backend(self):
        backend = JournalingBackend()
        store = PromptStore(backend)
        store.create("qa", "text")
        store.clone("qa", "qa2")
        assert [op for op, __ in backend.journal] == ["set", "set"]
