"""Shape assertions for the paper's Table 3, Table 4, and Figure 1.

Run at reduced corpus size for speed; the shape claims (who wins, signs,
crossovers) are scale-independent by construction and asserted here.  The
full-size reproductions live in benchmarks/.
"""

import pytest

from repro.experiments.fusion_models import run_point
from repro.experiments.fusion_selectivity import run_cell
from repro.experiments.refinement_strategies import run_table3


@pytest.fixture(scope="module")
def table3():
    return run_table3(n=250, seed=7)


class TestTable3Shape:
    def test_static_and_agentic_get_no_cache_reuse(self, table3):
        assert table3.results["static"].filter_cache_hit < 0.05
        assert table3.results["agentic"].filter_cache_hit < 0.05

    def test_refinement_modes_get_high_cache_reuse(self, table3):
        for strategy in ("manual", "assisted", "auto"):
            assert table3.results[strategy].filter_cache_hit > 0.75, strategy

    def test_refinement_modes_speed_up_over_static(self, table3):
        for strategy in ("manual", "assisted", "auto"):
            assert table3.speedup(strategy) > 1.15, strategy

    def test_agentic_small_speedup(self, table3):
        assert 1.0 < table3.speedup("agentic") < 1.2

    def test_manual_is_fastest(self, table3):
        manual_time = table3.results["manual"].mean_item_seconds
        for strategy in ("static", "agentic", "assisted", "auto"):
            assert manual_time <= table3.results[strategy].mean_item_seconds

    def test_every_refinement_strategy_beats_static_f1(self, table3):
        static_f1 = table3.results["static"].f1
        for strategy in ("agentic", "manual", "assisted", "auto"):
            assert table3.results[strategy].f1 > static_f1, strategy

    def test_auto_refinement_has_best_f1(self, table3):
        auto_f1 = table3.results["auto"].f1
        for strategy in ("static", "manual", "assisted"):
            assert auto_f1 >= table3.results[strategy].f1, strategy
        # Agentic is the closest competitor (paper: 0.79 vs 0.81); allow
        # small-sample noise at reduced n.
        assert auto_f1 >= table3.results["agentic"].f1 - 0.02

    def test_f1_gain_column_consistent(self, table3):
        assert table3.f1_gain_pct("static") == 0.0
        assert table3.f1_gain_pct("auto") > 5.0

    def test_absolute_f1_in_plausible_band(self, table3):
        for strategy, result in table3.results.items():
            assert 0.55 < result.f1 < 0.95, strategy


class TestTable4Shape:
    def test_map_filter_gain_positive_at_all_selectivities(self):
        for selectivity in (0.1, 0.5, 1.0):
            cell = run_cell("map_filter", selectivity, n=120)
            assert cell.gain_pct > 10.0, selectivity

    def test_filter_map_negative_at_low_selectivity(self):
        cell = run_cell("filter_map", 0.1, n=120)
        assert cell.gain_pct < 0.0

    def test_filter_map_positive_at_high_selectivity(self):
        cell = run_cell("filter_map", 1.0, n=120)
        assert cell.gain_pct > 10.0

    def test_filter_map_gain_increases_with_selectivity(self):
        gains = [
            run_cell("filter_map", s, n=120).gain_pct for s in (0.1, 0.5, 1.0)
        ]
        assert gains == sorted(gains)


class TestFigure1Shape:
    @pytest.mark.parametrize(
        "model",
        ["qwen2.5-7b-instruct", "mistral-7b-instruct", "gpt-4o-mini"],
    )
    def test_map_filter_speedup_with_accuracy_cost(self, model):
        point = run_point(model, "map_filter", n=150)
        assert point.speedup > 1.15
        assert point.accuracy_drop_pct > 0.0

    @pytest.mark.parametrize(
        "model",
        ["qwen2.5-7b-instruct", "mistral-7b-instruct", "gpt-4o-mini"],
    )
    def test_filter_map_speedup_smaller_than_map_filter(self, model):
        map_filter = run_point(model, "map_filter", n=150)
        filter_map = run_point(model, "filter_map", n=150)
        assert filter_map.speedup < map_filter.speedup

    def test_filter_map_accuracy_drop_modest(self):
        for model in ("qwen2.5-7b-instruct", "gpt-4o-mini"):
            point = run_point(model, "filter_map", n=150)
            assert point.accuracy_drop_pct < 8.0
