"""Tests for the seed-variance harness (stability of the Table 3 shape)."""

import pytest

from repro.experiments.variance import CellStats, run_variance


class TestCellStats:
    def test_mean_and_std(self):
        stats = CellStats((1.0, 2.0, 3.0))
        assert stats.mean == pytest.approx(2.0)
        assert stats.std == pytest.approx(1.0)

    def test_single_value_std_zero(self):
        assert CellStats((0.7,)).std == 0.0

    def test_str_form(self):
        assert str(CellStats((0.5, 0.5))) == "0.500±0.000"


class TestVariance:
    @pytest.fixture(scope="class")
    def result(self):
        return run_variance(seeds=(7, 23), n=150)

    def test_all_strategies_covered(self, result):
        assert set(result.f1) == {"static", "agentic", "manual", "assisted", "auto"}

    def test_shape_holds_on_every_seed(self, result):
        assert result.shape_holds_on_every_seed()

    def test_f1_variance_is_small(self, result):
        for strategy, stats in result.f1.items():
            assert stats.std < 0.08, strategy

    def test_speedups_stable(self, result):
        for strategy in ("manual", "assisted", "auto"):
            assert result.speedup[strategy].std < 0.05, strategy

    def test_determinism_per_seed(self):
        first = run_variance(seeds=(7,), n=100)
        second = run_variance(seeds=(7,), n=100)
        assert first.f1["auto"].values == second.f1["auto"].values
