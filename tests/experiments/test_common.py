"""Tests for the shared experiment machinery."""

import pytest

from repro.data.tweets import make_tweet_corpus
from repro.experiments.common import (
    POST_ITEM_MARKER,
    StageRun,
    accuracy_against_negatives,
    build_views,
    compose_item_prompt,
    make_llm,
    run_filter_map_sequential,
    run_fused,
    run_map_filter_sequential,
)


@pytest.fixture(scope="module")
def corpus():
    return make_tweet_corpus(60, seed=7, negative_fraction=0.5)


class TestComposeItemPrompt:
    def test_item_on_own_line(self):
        prompt = compose_item_prompt("Do the thing.", "the item")
        assert prompt.splitlines() == ["Do the thing.", "Tweet:", "the item"]

    def test_post_item_lines_moved_after_item(self):
        instructions = f"Pre line.\n{POST_ITEM_MARKER} remember the focus."
        prompt = compose_item_prompt(instructions, "the item")
        lines = prompt.splitlines()
        assert lines.index("the item") < lines.index(
            f"{POST_ITEM_MARKER} remember the focus."
        )


class TestViews:
    def test_views_compose_scaffold(self):
        views = build_views()
        map_text = views.expand("map_stage")
        filter_text = views.expand("filter_stage")
        assert map_text.startswith("### Task")
        assert filter_text.startswith("### Task")
        assert "Summarize" in map_text
        assert "negative" in filter_text


class TestStageRun:
    def test_aggregation(self, corpus):
        run = StageRun()
        llm = make_llm("qwen2.5-7b-instruct")
        llm.bind_tweets(corpus)
        result = llm.generate(
            compose_item_prompt("Summarize the tweet.", corpus[0].text)
        )
        run.record_call(result)
        run.record_decision(corpus[0], True)
        assert run.calls == 1
        assert run.selected == {corpus[0].uid}
        assert run.mean_item_seconds == pytest.approx(result.latency.total)


class TestRunners:
    def test_map_filter_sequential_two_calls_per_item(self, corpus):
        run = run_map_filter_sequential(make_llm("qwen2.5-7b-instruct"), corpus)
        assert run.calls == 2 * len(corpus)
        assert len(run.decisions) == len(corpus)

    def test_filter_map_sequential_pushdown_skips_map_calls(self, corpus):
        run = run_filter_map_sequential(make_llm("qwen2.5-7b-instruct"), corpus)
        assert run.calls == len(corpus) + len(run.selected)

    def test_fused_one_call_per_item(self, corpus):
        for order in ("map_filter", "filter_map"):
            run = run_fused(make_llm("qwen2.5-7b-instruct"), corpus, order=order)
            assert run.calls == len(corpus)

    def test_fused_rejects_unknown_order(self, corpus):
        with pytest.raises(ValueError):
            run_fused(make_llm("qwen2.5-7b-instruct"), corpus, order="diagonal")

    def test_accuracy_above_chance_for_all_plans(self, corpus):
        for runner in (run_map_filter_sequential, run_filter_map_sequential):
            run = runner(make_llm("qwen2.5-7b-instruct"), corpus)
            assert accuracy_against_negatives(run, corpus) > 0.6

    def test_instruction_prefix_gets_cached(self, corpus):
        llm = make_llm("qwen2.5-7b-instruct")
        run = run_map_filter_sequential(llm, corpus)
        assert run.cache_hit_rate > 0.5

    def test_runs_are_deterministic(self, corpus):
        run_1 = run_map_filter_sequential(make_llm("qwen2.5-7b-instruct"), corpus)
        run_2 = run_map_filter_sequential(make_llm("qwen2.5-7b-instruct"), corpus)
        assert run_1.decisions == run_2.decisions
        assert run_1.sim_seconds == pytest.approx(run_2.sim_seconds)
