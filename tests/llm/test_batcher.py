"""Tests for the GEN micro-batcher and the batched latency model."""

import threading

import pytest

from repro.data import make_tweet_corpus
from repro.errors import ModelError
from repro.llm.batcher import GenMicroBatcher
from repro.llm.latency import estimate_batch_latency, estimate_latency
from repro.llm.model import SimulatedLLM
from repro.llm.profiles import get_profile
from repro.runtime.clock import VirtualClock

PROFILE = get_profile("qwen2.5-7b-instruct")


def _model():
    llm = SimulatedLLM(PROFILE)
    llm.bind_tweets(make_tweet_corpus(10, seed=3))
    return llm


PROMPT = (
    "Select the tweet only if its sentiment is negative. "
    "Respond with yes or no.\nTweet:\nthis day was awful and I hate it"
)


class TestBatchLatency:
    def test_batch_of_one_degenerates_to_single_call(self):
        single = estimate_latency(
            PROFILE, prompt_tokens=100, cached_tokens=40, output_tokens=20
        )
        batch = estimate_batch_latency(PROFILE, [(100, 40, 20)])
        assert batch.wall == pytest.approx(single.total)
        assert batch.per_request[0].total == pytest.approx(single.total)
        assert batch.size == 1

    def test_batched_wall_below_serialized_sum(self):
        requests = [(100, 80, 30), (100, 80, 25), (100, 80, 30)]
        batch = estimate_batch_latency(PROFILE, requests)
        serialized = sum(
            estimate_latency(
                PROFILE, prompt_tokens=p, cached_tokens=c, output_tokens=o
            ).total
            for p, c, o in requests
        )
        assert batch.wall < serialized
        assert batch.serialized > batch.wall

    def test_decode_charged_at_max_not_sum(self):
        batch = estimate_batch_latency(PROFILE, [(10, 0, 50), (10, 0, 10)])
        expected = (
            PROFILE.overhead_s
            + PROFILE.prefill_s_per_token * 20
            + PROFILE.decode_s_per_token * 50
        )
        assert batch.wall == pytest.approx(expected)

    def test_overhead_amortized_across_requests(self):
        batch = estimate_batch_latency(PROFILE, [(10, 0, 5)] * 4)
        for request in batch.per_request:
            assert request.overhead == pytest.approx(PROFILE.overhead_s / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_batch_latency(PROFILE, [])
        with pytest.raises(ValueError):
            estimate_batch_latency(PROFILE, [(10, 20, 5)])  # cached > prompt
        with pytest.raises(ValueError):
            estimate_batch_latency(PROFILE, [(10, 0, -1)])


class TestGenMicroBatcher:
    def test_single_lane_passthrough_matches_direct_generate(self):
        direct = _model()
        expected = direct.generate(PROMPT)

        batched = _model()
        batcher = GenMicroBatcher(batched)
        clock = VirtualClock()
        lane = batcher.open_lane(0, clock)
        result = lane.generate(PROMPT)
        batcher.close_lane(0)

        assert result.text == expected.text
        assert result.prompt_tokens == expected.prompt_tokens
        assert result.latency.total == pytest.approx(expected.latency.total)
        assert clock.now == pytest.approx(direct.clock.now)

    def test_two_lanes_coalesce_and_merge_clocks(self):
        model = _model()
        batcher = GenMicroBatcher(model)
        clocks = [VirtualClock(), VirtualClock()]
        lanes = [batcher.open_lane(i, clocks[i]) for i in range(2)]

        results = [None, None]

        def worker(i):
            results[i] = lanes[i].generate(PROMPT)
            batcher.close_lane(i)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert results[0].extras["microbatch_size"] == 2
        assert results[1].extras["microbatch_size"] == 2
        # Both lanes land on the same post-batch time.
        assert clocks[0].now == pytest.approx(clocks[1].now)
        assert batcher.snapshot()["flushes"] == 1

    def test_lane_must_be_open(self):
        batcher = GenMicroBatcher(_model())
        with pytest.raises(RuntimeError):
            batcher.submit(0, PROMPT)

    def test_duplicate_lane_rejected(self):
        batcher = GenMicroBatcher(_model())
        batcher.open_lane(0, VirtualClock())
        with pytest.raises(ValueError):
            batcher.open_lane(0, VirtualClock())

    def test_prepare_error_delivered_to_caller_only(self):
        model = _model()
        batcher = GenMicroBatcher(model)
        lane = batcher.open_lane(0, VirtualClock())
        with pytest.raises(ModelError):
            lane.generate("")
        batcher.close_lane(0)
        assert batcher.snapshot()["pending"] == 0

    def test_max_batch_splits_barrier(self):
        model = _model()
        batcher = GenMicroBatcher(model, max_batch=2)
        clocks = [VirtualClock() for _ in range(4)]
        lanes = [batcher.open_lane(i, clocks[i]) for i in range(4)]
        results = [None] * 4

        def worker(i):
            results[i] = lanes[i].generate(PROMPT)
            batcher.close_lane(i)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert all(r is not None for r in results)
        assert batcher.largest_batch <= 2
        assert batcher.batched_calls == 4

    def test_lane_model_delegates_attributes(self):
        model = _model()
        batcher = GenMicroBatcher(model)
        lane = batcher.open_lane(0, VirtualClock())
        assert lane.profile is model.profile
        assert lane.kv_cache is model.kv_cache
        assert lane.tokenizer is model.tokenizer
