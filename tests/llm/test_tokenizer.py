"""Tests for the deterministic tokenizer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.llm.tokenizer import Tokenizer


class TestTokenizer:
    def test_words_and_punctuation_split(self):
        tokenizer = Tokenizer()
        assert tokenizer.pieces("hello, world!") == ["hello", ",", "world", "!"]

    def test_long_words_chunked(self):
        tokenizer = Tokenizer()
        pieces = tokenizer.pieces("internationalization")
        assert len(pieces) == 5
        assert "".join(pieces) == "internationalization"

    def test_count_matches_encode_length(self):
        tokenizer = Tokenizer()
        text = "Summarize the tweet, please!"
        assert tokenizer.count(text) == len(tokenizer.encode(text))

    def test_encoding_is_deterministic_across_instances(self):
        assert Tokenizer().encode("same text") == Tokenizer().encode("same text")

    def test_shared_prefix_produces_shared_token_prefix(self):
        tokenizer = Tokenizer()
        base = tokenizer.encode("instruction text here.")
        extended = tokenizer.encode("instruction text here. plus more")
        assert extended[: len(base)] == base

    def test_decode_roundtrips_known_pieces(self):
        tokenizer = Tokenizer()
        ids = tokenizer.encode("hello world")
        assert tokenizer.decode(ids) == "hello world"

    def test_decode_unknown_ids(self):
        tokenizer = Tokenizer()
        assert tokenizer.decode([123456789]) == "<unk>"

    def test_empty_text(self):
        tokenizer = Tokenizer()
        assert tokenizer.encode("") == []
        assert tokenizer.count("") == 0


class TestTokenizerProperties:
    @given(st.text(max_size=300))
    def test_count_never_negative_and_stable(self, text):
        tokenizer = Tokenizer()
        count = tokenizer.count(text)
        assert count >= 0
        assert count == tokenizer.count(text)

    @given(st.text(max_size=200), st.text(max_size=200))
    def test_concatenation_token_prefix_property(self, prefix, suffix):
        # Appending text after a newline never changes the prefix tokens.
        tokenizer = Tokenizer()
        base = tokenizer.encode(prefix)
        combined = tokenizer.encode(prefix + "\n" + suffix)
        assert combined[: len(base)] == base

    @given(st.text(min_size=1, max_size=100))
    def test_pieces_cover_non_whitespace(self, text):
        # Every alphanumeric character of the input appears in some piece.
        tokenizer = Tokenizer()
        joined = "".join(tokenizer.pieces(text))
        for char in text:
            if char.isalnum() and char.isascii():
                assert char in joined
