"""Tests for the simulated model's task routing and behaviours."""

import pytest

from repro.llm.features import extract_features
from repro.llm.profiles import get_profile
from repro.llm.tasks import (
    PROMPT_BLOCK_END,
    PROMPT_BLOCK_START,
    TaskEngine,
    route_task,
)


@pytest.fixture
def engine(tweet_corpus, clinical_corpus):
    task_engine = TaskEngine(get_profile("qwen2.5-7b-instruct"))
    task_engine.bind_tweets(tweet_corpus)
    task_engine.bind_clinical(clinical_corpus)
    return task_engine


def _route(text):
    return route_task(text, extract_features(text))


class TestRouting:
    def test_summarize(self):
        assert _route("Summarize the tweet below.") == "summarize"

    def test_classify(self):
        assert _route("Select the tweet only if its sentiment is negative.") == "classify"

    def test_fused(self):
        text = "Summarize the tweet, then select it if the sentiment is negative."
        assert _route(text) == "fused"

    def test_rewrite(self):
        assert _route("Improve the prompt below so it works better.") == "rewrite"

    def test_qa(self):
        assert _route("Highlight any use of Enoxaparin in the notes.") == "qa"

    def test_freeform_fallback(self):
        assert _route("tell me something nice") == "freeform"


class TestSummarize:
    def test_grounded_summary_uses_clean_text(self, engine, tweet_corpus):
        tweet = tweet_corpus[0]
        output = engine.run(
            f"Summarize and clean up the tweet in at most 30 words.\nTweet:\n{tweet.text}"
        )
        assert output.task == "summarize"
        assert tweet.clean_text in output.text or output.extras["degraded"]
        assert output.extras["item_uid"] == tweet.uid

    def test_ungrounded_input_rule_based_cleanup(self, engine):
        output = engine.run(
            "Summarize and clean up the tweet.\n@someone check http://t.co/xyz this #wow"
        )
        assert "@" not in output.text
        assert "http" not in output.text


class TestClassify:
    def test_predicate_from_instructions_not_item(self, engine, tweet_corpus):
        # A school-topic tweet must not turn a negativity filter into a
        # school filter.
        tweet = next(
            t for t in tweet_corpus if t.school_related and not t.is_negative
        )
        output = engine.run(
            "Select the tweet only if its sentiment is negative. Respond "
            f"with yes or no.\nTweet:\n{tweet.text}"
        )
        assert output.extras["criteria"] == {"negative": True, "school": False}

    def test_decisions_deterministic(self, engine, tweet_corpus):
        prompt = (
            "Select the tweet only if its sentiment is negative. Respond "
            f"with yes or no.\nTweet:\n{tweet_corpus[0].text}"
        )
        assert engine.run(prompt).extras["decision"] == engine.run(prompt).extras["decision"]

    def test_majority_of_decisions_correct(self, engine, tweet_corpus):
        correct = 0
        for tweet in tweet_corpus:
            output = engine.run(
                "Select the tweet only if its sentiment is negative. Respond "
                f"with yes or no.\nTweet:\n{tweet.text}"
            )
            correct += output.extras["decision"] == tweet.is_negative
        assert correct / len(tweet_corpus) > 0.7


class TestFused:
    def test_map_filter_order_always_summarizes(self, engine, tweet_corpus):
        tweet = tweet_corpus[0]
        output = engine.run(
            "Step 1 (map): Summarize and clean up the tweet.\n"
            "Step 2 (filter): Select it only if the sentiment is negative.\n"
            f"Respond with Label and Summary.\nTweet:\n{tweet.text}"
        )
        assert output.extras["order"] == "map_filter"
        assert output.extras["summary"] is not None

    def test_filter_map_skips_summary_for_dropped(self, engine, tweet_corpus):
        dropped = [
            engine.run(
                "Step 1 (filter): Select the tweet only if the sentiment is negative.\n"
                "Step 2 (map): Summarize and clean it. Only produce the summary "
                "when the label is yes; otherwise write N/A.\n"
                f"Tweet:\n{tweet.text}"
            )
            for tweet in tweet_corpus
        ]
        no_summary = [o for o in dropped if not o.extras["decision"]]
        assert no_summary
        assert all("N/A" in o.text for o in no_summary)


class TestQa:
    def test_answers_for_enoxaparin_patient(self, engine, clinical_corpus):
        patient = next(p for p in clinical_corpus if p.on_enoxaparin)
        notes = "\n".join(note.text for note in patient.notes)
        output = engine.run(
            "Summarize the patient's medication history and highlight any "
            f"use of Enoxaparin. Be specific about dosage.\nNotes:\n{notes}"
        )
        assert output.extras["fields"]["administered"] is True
        assert "dosage" in output.extras["fields"]

    def test_negative_patient_reports_no_use(self, engine, clinical_corpus):
        patient = next(p for p in clinical_corpus if not p.on_enoxaparin)
        notes = "\n".join(note.text for note in patient.notes)
        output = engine.run(
            f"Highlight any use of Enoxaparin.\nNotes:\n{notes}"
        )
        assert output.extras["fields"]["administered"] is False
        assert "no Enoxaparin" in output.text

    def test_missing_orders_lower_confidence(self, engine, clinical_corpus):
        patient = next(p for p in clinical_corpus if p.on_enoxaparin)
        notes = "\n".join(note.text for note in patient.notes)
        base_prompt = (
            "Highlight any use of Enoxaparin. Be specific about dosage and "
            f"timing.\nNotes:\n{notes}"
        )
        without_orders = engine.run(base_prompt)
        with_orders = engine.run(
            base_prompt + "\nORDER: enoxaparin 40 mg daily"
        )
        assert with_orders.confidence > without_orders.confidence

    def test_no_patient_in_prompt(self, engine):
        output = engine.run("Highlight any use of Enoxaparin.\nNotes:\nnothing")
        assert output.confidence <= 0.2


class TestRewrite:
    def test_agentic_rewrite_without_prompt_block(self, engine):
        output = engine.run(
            "Write a prompt for this task.\nObjective: select negative school tweets"
        )
        assert output.extras["mode"] == "agentic"
        assert "{tweet}" in output.text

    def test_assisted_rewrite_preserves_original_and_hint(self, engine):
        original = "### Task\nSelect negative tweets.\nRespond with yes or no."
        output = engine.run(
            "Improve the prompt below.\n"
            f"{PROMPT_BLOCK_START}\n{original}\n{PROMPT_BLOCK_END}\n"
            "Refinement hint: school-related content"
        )
        assert output.extras["mode"] == "assisted"
        assert "school-related content" in output.text
        assert "Select negative tweets." in output.text

    def test_auto_rewrite_appends_only(self, engine):
        original = "### Task\nSelect negative tweets."
        output = engine.run(
            "Improve the prompt below.\n"
            f"{PROMPT_BLOCK_START}\n{original}\n{PROMPT_BLOCK_END}\n"
            "Objective: school negativity"
        )
        assert output.extras["mode"] == "auto"
        assert output.text.startswith(original)
        assert "criteria" in output.text.lower()


class TestSections:
    """The sectioned multi-task behaviour that GEN fusion relies on."""

    def test_routed_when_marker_present(self):
        from repro.llm.tasks import SECTION_MARKER

        text = f"shared header\n{SECTION_MARKER} 1:\nSummarize the tweet."
        assert _route(text) == "sections"

    def test_each_section_answered_independently(self, engine, tweet_corpus):
        from repro.llm.tasks import SECTION_MARKER

        tweet = tweet_corpus[0]
        prompt = (
            f"You are given one tweet.\nTweet:\n{tweet.text}\n"
            f"{SECTION_MARKER} 1:\nSummarize and clean up the tweet.\n"
            f"{SECTION_MARKER} 2:\nSelect the tweet only if its sentiment is "
            "negative. Respond with yes or no."
        )
        output = engine.run(prompt)
        assert output.task == "sections"
        sections = output.extras["sections"]
        assert len(sections) == 2
        assert output.extras["section_tasks"] == ["summarize", "classify"]
        assert "Label:" in sections[1]

    def test_combined_text_reemits_markers(self, engine, tweet_corpus):
        from repro.llm.tasks import SECTION_MARKER

        tweet = tweet_corpus[0]
        prompt = (
            f"Tweet:\n{tweet.text}\n"
            f"{SECTION_MARKER} 1:\nSummarize the tweet.\n"
            f"{SECTION_MARKER} 2:\nClassify the sentiment. Respond with yes or no."
        )
        output = engine.run(prompt)
        assert output.text.count(SECTION_MARKER) == 2

    def test_confidence_is_worst_section(self, engine, tweet_corpus):
        from repro.llm.tasks import SECTION_MARKER

        tweet = tweet_corpus[0]
        prompt = (
            f"Tweet:\n{tweet.text}\n"
            f"{SECTION_MARKER} 1:\nSummarize the tweet.\n"
            f"{SECTION_MARKER} 2:\nClassify the sentiment. Respond with yes or no."
        )
        output = engine.run(prompt)
        assert output.confidence == min(output.extras["section_confidences"])


class TestQaEvidenceRequirement:
    """A value is only extractable when its evidence is in the context."""

    def test_field_reported_when_evidence_present(self, engine, clinical_corpus):
        patient = next(p for p in clinical_corpus if p.on_enoxaparin)
        notes = "\n".join(note.text for note in patient.notes)
        output = engine.run(
            f"Highlight any use of Enoxaparin; be specific about dosage.\nNotes:\n{notes}"
        )
        assert output.extras["fields"]["dosage"] in (patient.dosage, "(uncertain)")

    def test_field_unextractable_without_evidence(self, engine, clinical_corpus):
        patient = next(p for p in clinical_corpus if p.on_enoxaparin)
        # Supply only a note that names the patient but not the dosage.
        lab_only = f"LAB: D-dimer = 1.0 for patient {patient.patient_id}"
        output = engine.run(
            "Highlight any use of Enoxaparin; be specific about dosage.\n"
            f"Notes:\n{lab_only}"
        )
        assert output.extras["fields"].get("dosage") is None
        assert "not found in the provided notes" in output.text
