"""Tests for model profiles and their validation."""

from dataclasses import replace

import pytest

from repro.errors import ModelError
from repro.llm.profiles import DEFAULT_PROFILE, PROFILES, ModelProfile, get_profile


class TestRegistry:
    def test_three_paper_backends_registered(self):
        assert set(PROFILES) == {
            "qwen2.5-7b-instruct",
            "mistral-7b-instruct",
            "gpt-4o-mini",
        }

    def test_default_profile_exists(self):
        assert DEFAULT_PROFILE in PROFILES

    def test_get_profile_unknown_raises_with_listing(self):
        with pytest.raises(ModelError) as excinfo:
            get_profile("claude-3")
        assert "qwen2.5-7b-instruct" in str(excinfo.value)

    def test_profiles_are_frozen(self):
        with pytest.raises(AttributeError):
            get_profile(DEFAULT_PROFILE).overhead_s = 0.0  # type: ignore[misc]


class TestValidation:
    def _base(self, **overrides) -> ModelProfile:
        fields = dict(
            name="test",
            overhead_s=0.1,
            prefill_s_per_token=0.001,
            cached_prefill_s_per_token=0.0001,
            decode_s_per_token=0.01,
            base_error=0.3,
            min_error=0.05,
        )
        fields.update(overrides)
        return ModelProfile(**fields)

    def test_valid_profile_constructs(self):
        assert self._base().name == "test"

    def test_base_error_bounds(self):
        with pytest.raises(ModelError):
            self._base(base_error=0.0)
        with pytest.raises(ModelError):
            self._base(base_error=1.0)

    def test_min_error_cannot_exceed_base(self):
        with pytest.raises(ModelError):
            self._base(min_error=0.5, base_error=0.3)

    def test_replace_revalidates(self):
        profile = get_profile(DEFAULT_PROFILE)
        with pytest.raises(ModelError):
            replace(profile, base_error=2.0)


class TestPhysicalPlausibility:
    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_cached_prefill_cheaper_than_uncached(self, name):
        profile = get_profile(name)
        assert profile.cached_prefill_s_per_token < profile.prefill_s_per_token

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_fusion_penalties_are_penalties(self, name):
        profile = get_profile(name)
        assert profile.fusion_penalty_map_filter > 1.0
        assert profile.fusion_penalty_filter_map > 1.0
        # Map->Filter interference exceeds Filter->Map (paper's 4-8 vs 0.3-6pp).
        assert profile.fusion_penalty_map_filter > profile.fusion_penalty_filter_map

    @pytest.mark.parametrize("name", sorted(PROFILES))
    def test_context_window_positive(self, name):
        assert get_profile(name).context_window > 1000
