"""Tests for the radix-tree prefix cache and its chain-cache parity.

Covers the drop-in contract (same semantics as ``BlockPrefixCache`` on
the no-eviction path), the structural fix (leaf-first eviction cannot
strand orphaned descendants), pinning, and property-based parity:
call-for-call the radix cache serves at least the chain cache's tokens.
"""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.kv_cache import BlockPrefixCache
from repro.llm.radix_cache import RadixPrefixCache, shared_prefix_tokens

tokens_strategy = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), max_size=120
)
workload_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=255), max_size=40),
    max_size=12,
)


class TestSharedPrefixTokens:
    def test_identical_sequences(self):
        assert shared_prefix_tokens([1, 2, 3, 4], [1, 2, 3, 4], 4) == 4

    def test_divergence_at_start(self):
        assert shared_prefix_tokens([9, 2, 3, 4], [1, 2, 3, 4], 4) == 0

    def test_partial_block_not_counted(self):
        # 6 shared tokens but only one complete 4-token block.
        assert shared_prefix_tokens(list(range(6)), list(range(6)), 4) == 4

    def test_mid_block_divergence_rounds_down(self):
        a = [1, 2, 3, 4, 5, 6, 7, 8]
        b = [1, 2, 3, 4, 5, 99, 7, 8]
        assert shared_prefix_tokens(a, b, 4) == 4

    def test_block_size_validated(self):
        with pytest.raises(ValueError):
            shared_prefix_tokens([1], [1], 0)


class TestRadixContract:
    """The BlockPrefixCache behaviours, verbatim, on the radix tier."""

    def test_cold_lookup_misses(self):
        cache = RadixPrefixCache(block_size=4)
        assert cache.match_prefix(list(range(8))) == 0
        assert cache.stats.cached_tokens == 0

    def test_exact_repeat_hits_all_complete_blocks(self):
        cache = RadixPrefixCache(block_size=4)
        tokens = list(range(10))  # 2 complete blocks + 2 spare tokens
        cache.lookup_and_insert(tokens)
        assert cache.lookup_and_insert(tokens) == 8

    def test_shared_prefix_partial_hit(self):
        cache = RadixPrefixCache(block_size=4)
        cache.insert(list(range(12)))
        probe = list(range(8)) + [99, 98, 97, 96]
        assert cache.match_prefix(probe) == 8

    def test_no_mid_sequence_reuse(self):
        cache = RadixPrefixCache(block_size=4)
        cache.insert([1, 2, 3, 4, 5, 6, 7, 8])
        assert cache.match_prefix([5, 6, 7, 8]) == 0

    def test_branch_point_shares_trunk(self):
        cache = RadixPrefixCache(block_size=4)
        trunk = list(range(8))
        cache.insert(trunk + [10, 11, 12, 13])
        cache.insert(trunk + [20, 21, 22, 23])
        # 2 trunk blocks stored once + 2 divergent leaves.
        assert len(cache) == 4
        assert cache.match_prefix(trunk + [20, 21, 22, 23]) == 12

    def test_hit_rate_accounting(self):
        cache = RadixPrefixCache(block_size=4)
        tokens = list(range(8))
        cache.lookup_and_insert(tokens)
        cache.lookup_and_insert(tokens)
        assert cache.stats.prompt_tokens == 16
        assert cache.stats.cached_tokens == 8
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_short_sequences_never_cached(self):
        cache = RadixPrefixCache(block_size=16)
        cache.lookup_and_insert(list(range(10)))
        assert cache.lookup_and_insert(list(range(10))) == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RadixPrefixCache(block_size=0)
        with pytest.raises(ValueError):
            RadixPrefixCache(capacity_blocks=0)

    def test_clear_resets(self):
        cache = RadixPrefixCache(block_size=4)
        cache.lookup_and_insert(list(range(8)))
        cache.pin(list(range(8)))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0
        assert cache.snapshot()["pinned_blocks"] == 0

    def test_snapshot_superset_of_chain_keys(self):
        chain = BlockPrefixCache(block_size=4)
        radix = RadixPrefixCache(block_size=4)
        chain.lookup_and_insert(list(range(8)))
        radix.lookup_and_insert(list(range(8)))
        chain_snap, radix_snap = chain.snapshot(), radix.snapshot()
        assert set(chain_snap) <= set(radix_snap)
        for key in chain_snap:
            assert radix_snap[key] == chain_snap[key]
        assert radix_snap["leaves"] == 1
        assert radix_snap["nodes"] == 2


class TestEviction:
    def test_leaf_first_lru_eviction(self):
        cache = RadixPrefixCache(block_size=4, capacity_blocks=2)
        cache.insert([1, 2, 3, 4])          # block A
        cache.insert([5, 6, 7, 8])          # block B
        cache.insert([9, 10, 11, 12])       # block C -> evicts A
        assert cache.stats.evictions == 1
        assert cache.match_prefix([1, 2, 3, 4]) == 0
        assert cache.match_prefix([9, 10, 11, 12]) == 4

    def test_recency_updated_on_hit(self):
        cache = RadixPrefixCache(block_size=4, capacity_blocks=2)
        cache.insert([1, 2, 3, 4])
        cache.insert([5, 6, 7, 8])
        cache.match_prefix([1, 2, 3, 4])    # A is now most recent
        cache.insert([9, 10, 11, 12])       # evicts B
        assert cache.match_prefix([1, 2, 3, 4]) == 4
        assert cache.match_prefix([5, 6, 7, 8]) == 0

    def test_chain_strands_orphaned_descendants_radix_does_not(self):
        """Regression for the chain cache's orphaned-descendant waste.

        Two 3-block chains at capacity 4: the chain cache evicts the two
        globally-coldest hashes — chain A's *first two* blocks — which
        strands A's third block: resident (it still counts against
        capacity) but unreachable, because a prefix walk stops at the
        first missing block.  The radix tree evicts leaf-first, so every
        resident block stays reachable from the root by construction.
        """
        a = list(range(12))                  # blocks a1 a2 a3
        b = list(range(100, 112))            # blocks b1 b2 b3
        reachable = lambda c: (c.match_prefix(a) + c.match_prefix(b)) // 4

        chain = BlockPrefixCache(block_size=4, capacity_blocks=4)
        chain.insert(a)
        chain.insert(b)                      # evicts a1, a2; a3 stranded
        assert len(chain) == 4               # resident-block accounting...
        assert chain.match_prefix(a) == 0    # ...but A's trunk is gone
        assert reachable(chain) == 3         # one resident block is waste

        radix = RadixPrefixCache(block_size=4, capacity_blocks=4)
        radix.insert(a)
        radix.insert(b)                      # evicts leaves a3, then a2
        assert len(radix) == 4
        assert radix.match_prefix(a) == 4    # a1 survives and still hits
        assert reachable(radix) == 4         # every resident block usable

    def test_all_leaves_pinned_overflows_instead_of_breaking_pins(self):
        cache = RadixPrefixCache(block_size=4, capacity_blocks=4)
        cache.insert(list(range(8)))         # a1 a2
        handle = cache.pin(list(range(8)))
        # Shrink capacity under the pinned trunk (white-box: the same
        # state the scheduler's pin window produces under extreme
        # pressure) and force an eviction pass.
        cache.capacity_blocks = 1
        cache.insert(list(range(50, 54)))    # new leaf is evictable...
        assert len(cache) == 2               # ...pinned trunk is not
        assert cache.match_prefix(list(range(8))) == 8
        cache.unpin(handle)                  # release -> evicts to fit
        assert len(cache) == 1


class TestPinning:
    def test_pin_protects_cold_trunk_under_pressure(self):
        cache = RadixPrefixCache(block_size=4, capacity_blocks=3)
        trunk = list(range(8))
        cache.insert(trunk)
        handle = cache.pin(trunk)
        for base in range(10):               # flood with one-block chains
            cache.insert([1000 + 4 * base + i for i in range(4)])
        assert cache.match_prefix(trunk) == 8
        cache.unpin(handle)
        cache.insert([2000, 2001, 2002, 2003])
        cache.insert([3000, 3001, 3002, 3003])
        assert cache.match_prefix(trunk) < 8  # evictable again

    def test_pin_counts_and_unpin_releases(self):
        cache = RadixPrefixCache(block_size=4)
        tokens = list(range(8))
        cache.insert(tokens)
        first = cache.pin(tokens)
        second = cache.pin(tokens)
        assert cache.snapshot()["pinned_blocks"] == 2
        cache.unpin(first)
        assert cache.snapshot()["pinned_blocks"] == 2  # refcounted
        cache.unpin(second)
        assert cache.snapshot()["pinned_blocks"] == 0

    def test_pin_nonresident_is_empty_and_unpin_noop(self):
        cache = RadixPrefixCache(block_size=4)
        handle = cache.pin(list(range(8)))
        assert handle == ()
        cache.unpin(handle)  # no-op, no raise

    def test_unpin_over_release_raises(self):
        cache = RadixPrefixCache(block_size=4)
        cache.insert(list(range(4)))
        handle = cache.pin(list(range(4)))
        cache.unpin(handle)
        with pytest.raises(ValueError):
            cache.unpin(handle)


class TestRadixProperties:
    @settings(max_examples=60)
    @given(tokens_strategy)
    def test_match_never_exceeds_length_and_is_block_aligned(self, tokens):
        cache = RadixPrefixCache(block_size=8)
        cache.insert(tokens)
        matched = cache.match_prefix(tokens)
        assert 0 <= matched <= len(tokens)
        assert matched % 8 == 0

    @settings(max_examples=60)
    @given(tokens_strategy, tokens_strategy)
    def test_inserting_more_never_reduces_match(self, tokens, extra):
        cache = RadixPrefixCache(block_size=8)
        cache.insert(tokens)
        before = cache.match_prefix(tokens)
        cache.insert(tokens + extra)
        after = cache.match_prefix(tokens)
        assert after >= before

    @settings(max_examples=60)
    @given(tokens_strategy)
    def test_repeat_insert_idempotent(self, tokens):
        cache = RadixPrefixCache(block_size=8)
        first = cache.insert(tokens)
        second = cache.insert(tokens)
        assert second == 0 or first == 0

    @settings(max_examples=80)
    @given(workload_strategy)
    def test_radix_serves_at_least_chain_tokens_call_for_call(self, workload):
        """Same insert history, ample capacity: identical accounting.

        This is the drop-in guarantee behind swapping the model's default
        cache tier — Table 3's hit-rate column cannot move on the
        no-eviction path.
        """
        chain = BlockPrefixCache(block_size=4)
        radix = RadixPrefixCache(block_size=4)
        for tokens in workload:
            chain_served = chain.lookup_and_insert(tokens)
            radix_served = radix.lookup_and_insert(tokens)
            assert radix_served >= chain_served
            assert radix_served == chain_served  # no eviction => parity
        assert radix.stats == chain.stats

    @settings(max_examples=80)
    @given(workload_strategy)
    def test_stats_conservation_per_walk(self, workload):
        """Every walk books hits+misses consistently with its return."""
        cache = RadixPrefixCache(block_size=4, capacity_blocks=8)
        for tokens in workload:
            before_hits = cache.stats.block_hits
            before_misses = cache.stats.block_misses
            before_lookups = cache.stats.lookups
            served = cache.lookup_and_insert(tokens)
            complete = len(tokens) // 4
            hits = cache.stats.block_hits - before_hits
            misses = cache.stats.block_misses - before_misses
            assert cache.stats.lookups == before_lookups + 1
            assert served == hits * 4
            assert misses == (1 if hits < complete else 0)
        assert cache.stats.cached_tokens == cache.stats.block_hits * 4

    @settings(max_examples=40)
    @given(workload_strategy)
    def test_resident_blocks_always_reachable(self, workload):
        """The no-orphans invariant under arbitrary eviction pressure."""
        cache = RadixPrefixCache(block_size=4, capacity_blocks=6)
        inserted: list[list[int]] = []
        for tokens in workload:
            cache.insert(tokens)
            inserted.append(list(tokens))
        reachable = set()

        def walk(node, path):
            for block, child in node.children.items():
                reachable.add(id(child))
                walk(child, path + [block])

        walk(cache._root, [])
        assert len(reachable) == len(cache)
