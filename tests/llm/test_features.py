"""Tests for prompt feature extraction."""

from repro.llm.features import PromptFeatures, extract_features


class TestExtraction:
    def test_bare_text_has_no_features(self):
        features = extract_features("the weather today")
        assert not features.has_instruction
        assert features.criteria_count == 0
        assert features.task_count == 0

    def test_instruction_verbs_detected(self):
        assert extract_features("Classify the text.").has_instruction
        assert extract_features("Please summarize this.").has_instruction

    def test_sentiment_terms(self):
        assert extract_features("is the sentiment negative?").has_sentiment_terms
        assert not extract_features("is it raining?").has_sentiment_terms

    def test_focus_hint(self):
        assert extract_features("Focus on dosage.").has_focus_hint
        assert extract_features("Pay attention to timing.").has_focus_hint

    def test_adaptive_hint(self):
        assert extract_features("Hint: mind sarcasm.").has_adaptive_hint
        assert not extract_features("no hints here").has_adaptive_hint

    def test_examples(self):
        assert extract_features("Example: 'x' -> yes").has_examples
        assert extract_features("for example, this").has_examples

    def test_output_format(self):
        assert extract_features("Respond with yes or no.").has_output_format

    def test_word_limit(self):
        assert extract_features("in at most 30 words").has_word_limit
        assert extract_features("no more than 10 words").has_word_limit
        assert not extract_features("many words here").has_word_limit

    def test_reasoning(self):
        assert extract_features("think step by step").has_reasoning

    def test_guidance_section(self):
        assert extract_features("General guidance:\n- be careful").has_guidance

    def test_criteria_counted_only_after_marker(self):
        text = (
            "General guidance:\n- generic bullet one\n- generic bullet two\n"
            "Use these criteria:\n- criterion one\n- criterion two\n- criterion three"
        )
        features = extract_features(text)
        assert features.criteria_count == 3

    def test_criteria_capped_at_six(self):
        bullets = "\n".join(f"- c{i}" for i in range(10))
        features = extract_features(f"criteria:\n{bullets}")
        assert features.criteria_count == 6

    def test_view_structure_marker(self):
        assert extract_features("### Task\ndo things").has_view_structure

    def test_task_count_groups_synonyms(self):
        # summarize + clean are one stage; select is another.
        features = extract_features("Summarize and clean the text, then select it.")
        assert features.task_count == 2

    def test_hint_terms_sorted(self):
        features = extract_features("school exams and homework")
        assert features.hint_terms == ("exam", "homework", "school")

    def test_word_count(self):
        assert extract_features("one two three").word_count == 3


class TestFingerprint:
    def test_same_features_same_fingerprint(self):
        text_1 = "Classify the tweet. Respond with yes or no."
        assert (
            extract_features(text_1).fingerprint()
            == extract_features(text_1).fingerprint()
        )

    def test_different_features_differ(self):
        fingerprint_1 = extract_features("Classify this.").fingerprint()
        fingerprint_2 = extract_features("Classify this. Example: x").fingerprint()
        assert fingerprint_1 != fingerprint_2

    def test_fingerprint_is_feature_level_not_text_level(self):
        # Two texts with identical features share a fingerprint even when
        # the raw strings differ (word_count kept equal).
        features_1 = PromptFeatures(has_instruction=True, word_count=5)
        features_2 = PromptFeatures(has_instruction=True, word_count=5)
        assert features_1.fingerprint() == features_2.fingerprint()
