"""Tests for context packing under a token budget."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.packing import Fragment, pack_fragments
from repro.llm.tokenizer import Tokenizer

TOKENIZER = Tokenizer()


def _fragment(words: int, priority: int = 0, name: str = "") -> Fragment:
    return Fragment(text=" ".join(f"w{i}" for i in range(words)), priority=priority, name=name)


class TestPackFragments:
    def test_everything_fits(self):
        result = pack_fragments(
            [_fragment(5, name="a"), _fragment(5, name="b")], budget_tokens=50
        )
        assert result.kept == ("a", "b")
        assert result.dropped == ()
        assert result.truncated is None
        assert result.tokens_used <= 50

    def test_priority_wins_over_order(self):
        low = _fragment(8, priority=0, name="low")
        high = _fragment(8, priority=5, name="high")
        result = pack_fragments([low, high], budget_tokens=9)
        assert "high" in result.kept
        assert result.truncated in (None, "low")

    def test_original_order_preserved_in_text(self):
        first = Fragment("alpha text", priority=0, name="first")
        second = Fragment("beta text", priority=9, name="second")
        result = pack_fragments([first, second], budget_tokens=100)
        assert result.text.index("alpha") < result.text.index("beta")

    def test_truncation_uses_remaining_budget(self):
        result = pack_fragments(
            [_fragment(4, name="keep"), _fragment(50, name="cut")],
            budget_tokens=10,
        )
        assert result.truncated == "cut"
        assert result.tokens_used <= 10

    def test_truncation_disabled_drops_instead(self):
        result = pack_fragments(
            [_fragment(4, name="keep"), _fragment(50, name="gone")],
            budget_tokens=10,
            allow_truncation=False,
        )
        assert result.kept == ("keep",)
        assert result.dropped == ("gone",)

    def test_zero_budget(self):
        result = pack_fragments([_fragment(5, name="a")], budget_tokens=0)
        assert result.text == ""
        assert result.dropped == ("a",)
        assert result.utilization == 0.0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            pack_fragments([], budget_tokens=-1)

    def test_empty_fragments(self):
        result = pack_fragments([], budget_tokens=10)
        assert result.text == ""
        assert result.kept == ()
        assert result.utilization == 0.0

    def test_single_fragment_larger_than_window(self):
        result = pack_fragments([_fragment(200, name="huge")], budget_tokens=16)
        # The oversized fragment is truncated into the window, not dropped.
        assert result.truncated == "huge"
        assert result.tokens_used <= 16
        assert 0.0 < result.utilization <= 1.0

    def test_single_oversized_fragment_without_truncation(self):
        result = pack_fragments(
            [_fragment(200, name="huge")], budget_tokens=16,
            allow_truncation=False,
        )
        assert result.kept == ()
        assert result.dropped == ("huge",)
        assert result.text == ""
        assert result.utilization == 0.0

    def test_utilization_bounds(self):
        # Full budget use stays capped at exactly 1.0.
        exact = pack_fragments([_fragment(50, name="big")], budget_tokens=10)
        assert 0.0 <= exact.utilization <= 1.0
        # Partial use is strictly between the bounds.
        partial = pack_fragments([_fragment(3, name="small")], budget_tokens=100)
        assert 0.0 < partial.utilization < 1.0

    def test_packed_prompt_fits_model_window(self, clinical_corpus):
        from dataclasses import replace

        from repro.llm import SimulatedLLM, get_profile

        tiny = replace(get_profile("qwen2.5-7b-instruct"), context_window=120)
        model = SimulatedLLM(tiny)
        model.bind_clinical(clinical_corpus)
        patient = clinical_corpus.patients[0]
        fragments = [
            Fragment(note.text, priority=1, name=note.note_id)
            for note in patient.notes
        ] + [
            Fragment(f"LAB: {lab.test} = {lab.value}", priority=0, name=lab.lab_id)
            for lab in patient.labs
        ]
        instruction = "Highlight any use of Enoxaparin.\nNotes:\n"
        budget = tiny.context_window - TOKENIZER.count(instruction) - 5
        packed = pack_fragments(fragments, budget)
        # The packed prompt must generate without a window error.
        result = model.generate(instruction + packed.text)
        assert result.prompt_tokens <= tiny.context_window


class TestPackingProperties:
    @settings(max_examples=60)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=30),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=8,
        ),
        st.integers(min_value=0, max_value=120),
    )
    def test_never_exceeds_budget(self, specs, budget):
        fragments = [
            _fragment(words, priority, name=f"f{i}")
            for i, (words, priority) in enumerate(specs)
        ]
        result = pack_fragments(fragments, budget)
        assert result.tokens_used <= budget
        assert set(result.kept) | set(result.dropped) == {
            f"f{i}" for i in range(len(specs))
        }
        assert not (set(result.kept) & set(result.dropped))
