"""Tests for the structured prompt cache (view/params/version indexed)."""

import pytest

from repro.llm.prompt_cache import StructuredPromptCache, param_hash


class TestParamHash:
    def test_stable_and_order_independent(self):
        assert param_hash({"a": 1, "b": 2}) == param_hash({"b": 2, "a": 1})

    def test_distinguishes_values(self):
        assert param_hash({"a": 1}) != param_hash({"a": 2})

    def test_unserializable_values_fall_back_to_repr(self):
        class Odd:
            def __repr__(self):
                return "Odd()"

        assert isinstance(param_hash({"a": Odd()}), int)


class TestStructuredPromptCache:
    def test_miss_then_hit(self):
        cache = StructuredPromptCache()
        key = cache.key("med_summary", {"drug": "X"})
        assert cache.get(key) is None
        cache.put(key, "rendered")
        assert cache.get(key) == "rendered"
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_version_separates_entries(self):
        cache = StructuredPromptCache()
        cache.put(cache.key("v", {}, version=0), "old")
        assert cache.get(cache.key("v", {}, version=1)) is None

    def test_params_separate_entries(self):
        cache = StructuredPromptCache()
        cache.put(cache.key("v", {"drug": "X"}), "x")
        cache.put(cache.key("v", {"drug": "Y"}), "y")
        assert cache.get(cache.key("v", {"drug": "X"})) == "x"
        assert cache.get(cache.key("v", {"drug": "Y"})) == "y"

    def test_lru_eviction(self):
        cache = StructuredPromptCache(capacity=2)
        key_a = cache.key("a", {})
        key_b = cache.key("b", {})
        key_c = cache.key("c", {})
        cache.put(key_a, "a")
        cache.put(key_b, "b")
        cache.get(key_a)  # refresh A
        cache.put(key_c, "c")  # evicts B
        assert cache.get(key_b) is None
        assert cache.get(key_a) == "a"

    def test_invalidate_view(self):
        cache = StructuredPromptCache()
        cache.put(cache.key("keep", {}), "k")
        cache.put(cache.key("drop", {"p": 1}), "d1")
        cache.put(cache.key("drop", {"p": 2}), "d2")
        assert cache.invalidate_view("drop") == 2
        assert len(cache) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            StructuredPromptCache(capacity=0)

    def test_clear(self):
        cache = StructuredPromptCache()
        cache.put(cache.key("a", {}), "a")
        cache.get(cache.key("a", {}))
        cache.clear()
        assert len(cache) == 0
        assert cache.hit_rate == 0.0
