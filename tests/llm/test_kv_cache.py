"""Tests for the vLLM-style block prefix cache."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.kv_cache import BlockPrefixCache

tokens_strategy = st.lists(
    st.integers(min_value=0, max_value=2**32 - 1), max_size=120
)


class TestBlockPrefixCache:
    def test_cold_lookup_misses(self):
        cache = BlockPrefixCache(block_size=4)
        assert cache.match_prefix(list(range(8))) == 0
        assert cache.stats.cached_tokens == 0

    def test_exact_repeat_hits_all_complete_blocks(self):
        cache = BlockPrefixCache(block_size=4)
        tokens = list(range(10))  # 2 complete blocks + 2 spare tokens
        cache.lookup_and_insert(tokens)
        assert cache.lookup_and_insert(tokens) == 8

    def test_shared_prefix_partial_hit(self):
        cache = BlockPrefixCache(block_size=4)
        cache.insert(list(range(12)))
        # Same first 8 tokens, diverging afterwards.
        probe = list(range(8)) + [99, 98, 97, 96]
        assert cache.match_prefix(probe) == 8

    def test_divergence_at_start_means_no_hit(self):
        cache = BlockPrefixCache(block_size=4)
        cache.insert(list(range(12)))
        probe = [99] + list(range(1, 12))
        assert cache.match_prefix(probe) == 0

    def test_chain_hash_prevents_mid_sequence_reuse(self):
        # A block is reusable only when its whole prefix matches (vLLM's
        # hash-chain property): the same 4 tokens at a different offset
        # must not hit.
        cache = BlockPrefixCache(block_size=4)
        cache.insert([1, 2, 3, 4, 5, 6, 7, 8])
        assert cache.match_prefix([5, 6, 7, 8]) == 0

    def test_lru_eviction(self):
        cache = BlockPrefixCache(block_size=4, capacity_blocks=2)
        cache.insert([1, 2, 3, 4])          # block A
        cache.insert([5, 6, 7, 8])          # block B
        cache.insert([9, 10, 11, 12])       # block C -> evicts A
        assert cache.stats.evictions == 1
        assert cache.match_prefix([1, 2, 3, 4]) == 0
        assert cache.match_prefix([9, 10, 11, 12]) == 4

    def test_recency_updated_on_hit(self):
        cache = BlockPrefixCache(block_size=4, capacity_blocks=2)
        cache.insert([1, 2, 3, 4])
        cache.insert([5, 6, 7, 8])
        cache.match_prefix([1, 2, 3, 4])    # A is now most recent
        cache.insert([9, 10, 11, 12])       # evicts B
        assert cache.match_prefix([1, 2, 3, 4]) == 4
        assert cache.match_prefix([5, 6, 7, 8]) == 0

    def test_hit_rate_accounting(self):
        cache = BlockPrefixCache(block_size=4)
        tokens = list(range(8))
        cache.lookup_and_insert(tokens)
        cache.lookup_and_insert(tokens)
        assert cache.stats.prompt_tokens == 16
        assert cache.stats.cached_tokens == 8
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_clear_resets(self):
        cache = BlockPrefixCache(block_size=4)
        cache.lookup_and_insert(list(range(8)))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BlockPrefixCache(block_size=0)
        with pytest.raises(ValueError):
            BlockPrefixCache(capacity_blocks=0)

    def test_short_sequences_never_cached(self):
        cache = BlockPrefixCache(block_size=16)
        cache.lookup_and_insert(list(range(10)))
        assert cache.lookup_and_insert(list(range(10))) == 0


class TestCacheProperties:
    @settings(max_examples=60)
    @given(tokens_strategy)
    def test_match_never_exceeds_length_and_is_block_aligned(self, tokens):
        cache = BlockPrefixCache(block_size=8)
        cache.insert(tokens)
        matched = cache.match_prefix(tokens)
        assert 0 <= matched <= len(tokens)
        assert matched % 8 == 0

    @settings(max_examples=60)
    @given(tokens_strategy, tokens_strategy)
    def test_inserting_more_never_reduces_match(self, tokens, extra):
        cache = BlockPrefixCache(block_size=8)
        cache.insert(tokens)
        before = cache.match_prefix(tokens)
        cache.insert(tokens + extra)
        after = cache.match_prefix(tokens)
        assert after >= before

    @settings(max_examples=60)
    @given(tokens_strategy)
    def test_repeat_insert_idempotent(self, tokens):
        cache = BlockPrefixCache(block_size=8)
        first = cache.insert(tokens)
        second = cache.insert(tokens)
        assert second == 0 or first == 0  # nothing new on exact repeat
