"""Tests for the quality (error) model and latency model."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.features import PromptFeatures, extract_features
from repro.llm.latency import estimate_continuous_step, estimate_latency
from repro.llm.profiles import get_profile
from repro.llm.quality import confidence_for, error_rate, noisy_bool

QWEN = get_profile("qwen2.5-7b-instruct")


class TestErrorRate:
    def test_bare_prompt_gets_base_error(self):
        features = PromptFeatures()
        assert error_rate(features, QWEN) == pytest.approx(QWEN.base_error)

    def test_each_feature_reduces_error(self):
        bare = error_rate(PromptFeatures(), QWEN)
        for flag in (
            "has_instruction",
            "has_view_structure",
            "has_focus_hint",
            "has_adaptive_hint",
            "has_examples",
            "has_output_format",
            "has_reasoning",
            "has_guidance",
        ):
            improved = error_rate(PromptFeatures(**{flag: True}), QWEN)
            assert improved < bare, flag

    def test_criteria_and_hint_terms_compound(self):
        few = error_rate(PromptFeatures(criteria_count=1), QWEN)
        many = error_rate(PromptFeatures(criteria_count=4), QWEN)
        assert many < few
        with_terms = error_rate(
            PromptFeatures(hint_terms=("school", "exam")), QWEN
        )
        assert with_terms < error_rate(PromptFeatures(), QWEN)

    def test_fusion_penalty_increases_error(self):
        features = PromptFeatures(has_instruction=True)
        single = error_rate(features, QWEN)
        fused_mf = error_rate(features, QWEN, fused_order="map_filter")
        fused_fm = error_rate(features, QWEN, fused_order="filter_map")
        assert fused_mf > single
        assert fused_fm > single
        assert fused_mf > fused_fm  # qwen's map_filter penalty is larger

    def test_unknown_fused_order_rejected(self):
        with pytest.raises(ValueError):
            error_rate(PromptFeatures(), QWEN, fused_order="sideways")

    def test_difficulty_scales(self):
        features = PromptFeatures(has_instruction=True)
        easy = error_rate(features, QWEN, difficulty=0.0)
        hard = error_rate(features, QWEN, difficulty=1.0)
        assert easy < hard
        assert hard / easy == pytest.approx(3.0)

    def test_floor_at_min_error(self):
        features = PromptFeatures(
            has_instruction=True,
            has_view_structure=True,
            has_focus_hint=True,
            has_adaptive_hint=True,
            has_examples=True,
            has_output_format=True,
            has_reasoning=True,
            has_guidance=True,
            criteria_count=6,
            hint_terms=("a", "b", "c", "d", "e"),
        )
        assert error_rate(features, QWEN, difficulty=0.0) == QWEN.min_error

    def test_profile_overrides_respected(self):
        from dataclasses import replace

        custom = replace(
            QWEN, feature_overrides={"has_instruction": 1.0}
        )
        features = PromptFeatures(has_instruction=True)
        assert error_rate(features, custom) == pytest.approx(custom.base_error)


class TestNoiseChannel:
    def test_determinism(self):
        fingerprint = extract_features("Classify. Respond with yes or no.").fingerprint()
        first = noisy_bool(True, 0.3, "t001", fingerprint, "qwen")
        second = noisy_bool(True, 0.3, "t001", fingerprint, "qwen")
        assert first == second

    def test_zero_error_never_flips(self):
        for index in range(50):
            assert noisy_bool(True, 0.0, f"t{index}", 1, "m") is True

    def test_probability_one_always_flips(self):
        for index in range(50):
            assert noisy_bool(True, 1.0, f"t{index}", 1, "m") is False

    def test_flip_rate_tracks_probability(self):
        flips = sum(
            1
            for index in range(2000)
            if not noisy_bool(True, 0.2, f"t{index:05d}", 42, "m")
        )
        assert 0.15 < flips / 2000 < 0.25

    def test_confidence_tracks_error_rate(self):
        high = sum(confidence_for(0.05, f"i{k}", 1, "m") for k in range(100)) / 100
        low = sum(confidence_for(0.40, f"i{k}", 1, "m") for k in range(100)) / 100
        assert high > low
        assert 0.05 <= low <= 0.99

    @settings(max_examples=50)
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.text(min_size=1, max_size=10),
    )
    def test_confidence_bounds(self, p_error, uid):
        value = confidence_for(p_error, uid, 7, "m")
        assert 0.05 <= value <= 0.99


class TestLatencyModel:
    def test_breakdown_components(self):
        breakdown = estimate_latency(
            QWEN, prompt_tokens=100, cached_tokens=60, output_tokens=10
        )
        assert breakdown.overhead == QWEN.overhead_s
        assert breakdown.prefill == pytest.approx(40 * QWEN.prefill_s_per_token)
        assert breakdown.cached_prefill == pytest.approx(
            60 * QWEN.cached_prefill_s_per_token
        )
        assert breakdown.decode == pytest.approx(10 * QWEN.decode_s_per_token)
        assert breakdown.total == pytest.approx(
            breakdown.overhead
            + breakdown.prefill
            + breakdown.cached_prefill
            + breakdown.decode
        )

    def test_cached_tokens_cheaper_than_uncached(self):
        cold = estimate_latency(QWEN, prompt_tokens=200, cached_tokens=0, output_tokens=0)
        warm = estimate_latency(QWEN, prompt_tokens=200, cached_tokens=200, output_tokens=0)
        assert warm.total < cold.total

    def test_cached_exceeding_prompt_rejected(self):
        with pytest.raises(ValueError):
            estimate_latency(QWEN, prompt_tokens=5, cached_tokens=6, output_tokens=0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            estimate_latency(QWEN, prompt_tokens=-1, cached_tokens=0, output_tokens=0)

    @settings(max_examples=50)
    @given(
        st.integers(min_value=0, max_value=10000),
        st.integers(min_value=0, max_value=10000),
    )
    def test_latency_monotone_in_tokens(self, prompt_tokens, output_tokens):
        base = estimate_latency(
            QWEN, prompt_tokens=prompt_tokens, cached_tokens=0, output_tokens=output_tokens
        )
        more = estimate_latency(
            QWEN,
            prompt_tokens=prompt_tokens + 10,
            cached_tokens=0,
            output_tokens=output_tokens + 10,
        )
        assert more.total > base.total


class TestContinuousStepDedup:
    REQUESTS = [(200, 0, 20), (200, 128, 20), (200, 128, 20)]
    ARRIVALS = [0.0, 0.0, 0.0]

    def test_omitted_and_zero_dedup_identical(self):
        base = estimate_continuous_step(QWEN, self.REQUESTS, self.ARRIVALS)
        zeros = estimate_continuous_step(
            QWEN, self.REQUESTS, self.ARRIVALS, dedup_tokens=[0, 0, 0]
        )
        assert zeros.completions == base.completions
        assert zeros.per_request == base.per_request
        assert base.total_dedup_tokens == 0

    def test_dedup_tokens_charged_zero_not_cached_rate(self):
        base = estimate_continuous_step(QWEN, self.REQUESTS, self.ARRIVALS)
        dedup = estimate_continuous_step(
            QWEN, self.REQUESTS, self.ARRIVALS, dedup_tokens=[0, 128, 128]
        )
        saved = QWEN.cached_prefill_s_per_token * 128
        assert dedup.per_request[1].cached_prefill == pytest.approx(0.0)
        assert dedup.completions[1] == pytest.approx(
            base.completions[1] - saved
        )
        # The serial pipe frees earlier, so savings compound downstream.
        assert dedup.prefill_free_at < base.prefill_free_at
        assert dedup.total_dedup_tokens == 256
        assert dedup.dedup_tokens == (0, 128, 128)

    def test_partial_dedup_remainder_pays_cached_rate(self):
        step = estimate_continuous_step(
            QWEN, self.REQUESTS, self.ARRIVALS, dedup_tokens=[0, 64, 0]
        )
        assert step.per_request[1].cached_prefill == pytest.approx(
            QWEN.cached_prefill_s_per_token * (128 - 64)
        )

    def test_single_request_degenerates_to_direct_call(self):
        step = estimate_continuous_step(
            QWEN, [(200, 64, 20)], [0.0], dedup_tokens=[0]
        )
        direct = estimate_latency(
            QWEN, prompt_tokens=200, cached_tokens=64, output_tokens=20
        )
        assert step.completions[0] == pytest.approx(direct.total)

    def test_dedup_validation(self):
        with pytest.raises(ValueError):
            estimate_continuous_step(
                QWEN, self.REQUESTS, self.ARRIVALS, dedup_tokens=[0, 0]
            )
        with pytest.raises(ValueError):
            estimate_continuous_step(
                QWEN, self.REQUESTS, self.ARRIVALS, dedup_tokens=[0, -1, 0]
            )
        with pytest.raises(ValueError):
            # Dedup beyond the request's own cached tokens is impossible:
            # only a cached trunk can be shared.
            estimate_continuous_step(
                QWEN, self.REQUESTS, self.ARRIVALS, dedup_tokens=[0, 129, 0]
            )
