"""Differential test: BlockPrefixCache vs a naive reference model.

The reference stores every block-aligned prefix it has seen as a tuple in
a set; the longest cached prefix of a probe is then computed by direct
comparison.  Under arbitrary interleavings of insert/match (without
eviction), the production cache must agree exactly with the reference —
this is the strongest correctness statement about the hash-chain scheme.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.kv_cache import BlockPrefixCache

BLOCK = 4


class ReferencePrefixCache:
    """Obviously-correct (and slow) prefix cache."""

    def __init__(self, block_size: int) -> None:
        self.block_size = block_size
        self._prefixes: set[tuple[int, ...]] = set()

    def insert(self, tokens: list[int]) -> None:
        for end in range(
            self.block_size, len(tokens) + 1, self.block_size
        ):
            self._prefixes.add(tuple(tokens[:end]))

    def match_prefix(self, tokens: list[int]) -> int:
        matched = 0
        for end in range(
            self.block_size, len(tokens) + 1, self.block_size
        ):
            if tuple(tokens[:end]) in self._prefixes:
                matched = end
            else:
                break
        return matched


# Small token alphabet maximizes shared prefixes between sequences.
_sequences = st.lists(
    st.integers(min_value=0, max_value=3), min_size=0, max_size=40
)
_operations = st.lists(
    st.tuples(st.sampled_from(["insert", "match"]), _sequences),
    min_size=1,
    max_size=25,
)


class TestAgainstReference:
    @settings(max_examples=120)
    @given(_operations)
    def test_interleaved_operations_agree(self, operations):
        production = BlockPrefixCache(block_size=BLOCK, capacity_blocks=10**6)
        reference = ReferencePrefixCache(block_size=BLOCK)
        for op, tokens in operations:
            if op == "insert":
                production.insert(tokens)
                reference.insert(tokens)
            else:
                assert production.match_prefix(tokens) == reference.match_prefix(
                    tokens
                )

    @settings(max_examples=80)
    @given(_sequences, _sequences)
    def test_cross_contamination_impossible(self, tokens_a, tokens_b):
        # Matching B after inserting only A must agree with the reference —
        # in particular, hash-chaining must not credit B for A's blocks
        # unless B genuinely shares A's block-aligned prefix.
        production = BlockPrefixCache(block_size=BLOCK, capacity_blocks=10**6)
        reference = ReferencePrefixCache(block_size=BLOCK)
        production.insert(tokens_a)
        reference.insert(tokens_a)
        assert production.match_prefix(tokens_b) == reference.match_prefix(tokens_b)
