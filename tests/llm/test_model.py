"""Tests for the SimulatedLLM facade."""

import pytest

from repro.errors import ModelError, TokenBudgetExceededError
from repro.llm import SimulatedLLM, get_profile
from repro.llm.profiles import PROFILES


class TestGenerate:
    def test_result_carries_full_accounting(self, llm, tweet_corpus):
        tweet = tweet_corpus[0]
        result = llm.generate(
            f"Summarize the tweet in at most 30 words.\nTweet:\n{tweet.text}"
        )
        assert result.prompt_tokens > 0
        assert result.output_tokens > 0
        assert result.latency.total > 0
        assert 0.0 <= result.confidence <= 1.0
        assert result.cache_hit_rate == 0.0  # cold cache

    def test_clock_advances_by_latency(self, llm, tweet_corpus):
        result = llm.generate(
            f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        )
        assert llm.clock.now == pytest.approx(result.latency.total)

    def test_repeated_prompt_hits_prefix_cache(self, llm, tweet_corpus):
        prompt = f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        cold = llm.generate(prompt)
        warm = llm.generate(prompt)
        assert warm.cached_tokens > 0
        assert warm.latency.total < cold.latency.total

    def test_use_cache_false_bypasses(self, llm, tweet_corpus):
        prompt = f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        llm.generate(prompt)
        bypassed = llm.generate(prompt, use_cache=False)
        assert bypassed.cached_tokens == 0

    def test_disabled_cache_instance(self, tweet_corpus):
        model = SimulatedLLM(enable_prefix_cache=False)
        model.bind_tweets(tweet_corpus)
        prompt = f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        model.generate(prompt)
        assert model.generate(prompt).cached_tokens == 0

    def test_max_tokens_truncates(self, llm, tweet_corpus):
        prompt = f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        result = llm.generate(prompt, max_tokens=5)
        assert result.output_tokens == 5

    def test_empty_prompt_rejected(self, llm):
        with pytest.raises(ModelError):
            llm.generate("")

    def test_context_window_enforced(self, tweet_corpus):
        from dataclasses import replace

        tiny = replace(get_profile("qwen2.5-7b-instruct"), context_window=10)
        model = SimulatedLLM(tiny)
        with pytest.raises(TokenBudgetExceededError):
            model.generate("word " * 50)

    def test_unknown_profile_name_rejected(self):
        with pytest.raises(ModelError):
            SimulatedLLM("gpt-17")

    def test_all_registered_profiles_construct(self):
        for name in PROFILES:
            assert SimulatedLLM(name).profile.name == name


class TestAggregates:
    def test_counters_accumulate(self, llm, tweet_corpus):
        prompt = f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        llm.generate(prompt)
        llm.generate(prompt)
        assert llm.calls == 2
        assert llm.total_prompt_tokens > 0
        assert llm.overall_cache_hit_rate > 0

    def test_reset_stats(self, llm, tweet_corpus):
        prompt = f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        llm.generate(prompt)
        llm.reset_stats()
        assert llm.calls == 0
        assert llm.overall_cache_hit_rate == 0.0
        # Cache kept by default: next call still hits.
        assert llm.generate(prompt).cached_tokens > 0

    def test_reset_stats_clear_cache(self, llm, tweet_corpus):
        prompt = f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        llm.generate(prompt)
        llm.reset_stats(clear_cache=True)
        assert llm.generate(prompt).cached_tokens == 0


class TestDeterminism:
    def test_same_inputs_same_outputs_across_instances(self, tweet_corpus):
        prompt = (
            "Select the tweet only if its sentiment is negative. Respond with "
            f"yes or no.\nTweet:\n{tweet_corpus[3].text}"
        )
        model_1 = SimulatedLLM()
        model_1.bind_tweets(tweet_corpus)
        model_2 = SimulatedLLM()
        model_2.bind_tweets(tweet_corpus)
        result_1 = model_1.generate(prompt)
        result_2 = model_2.generate(prompt)
        assert result_1.text == result_2.text
        assert result_1.confidence == result_2.confidence
        assert result_1.latency.total == result_2.latency.total

    def test_different_profiles_may_disagree_on_latency(self, tweet_corpus):
        prompt = f"Summarize the tweet.\nTweet:\n{tweet_corpus[0].text}"
        qwen = SimulatedLLM("qwen2.5-7b-instruct")
        gpt = SimulatedLLM("gpt-4o-mini")
        qwen.bind_tweets(tweet_corpus)
        gpt.bind_tweets(tweet_corpus)
        assert qwen.generate(prompt).latency.total != gpt.generate(prompt).latency.total


class TestResultCacheKey:
    def test_profile_and_corpora_identity(self, tweet_corpus, clinical_corpus):
        bare = SimulatedLLM("qwen2.5-7b-instruct")
        assert bare.result_cache_key == "qwen2.5-7b-instruct"

        bound = SimulatedLLM("qwen2.5-7b-instruct")
        bound.bind_tweets(tweet_corpus)
        bound.bind_clinical(clinical_corpus)
        key = bound.result_cache_key
        assert key.startswith("qwen2.5-7b-instruct/tweets:")
        assert "/clinical:" in key

    def test_same_corpus_objects_alias(self, tweet_corpus):
        first = SimulatedLLM("qwen2.5-7b-instruct")
        second = SimulatedLLM("qwen2.5-7b-instruct")
        first.bind_tweets(tweet_corpus)
        second.bind_tweets(tweet_corpus)
        # Same profile + same corpus object => interchangeable backends.
        assert first.result_cache_key == second.result_cache_key

    def test_different_corpus_objects_never_alias(self, tweet_corpus):
        from repro.data import make_tweet_corpus

        first = SimulatedLLM("qwen2.5-7b-instruct")
        second = SimulatedLLM("qwen2.5-7b-instruct")
        first.bind_tweets(tweet_corpus)
        second.bind_tweets(make_tweet_corpus(60, seed=7))
        assert first.result_cache_key != second.result_cache_key

    def test_different_profiles_never_alias(self, tweet_corpus):
        qwen = SimulatedLLM("qwen2.5-7b-instruct")
        gpt = SimulatedLLM("gpt-4o-mini")
        qwen.bind_tweets(tweet_corpus)
        gpt.bind_tweets(tweet_corpus)
        assert qwen.result_cache_key != gpt.result_cache_key
