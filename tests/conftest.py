"""Shared fixtures: small seeded corpora and wired execution states."""

from __future__ import annotations

import pytest

from repro.agents import ValidationAgent
from repro.core import ExecutionState
from repro.data import make_clinical_corpus, make_tweet_corpus
from repro.llm import SimulatedLLM
from repro.retrieval import clinical_sources


@pytest.fixture(scope="session")
def tweet_corpus():
    """A small balanced tweet corpus (session-scoped; corpora are immutable)."""
    return make_tweet_corpus(60, seed=7)


@pytest.fixture(scope="session")
def clinical_corpus():
    """A small clinical corpus with Enoxaparin and non-Enoxaparin patients."""
    return make_clinical_corpus(12, seed=11)


@pytest.fixture
def llm(tweet_corpus, clinical_corpus):
    """A fresh simulated model grounded on both corpora."""
    model = SimulatedLLM("qwen2.5-7b-instruct")
    model.bind_tweets(tweet_corpus)
    model.bind_clinical(clinical_corpus)
    return model


@pytest.fixture
def state(llm, clinical_corpus):
    """An execution state wired with the model, clinical sources, and agents."""
    execution_state = ExecutionState(model=llm, clock=llm.clock)
    for name, source in clinical_sources(clinical_corpus).items():
        execution_state.register_source(name, source)
    execution_state.register_agent("validation_agent", ValidationAgent())
    return execution_state
