"""Tests for the retrieval substrate: documents, BM25 index, retrievers."""

import pytest

from repro.errors import RetrievalError
from repro.retrieval import (
    Document,
    DocumentStore,
    InvertedIndex,
    PromptRetriever,
    StructuredRetriever,
    clinical_sources,
    corpus_documents,
    tokenize_query,
)


@pytest.fixture
def store():
    documents = [
        Document("d1", "enoxaparin 40 mg administered daily", {"kind": "order", "patient_id": "p1"}),
        Document("d2", "patient resting comfortably, vitals stable", {"kind": "nursing_note", "patient_id": "p1"}),
        Document("d3", "ct angiography consistent with pulmonary embolism", {"kind": "radiology_report", "patient_id": "p2"}),
        Document("d4", "enoxaparin continued for dvt prophylaxis", {"kind": "discharge_summary", "patient_id": "p2"}),
    ]
    return DocumentStore(documents)


class TestDocumentStore:
    def test_add_get_len(self, store):
        assert len(store) == 4
        assert store.get("d1").text.startswith("enoxaparin")
        assert store.get("ghost") is None
        assert "d1" in store

    def test_where_filters_by_attributes(self, store):
        assert [doc.doc_id for doc in store.where(patient_id="p1")] == ["d1", "d2"]
        assert [doc.doc_id for doc in store.where(patient_id="p1", kind="order")] == ["d1"]

    def test_filter_predicate(self, store):
        hits = store.filter(lambda doc: "enoxaparin" in doc.text)
        assert {doc.doc_id for doc in hits} == {"d1", "d4"}

    def test_replace_on_same_id(self, store):
        store.add(Document("d1", "replaced"))
        assert store.get("d1").text == "replaced"
        assert len(store) == 4


class TestTokenizeQuery:
    def test_stopwords_and_retrieval_verbs_removed(self):
        tokens = tokenize_query("Retrieve the notes about enoxaparin orders")
        assert "retrieve" not in tokens
        assert "the" not in tokens
        assert "enoxaparin" in tokens

    def test_lowercased(self):
        assert tokenize_query("ENOXAPARIN") == ["enoxaparin"]


class TestInvertedIndex:
    def test_search_ranks_relevant_docs_first(self, store):
        index = InvertedIndex(store)
        results = index.search("enoxaparin dvt prophylaxis")
        assert results
        assert results[0][0].doc_id == "d4"

    def test_search_no_hits(self, store):
        index = InvertedIndex(store)
        assert index.search("zebra rainbows") == []

    def test_empty_query(self, store):
        index = InvertedIndex(store)
        assert index.search("the and of") == []

    def test_top_k_limits(self, store):
        index = InvertedIndex(store)
        assert len(index.search("enoxaparin", top_k=1)) == 1

    def test_add_indexes_new_document(self, store):
        index = InvertedIndex(store)
        index.add(Document("d5", "warfarin bridging with enoxaparin"))
        ids = [doc.doc_id for doc, __ in index.search("warfarin")]
        assert ids == ["d5"]

    def test_scores_positive_and_sorted(self, store):
        index = InvertedIndex(store)
        results = index.search("enoxaparin")
        scores = [score for __, score in results]
        assert all(score > 0 for score in scores)
        assert scores == sorted(scores, reverse=True)

    def test_term_frequency_saturation(self):
        store = DocumentStore(
            [
                Document("a", "drug " * 50),
                Document("b", "drug mention once in a short note"),
            ]
        )
        index = InvertedIndex(store)
        score_a = index.score("a", ["drug"])
        score_b = index.score("b", ["drug"])
        # BM25 saturates term frequency: 50 mentions is not 50x the score.
        assert score_a < 5 * score_b


class TestRetrievers:
    def test_structured_retriever_dict_query(self, store):
        retriever = StructuredRetriever(store)
        hits = retriever(None, {"kind": "order"})
        assert [doc.doc_id for doc in hits] == ["d1"]

    def test_structured_retriever_none_returns_all(self, store):
        assert len(StructuredRetriever(store)(None, None)) == 4

    def test_structured_retriever_rejects_non_dict(self, store):
        with pytest.raises(RetrievalError):
            StructuredRetriever(store)(None, "free text")

    def test_prompt_retriever(self, store):
        retriever = PromptRetriever(InvertedIndex(store), top_k=2)
        hits = retriever(None, "find enoxaparin prophylaxis orders")
        assert hits
        assert all(isinstance(doc, Document) for doc in hits)

    def test_prompt_retriever_rejects_empty(self, store):
        retriever = PromptRetriever(InvertedIndex(store))
        with pytest.raises(RetrievalError):
            retriever(None, "   ")


class TestClinicalSources:
    def test_corpus_documents_projects_everything(self, clinical_corpus):
        store = corpus_documents(clinical_corpus)
        kinds = {doc.get("kind") for doc in store}
        assert {"discharge_summary", "radiology_report", "nursing_note", "lab"} <= kinds

    def test_initial_notes_source(self, clinical_corpus, state):
        sources = clinical_sources(clinical_corpus)
        notes = sources["initial_notes"](state, "p0000")
        assert "Patient p0000" in notes
        assert "LAB:" not in notes

    def test_initial_notes_unknown_patient_raises(self, clinical_corpus, state):
        sources = clinical_sources(clinical_corpus)
        with pytest.raises(RetrievalError):
            sources["initial_notes"](state, "p9999")

    def test_order_lookup_reports_none_on_file(self, clinical_corpus, state):
        sources = clinical_sources(clinical_corpus)
        patient = next(p for p in clinical_corpus if not p.has_orders)
        result = sources["order_lookup"](state, patient.patient_id)
        assert result == "ORDER: none on file"

    def test_order_lookup_finds_orders(self, clinical_corpus, state):
        sources = clinical_sources(clinical_corpus)
        patient = next(p for p in clinical_corpus if p.has_orders)
        result = sources["order_lookup"](state, patient.patient_id)
        assert "ORDER: enoxaparin" in result

    def test_lab_lookup(self, clinical_corpus, state):
        sources = clinical_sources(clinical_corpus)
        result = sources["lab_lookup"](state, "p0000")
        assert result.count("LAB:") == 2

    def test_note_search_prompt_based(self, clinical_corpus, state):
        sources = clinical_sources(clinical_corpus)
        result = sources["note_search"](state, "enoxaparin dosage administered")
        assert "enoxaparin" in result.lower()
