"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

DL_SOURCE = '''view med_summary(drug) {
  """### Task
Summarize the patient's medication history and highlight any use of {drug}.
Notes:
{initial_notes}"""
}

pipeline qa {
  RET["initial_notes", query="p0001"]
  VIEW["med_summary", key="qa", params={drug: "Enoxaparin"}]
  GEN["answer_0", prompt="qa"]
  CHECK[M["confidence"] < 0.9] -> REF[APPEND, "Be specific about dosage.", key="qa"]
  GEN["answer_1", prompt="qa"]
  DELEGATE["validation_agent", payload="answer_1", into="validation"]
}
'''


@pytest.fixture
def dl_file(tmp_path):
    path = tmp_path / "demo.spear"
    path.write_text(DL_SOURCE, encoding="utf-8")
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_choices(self):
        args = build_parser().parse_args(["experiments", "table3", "--n", "50"])
        assert args.which == "table3"
        assert args.n == 50

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "table9"])


class TestRunCommand:
    def test_run_executes_pipeline(self, dl_file, capsys):
        code = main(["run", str(dl_file), "--pipeline", "qa"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline 'qa' finished" in out
        assert "answer_1:" in out
        assert "validation:" in out

    def test_run_with_trace(self, dl_file, capsys):
        main(["run", str(dl_file), "--pipeline", "qa", "--show-trace"])
        out = capsys.readouterr().out
        assert "execution timeline:" in out
        assert "generate" in out

    def test_run_unknown_pipeline_fails(self, dl_file):
        from repro.errors import DslCompileError

        with pytest.raises(DslCompileError):
            main(["run", str(dl_file), "--pipeline", "ghost"])


class TestFmtCommand:
    def test_fmt_prints_canonical_source(self, dl_file, capsys):
        code = main(["fmt", str(dl_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("view med_summary(drug)")
        # Canonical output reparses to the same program.
        from repro.dl import parse

        assert parse(out) == parse(DL_SOURCE)

    def test_fmt_write_in_place(self, dl_file, capsys):
        main(["fmt", str(dl_file), "--write"])
        assert "reformatted" in capsys.readouterr().out
        text = dl_file.read_text()
        assert text.startswith("view med_summary(drug)")


class TestExperimentsCommand:
    def test_table3_small_run(self, capsys):
        code = main(["experiments", "table3", "--n", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3 (reproduced)" in out
        assert "Auto Refinement" in out


class TestExperimentsFigure1Command:
    def test_figure1_runs_and_prints_all_points(self, capsys):
        code = main(["experiments", "figure1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 1 (reproduced)" in out
        for model in ("qwen2.5-7b-instruct", "mistral-7b-instruct", "gpt-4o-mini"):
            assert out.count(model) == 2  # both fusion orders per model
