"""Tests for the command-line interface."""

import importlib
import json
import re
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, main

DL_SOURCE = '''view med_summary(drug) {
  """### Task
Summarize the patient's medication history and highlight any use of {drug}.
Notes:
{initial_notes}"""
}

pipeline qa {
  RET["initial_notes", query="p0001"]
  VIEW["med_summary", key="qa", params={drug: "Enoxaparin"}]
  GEN["answer_0", prompt="qa"]
  CHECK[M["confidence"] < 0.9] -> REF[APPEND, "Be specific about dosage.", key="qa"]
  GEN["answer_1", prompt="qa"]
  DELEGATE["validation_agent", payload="answer_1", into="validation"]
}
'''


@pytest.fixture
def dl_file(tmp_path):
    path = tmp_path / "demo.spear"
    path.write_text(DL_SOURCE, encoding="utf-8")
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_choices(self):
        args = build_parser().parse_args(["experiments", "table3", "--n", "50"])
        assert args.which == "table3"
        assert args.n == 50

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "table9"])


class TestRunCommand:
    def test_run_executes_pipeline(self, dl_file, capsys):
        code = main(["run", str(dl_file), "--pipeline", "qa"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pipeline 'qa' finished" in out
        assert "answer_1:" in out
        assert "validation:" in out

    def test_run_with_trace(self, dl_file, capsys):
        main(["run", str(dl_file), "--pipeline", "qa", "--show-trace"])
        out = capsys.readouterr().out
        assert "execution timeline:" in out
        assert "generate" in out

    def test_run_unknown_pipeline_fails(self, dl_file):
        from repro.errors import DslCompileError

        with pytest.raises(DslCompileError):
            main(["run", str(dl_file), "--pipeline", "ghost"])


class TestFmtCommand:
    def test_fmt_prints_canonical_source(self, dl_file, capsys):
        code = main(["fmt", str(dl_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("view med_summary(drug)")
        # Canonical output reparses to the same program.
        from repro.dl import parse

        assert parse(out) == parse(DL_SOURCE)

    def test_fmt_write_in_place(self, dl_file, capsys):
        main(["fmt", str(dl_file), "--write"])
        assert "reformatted" in capsys.readouterr().out
        text = dl_file.read_text()
        assert text.startswith("view med_summary(drug)")


@pytest.fixture
def trace_file(tmp_path, monkeypatch, capsys):
    """A JSONL event trace exported by the quickstart example."""
    examples_dir = Path(__file__).resolve().parent.parent / "examples"
    monkeypatch.syspath_prepend(str(examples_dir))
    quickstart = importlib.import_module("quickstart")
    try:
        path = tmp_path / "quickstart_run.jsonl"
        quickstart.main(trace_path=path)
        capsys.readouterr()  # swallow the example's own output
        yield path
    finally:
        sys.modules.pop("quickstart", None)


class TestStatsCommand:
    def test_stats_table_rollups(self, trace_file, capsys):
        code = main(["stats", str(trace_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-operator rollup" in out
        assert "GEN" in out and "CHECK" in out
        assert "Per-prompt generation rollup" in out
        assert "judge" in out
        assert re.search(r"cache hit ratio \d+\.\d%", out)
        assert "totals:" in out
        assert "slowest spans:" in out

    def test_stats_json_matches_offline_report(self, trace_file, capsys):
        code = main(["stats", str(trace_file), "--format", "json"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)

        from repro.obs import build_run_report
        from repro.runtime.tracing import import_events

        expected = build_run_report(import_events(trace_file))
        assert report["operators"] == expected.operators
        assert report["generation"] == expected.generation
        assert report["totals"] == expected.totals
        assert report["generation"]["judge"]["calls"] >= 1

    def test_stats_prometheus_is_valid_exposition(self, trace_file, capsys):
        code = main(["stats", str(trace_file), "--format", "prometheus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE spear_gen_calls_total counter" in out
        assert "# TYPE spear_operator_wall_seconds histogram" in out
        assert 'spear_gen_calls_total{prompt="judge"}' in out
        # Every line is either a comment or `name{labels} value`.
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*='
            r'"(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? '
            r"(?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf|NaN))$"
        )
        for line in out.splitlines():
            assert line.startswith("#") or sample.match(line), line

    def test_stats_batch_table(self, tmp_path, tweet_corpus, capsys):
        """A trace containing BATCH events renders the batch-runs table."""
        from repro.core import GEN, Pipeline
        from repro.core.state import ExecutionState
        from repro.llm.model import SimulatedLLM
        from repro.runtime.batch import BatchRunner
        from repro.runtime.tracing import export_events

        llm = SimulatedLLM("qwen2.5-7b-instruct")
        llm.bind_tweets(tweet_corpus)
        state = ExecutionState(model=llm, clock=llm.clock)
        state.prompts.create(
            "filter",
            "Select the tweet only if its sentiment is negative. "
            "Respond with yes or no.\nTweet:\n{tweet}",
        )
        runner = BatchRunner(
            state, bind=lambda s, t: s.context.put("tweet", t.text, producer="b")
        )
        batch = runner.run(
            Pipeline([GEN("verdict", prompt="filter")]), items=tweet_corpus.tweets[:5]
        )
        trace = tmp_path / "batch_run.jsonl"
        export_events(state.events, trace)

        code = main(["stats", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Batch runs" in out
        assert "sequential" in out
        assert f"{batch.throughput:.3f}" in out

    def test_stats_scheduler_table(self, tmp_path, tweet_corpus, capsys):
        """A trace containing SCHED events renders the scheduler table."""
        from repro.core import GEN, Pipeline
        from repro.core.state import ExecutionState
        from repro.llm.model import SimulatedLLM
        from repro.runtime.options import RuntimeOptions
        from repro.runtime.parallel import ParallelBatchRunner
        from repro.runtime.tracing import export_events

        llm = SimulatedLLM("qwen2.5-7b-instruct")
        llm.bind_tweets(tweet_corpus)
        state = ExecutionState(model=llm, clock=llm.clock)
        state.prompts.create(
            "filter",
            "Select the tweet only if its sentiment is negative. "
            "Respond with yes or no.\nTweet:\n{tweet}",
        )
        runner = ParallelBatchRunner(
            state,
            bind=lambda s, t: s.context.put("tweet", t.text, producer="b"),
            workers=4,
            options=RuntimeOptions(
                priority=lambda t: "interactive"
                if int(t.uid[-1]) % 2 == 0
                else "bulk",
            ),
        )
        runner.run(
            Pipeline([GEN("verdict", prompt="filter")]), items=tweet_corpus.tweets[:8]
        )
        trace = tmp_path / "sched_run.jsonl"
        export_events(state.events, trace)

        code = main(["stats", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Scheduler" in out
        assert "interactive" in out
        assert "bulk" in out
        assert re.search(r"steps: \d+ {2}mean step size: \d+\.\d+", out)
        assert "preemptions:" in out and "queue depth:" in out

    def test_stats_result_cache_table(self, tmp_path, tweet_corpus, capsys):
        """A trace containing CACHE_HIT events renders the cache table."""
        from repro.core import GEN, Pipeline
        from repro.llm.model import SimulatedLLM
        from repro.runtime.executor import Executor
        from repro.runtime.options import RuntimeOptions
        from repro.runtime.result_cache import ResultCache
        from repro.runtime.tracing import export_events

        llm = SimulatedLLM("qwen2.5-7b-instruct", enable_prefix_cache=False)
        llm.bind_tweets(tweet_corpus)
        executor = Executor(
            options=RuntimeOptions(
                model=llm, clock=llm.clock, result_cache=ResultCache()
            )
        )
        state = executor.new_state()
        state.prompts.create(
            "filter",
            "Select the tweet only if its sentiment is negative. "
            f"Respond with yes or no.\nTweet:\n{tweet_corpus[0].text}",
        )
        pipeline = Pipeline([GEN("verdict", prompt="filter")])
        executor.run(pipeline, state=state)
        executor.run(pipeline, state=state)  # served from the cache
        trace = tmp_path / "cached_run.jsonl"
        export_events(state.events, trace)

        code = main(["stats", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Result cache" in out
        assert re.search(r"result cache: 1 hits?, \d+\.\d+s", out)

    def test_stats_resilience_table(self, tmp_path, tweet_corpus, capsys):
        """A trace containing FAULT/RETRY events renders the resilience table."""
        from repro.core import GEN, Pipeline
        from repro.llm.model import SimulatedLLM
        from repro.resilience import (
            FaultPlan,
            FaultSpec,
            ResilienceRuntime,
            RetryPolicy,
        )
        from repro.runtime.executor import Executor
        from repro.runtime.options import RuntimeOptions
        from repro.runtime.tracing import export_events

        llm = SimulatedLLM(
            "qwen2.5-7b-instruct",
            enable_prefix_cache=False,
            fault_plan=FaultPlan(0, default=FaultSpec(transient_rate=0.5)),
        )
        llm.bind_tweets(tweet_corpus)
        executor = Executor(
            options=RuntimeOptions(
                model=llm,
                clock=llm.clock,
                resilience=ResilienceRuntime(
                    retry=RetryPolicy(
                        max_attempts=6, base_delay_s=0.1, jitter=0.0
                    )
                ),
            )
        )
        state = executor.new_state()
        # Enough distinct prompts that at least one draws a fault.
        for index, tweet in enumerate(tweet_corpus[:8]):
            state.prompts.create(
                f"filter{index}",
                "Select the tweet only if its sentiment is negative. "
                f"Respond with yes or no.\nTweet:\n{tweet.text}",
            )
            executor.run(
                Pipeline([GEN("verdict", prompt=f"filter{index}")]),
                state=state,
            )
        from repro.runtime.events import EventKind

        assert state.events.of_kind(EventKind.FAULT)  # faults were drawn
        trace = tmp_path / "faulted_run.jsonl"
        export_events(state.events, trace)

        code = main(["stats", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Resilience" in out
        assert "qwen2.5-7b-instruct" in out
        assert re.search(r"faults injected: [1-9]\d*", out)

    def test_stats_top_limits_slowest_spans(self, trace_file, capsys):
        main(["stats", str(trace_file), "--top", "1"])
        out = capsys.readouterr().out
        _, _, spans_block = out.partition("slowest spans:")
        # the refinement-utility section (if any) follows the spans block
        spans_block, _, _ = spans_block.partition("Refinement utility")
        assert len([ln for ln in spans_block.splitlines() if ln.strip()]) == 1

    def test_stats_empty_trace_clean_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("", encoding="utf-8")
        code = main(["stats", str(empty)])
        assert code == 1
        captured = capsys.readouterr()
        err_lines = [ln for ln in captured.err.splitlines() if ln.strip()]
        assert len(err_lines) == 1
        assert "error:" in err_lines[0]
        assert "no events" in err_lines[0]
        assert "Traceback" not in captured.err

    def test_stats_truncated_trace_clean_error(self, trace_file, capsys):
        # Chop the file mid-line, as a crashed writer would leave it.
        text = trace_file.read_text(encoding="utf-8")
        trace_file.write_text(text[: len(text) - 20], encoding="utf-8")
        code = main(["stats", str(trace_file)])
        assert code == 1
        captured = capsys.readouterr()
        err_lines = [ln for ln in captured.err.splitlines() if ln.strip()]
        assert len(err_lines) == 1
        assert "error:" in err_lines[0]
        assert "truncated" in err_lines[0]
        assert "Traceback" not in captured.err

    def test_stats_rejects_untrusted_type_tags_cleanly(self, tmp_path, capsys):
        # A malicious trace must produce a clean CLI error (exit 1), not
        # code execution and not a traceback.
        evil = tmp_path / "evil.jsonl"
        evil.write_text(
            json.dumps(
                {
                    "seq": 0,
                    "kind": "generate",
                    "operator": "GEN[x]",
                    "at": 0.0,
                    "payload": {
                        "v": {"__spear__": "enum", "type": "os:system", "value": "id"}
                    },
                }
            )
            + "\n"
        )
        code = main(["stats", str(evil)])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "repro" in err


class TestTraceCommand:
    def test_trace_renders_span_tree(self, trace_file, capsys):
        code = main(["trace", str(trace_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert 'GEN["verdict"]' in out
        assert re.search(r"\(\d+\.\d{2}s\)", out)
        assert "tokens=" in out

    def test_trace_timeline_shows_lifecycle(self, trace_file, capsys):
        code = main(["trace", str(trace_file), "--timeline"])
        assert code == 0
        out = capsys.readouterr().out
        assert '<GEN["verdict"]>' in out
        assert '</GEN["verdict"]>' in out

    def test_trace_empty_trace_clean_error(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("\n\n", encoding="utf-8")  # blank lines only
        code = main(["trace", str(empty)])
        assert code == 1
        captured = capsys.readouterr()
        err_lines = [ln for ln in captured.err.splitlines() if ln.strip()]
        assert len(err_lines) == 1
        assert "error:" in err_lines[0]
        assert "Traceback" not in captured.err

    def test_trace_truncated_trace_clean_error(self, trace_file, capsys):
        text = trace_file.read_text(encoding="utf-8")
        trace_file.write_text(text[: len(text) - 20], encoding="utf-8")
        code = main(["trace", str(trace_file)])
        assert code == 1
        captured = capsys.readouterr()
        err_lines = [ln for ln in captured.err.splitlines() if ln.strip()]
        assert len(err_lines) == 1
        assert "error:" in err_lines[0]
        assert "truncated" in err_lines[0]
        assert "Traceback" not in captured.err


class TestExperimentsCommand:
    def test_table3_small_run(self, capsys):
        code = main(["experiments", "table3", "--n", "40"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3 (reproduced)" in out
        assert "Auto Refinement" in out


class TestExperimentsFigure1Command:
    def test_figure1_runs_and_prints_all_points(self, capsys):
        code = main(["experiments", "figure1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 1 (reproduced)" in out
        for model in ("qwen2.5-7b-instruct", "mistral-7b-instruct", "gpt-4o-mini"):
            assert out.count(model) == 2  # both fusion orders per model


class TestCheckCommand:
    FIXTURES = Path(__file__).parent / "fixtures" / "dl"

    def test_clean_fixture_exits_zero(self, capsys):
        code = main(["check", str(self.FIXTURES / "clean_pipeline.spear")])
        assert code == 0
        out = capsys.readouterr().out
        assert ": ok" in out
        assert "checked 1 target(s): 0 error(s)" in out

    def test_buggy_fixture_exits_one_with_codes(self, capsys):
        code = main(["check", str(self.FIXTURES / "buggy_pipeline.spear")])
        assert code == 1
        out = capsys.readouterr().out
        for expected in ("SPEAR101", "SPEAR112", "SPEAR131", "SPEAR142"):
            assert expected in out
        assert "buggy_pipeline.spear:" in out  # spans rendered

    def test_json_format_is_machine_readable(self, capsys):
        code = main(
            [
                "check",
                str(self.FIXTURES / "buggy_pipeline.spear"),
                "--format",
                "json",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] > 0
        (run,) = payload["runs"]
        assert run["target"].endswith("buggy_pipeline.spear")
        codes = {d["code"] for d in run["diagnostics"]}
        assert "SPEAR101" in codes
        for diagnostic in run["diagnostics"]:
            assert {"code", "severity", "message"} <= diagnostic.keys()

    def test_inline_dl_flag(self, capsys):
        code = main(["check", "--dl", 'pipeline p { GEN["a", prompt="x"] }'])
        assert code == 1
        out = capsys.readouterr().out
        assert "<dl:0>" in out
        assert "SPEAR101" in out

    def test_python_file_targets_collected(self, tmp_path, capsys):
        module = tmp_path / "pipelines.py"
        module.write_text(
            "from repro.core import GEN, Pipeline\n"
            "SOURCE = 'pipeline p { REF[CREATE, \"t\", key=\"qa\"] "
            'GEN["a", prompt="qa"] }\'\n'
            "broken = Pipeline([GEN('x', prompt='ghost')], name='broken')\n",
            encoding="utf-8",
        )
        code = main(["check", str(module)])
        assert code == 1
        out = capsys.readouterr().out
        assert "::SOURCE" in out
        assert "broken" in out
        assert "SPEAR101" in out

    def test_nothing_to_check_exits_two(self, capsys):
        code = main(["check"])
        assert code == 2
        assert "nothing to check" in capsys.readouterr().err

    def test_syntax_error_reported_not_raised(self, tmp_path, capsys):
        bad = tmp_path / "bad.spear"
        bad.write_text("pipeline p { GEN[", encoding="utf-8")
        code = main(["check", str(bad)])
        assert code == 1
        assert "SPEAR001" in capsys.readouterr().out

    def test_examples_are_clean(self, capsys):
        examples = Path(__file__).parent.parent / "examples"
        code = main(
            [
                "check",
                str(examples / "enoxaparin_qa.spear"),
                str(examples / "spear_dl_demo.py"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out


@pytest.fixture
def ledger_root(tmp_path):
    """A ledger root holding one completed same-seed run."""
    from tests.obs.test_ledger import make_executor, make_pipeline

    root = tmp_path / "runs"
    executor = make_executor(root)
    state = executor.new_state()
    executor.run(make_pipeline(state), state=state)
    return root


class TestRunsCommand:
    def test_runs_lists_completed_runs(self, ledger_root, capsys):
        code = main(["runs", str(ledger_root)])
        assert code == 0
        out = capsys.readouterr().out
        assert "000001" in out
        assert "completed" in out
        assert "Executor" in out

    def test_runs_empty_root(self, tmp_path, capsys):
        code = main(["runs", str(tmp_path / "nowhere")])
        assert code == 0
        assert "no runs" in capsys.readouterr().out

    def test_runs_detail_renders_stats(self, ledger_root, capsys):
        code = main(["runs", str(ledger_root), "--run", "000001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "run 000001 [completed]" in out
        assert "Per-operator rollup" in out

    def test_runs_detail_json(self, ledger_root, capsys):
        code = main(["runs", str(ledger_root), "--run", "000001", "--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["manifest"]["status"] == "completed"
        assert payload["report"]["totals"]["gen_calls"] == 2
        assert payload["attribution"]["totals"]["attributed_calls"] == 2

    def test_runs_unknown_run_clean_error(self, ledger_root, capsys):
        code = main(["runs", str(ledger_root), "--run", "000042"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "000042" in err
        assert "Traceback" not in err


class TestDiffCommand:
    @staticmethod
    def _second_root(tmp_path):
        from tests.obs.test_ledger import make_executor, make_pipeline

        root = tmp_path / "runs_b"
        executor = make_executor(root)
        state = executor.new_state()
        executor.run(make_pipeline(state), state=state)
        return root

    @staticmethod
    def _inflate_report(run_dir, factor=1.1):
        """A seeded-regression fixture: same run, costs inflated."""
        report_path = run_dir / "report.json"
        report = json.loads(report_path.read_text(encoding="utf-8"))
        totals = report["totals"]
        totals["cost_usd"] = round(totals["cost_usd"] * factor, 6)
        totals["prompt_tokens"] = int(totals["prompt_tokens"] * factor)
        report_path.write_text(json.dumps(report, indent=2) + "\n")

    def test_same_seed_runs_diff_to_zero(self, ledger_root, tmp_path, capsys):
        other = self._second_root(tmp_path)
        code = main(
            ["diff", str(ledger_root / "000001"), str(other / "000001")]
        )
        assert code == 0
        assert "no differences (zero delta)" in capsys.readouterr().out

    def test_gate_passes_on_zero_delta(self, ledger_root, tmp_path, capsys):
        other = self._second_root(tmp_path)
        code = main(
            [
                "diff",
                str(ledger_root / "000001"),
                str(other / "000001"),
                "--gate",
            ]
        )
        assert code == 0
        assert "gate passed" in capsys.readouterr().out

    def test_gate_fails_on_seeded_regression(self, ledger_root, tmp_path, capsys):
        import shutil

        regressed = tmp_path / "regressed"
        shutil.copytree(ledger_root / "000001", regressed)
        self._inflate_report(regressed)
        code = main(
            ["diff", str(ledger_root / "000001"), str(regressed), "--gate"]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "GATE FAILED" in captured.err
        assert "totals.cost_usd" in captured.err
        # The changed-metric table still prints on stdout.
        assert "totals.prompt_tokens" in captured.out

    def test_max_regress_tolerates_small_regressions(
        self, ledger_root, tmp_path, capsys
    ):
        import shutil

        regressed = tmp_path / "regressed"
        shutil.copytree(ledger_root / "000001", regressed)
        self._inflate_report(regressed, factor=1.05)
        code = main(
            [
                "diff",
                str(ledger_root / "000001"),
                str(regressed),
                "--gate",
                "--max-regress",
                "20",
            ]
        )
        assert code == 0
        assert "gate passed" in capsys.readouterr().out

    def test_diff_json_format(self, ledger_root, tmp_path, capsys):
        import shutil

        regressed = tmp_path / "regressed"
        shutil.copytree(ledger_root / "000001", regressed)
        self._inflate_report(regressed)
        code = main(
            [
                "diff",
                str(ledger_root / "000001"),
                str(regressed),
                "--gate",
                "--format",
                "json",
            ]
        )
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["gate"]["enabled"] is True
        failing = {row["metric"] for row in payload["gate"]["failures"]}
        assert "totals.cost_usd" in failing
        assert any(
            row["metric"].startswith("report.totals") for row in payload["changed"]
        )

    def test_diff_non_run_path_clean_error(self, ledger_root, tmp_path, capsys):
        code = main(["diff", str(ledger_root / "000001"), str(tmp_path)])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "manifest.json" in err
        assert "Traceback" not in err


class TestTopCommand:
    def test_top_once_renders_leaderboard(self, ledger_root, capsys):
        code = main(["top", str(ledger_root), "--once"])
        assert code == 0
        out = capsys.readouterr().out
        assert "spear top — run 000001 [completed]" in out
        assert "Prompt leaderboard" in out
        assert "qa@v" in out

    def test_top_accepts_single_run_directory(self, ledger_root, capsys):
        code = main(["top", str(ledger_root / "000001"), "--once"])
        assert code == 0
        assert "run 000001" in capsys.readouterr().out

    def test_top_exits_when_run_completes(self, ledger_root, capsys):
        # Not --once: the loop must still terminate because the run's
        # manifest already says completed.
        code = main(["top", str(ledger_root)])
        assert code == 0

    def test_top_empty_root_clean_error(self, tmp_path, capsys):
        code = main(["top", str(tmp_path), "--once"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err and "no ledger runs" in err
        assert "Traceback" not in err

    def test_top_tolerates_partial_trailing_line(self, ledger_root, capsys):
        events = ledger_root / "000001" / "events.jsonl"
        with events.open("a", encoding="utf-8") as handle:
            handle.write('{"kind": "generate", "at": 9')  # no newline
        code = main(["top", str(ledger_root), "--once"])
        assert code == 0
        assert "Prompt leaderboard" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_table_output(self, capsys):
        code = main(
            [
                "serve",
                "--tenants", "2",
                "--workers", "2",
                "--queue-limit", "2",
                "--corpus", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "served 4/4 requests across 2 tenants" in out
        assert "shed 0 (0.0%)" in out
        assert "tenant-0" in out and "tenant-1" in out

    def test_serve_overload_json(self, capsys):
        code = main(
            [
                "serve",
                "--tenants", "2",
                "--workers", "2",
                "--queue-limit", "2",
                "--overload", "3",
                "--corpus", "4",
                "--format", "json",
            ]
        )
        assert code == 0
        metrics = json.loads(capsys.readouterr().out)
        assert metrics["submitted"] == 12
        assert metrics["served"] == 4
        assert metrics["shed"] == 8
        assert metrics["errors"] == 0
