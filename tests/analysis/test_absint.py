"""Path-sensitive abstract interpretation: dead arms, forked states, joins.

The v2 walker (:mod:`repro.analysis.absint`) forks the abstract state
per CHECK/SWITCH arm, refines it with the arm's condition, skips
statically-dead arms, and joins the per-arm post-states.  Relative to
the legacy flow-insensitive walk this both *kills false positives*
(findings inside arms that cannot run) and *gains precision* (one arm's
writes no longer leak into a sibling arm's state).
"""

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AnalysisEnv,
    CheckResult,
    build_dataflow,
    check_pipeline,
    check_program,
)
from repro.analysis.checkers import run_analyzers
from repro.core import (
    CHECK,
    GEN,
    REF,
    RET,
    SWITCH,
    Condition,
    Pipeline,
    RefAction,
)

FIXTURES = Path(__file__).parent.parent / "fixtures" / "dl"

#: codes where the flow-insensitive walk is prone to branch-related
#: false positives; path sensitivity may only ever *remove* these.
FP_PRONE = {"SPEAR112", "SPEAR121"}


def flow_insensitive(pipeline: Pipeline, env: AnalysisEnv | None = None):
    env = env or AnalysisEnv()
    graph = build_dataflow(pipeline, env, path_sensitive=False)
    return CheckResult(run_analyzers(graph, env)).sort()


def keyed(result) -> set[tuple[str, str | None]]:
    return {(d.code, d.operator) for d in result}


def dead_arm_pipeline() -> Pipeline:
    # M["never_signal"] is never written, so `> 0.5` is statically
    # false: the arm cannot run.
    return Pipeline(
        [
            REF(RefAction.CREATE, "base", key="qa"),
            GEN("a", prompt="qa"),
            CHECK(
                Condition.metadata_above("never_signal", 0.5),
                then=REF(RefAction.CREATE, "dump", key="debug_scratch"),
            ),
        ]
    )


class TestDeadArms:
    def test_dead_arm_nodes_are_marked_unreachable(self):
        graph = build_dataflow(dead_arm_pipeline(), AnalysisEnv())
        unreachable = [node.label for node in graph if node.unreachable]
        assert unreachable == ["REF[CREATE, f_literal]"]

    def test_dead_arm_findings_are_killed(self):
        result = check_pipeline(dead_arm_pipeline())
        # The dead branch itself is still reported ...
        assert result.codes() == ["SPEAR148"]
        # ... but the unused-prompt FP on the arm's body is gone.
        assert not result.with_code("SPEAR121")

    def test_flow_insensitive_walk_keeps_the_fp(self):
        result = flow_insensitive(dead_arm_pipeline())
        (fp,) = result.with_code("SPEAR121")
        assert "debug_scratch" in fp.message

    def test_switch_arms_after_first_static_match_are_dead(self):
        # The first case is statically true (missing metadata reads as
        # 0), so the later arms can never be selected.
        pipeline = Pipeline(
            [
                REF(RefAction.CREATE, "base", key="qa"),
                SWITCH(
                    [
                        (
                            Condition.metadata_below("confidence", 0.5),
                            GEN("low", prompt="qa"),
                        ),
                        (
                            Condition.metadata_above("confidence", 0.9),
                            REF(
                                RefAction.CREATE,
                                "orphan",
                                key="never_read",
                            ),
                        ),
                    ]
                ),
            ]
        )
        result = check_pipeline(pipeline)
        assert not result.with_code("SPEAR121")
        graph = build_dataflow(pipeline, AnalysisEnv())
        assert any(node.unreachable for node in graph)


class TestCrossArmIsolation:
    def test_sibling_arm_does_not_see_other_arms_writes(self):
        # Arm 1 creates "detail"; arm 2 reads it.  The arms are
        # mutually exclusive, so arm 2's read is an undefined-prompt
        # error — which only a forked per-arm state can see.
        pipeline = Pipeline(
            [
                REF(RefAction.CREATE, "base", key="qa"),
                GEN("a", prompt="qa"),
                SWITCH(
                    [
                        (
                            Condition.metadata_below("confidence", 0.5),
                            REF(RefAction.CREATE, "x", key="detail"),
                        ),
                        (
                            Condition.metadata_above("confidence", 0.9),
                            GEN("b", prompt="detail"),
                        ),
                    ]
                ),
            ]
        )
        (finding,) = check_pipeline(pipeline).with_code("SPEAR101")
        assert finding.operator == 'GEN["b"]'
        # The single-threaded walk leaks arm 1's create into arm 2.
        assert not flow_insensitive(pipeline).with_code("SPEAR101")

    def test_write_on_all_paths_is_definite_after_join(self):
        result = check_pipeline(
            Pipeline(
                [
                    RET("probe", into="gate"),
                    CHECK(
                        Condition.context_contains("gate"),
                        then=RET("notes", into="slot"),
                        orelse=RET("other", into="slot"),
                    ),
                    REF(RefAction.CREATE, "Data: {slot}", key="qa"),
                    GEN("ans", prompt="qa"),
                ]
            )
        )
        assert not result.with_code("SPEAR111")
        assert not result.with_code("SPEAR102")


class TestBranchyFixture:
    """The demonstrated FP kill on the shipped branchy DL fixture."""

    def setup_method(self):
        self.source = (FIXTURES / "branchy_pipeline.spear").read_text()

    def _flow_insensitive(self) -> CheckResult:
        from repro.dl.compiler import compile_program
        from repro.dl.parser import parse

        compiled = compile_program(parse(self.source))
        out = CheckResult()
        for name, pipeline in sorted(compiled.pipelines.items()):
            env = AnalysisEnv(views=compiled.views)
            graph = build_dataflow(
                pipeline, env, name=name, path_sensitive=False
            )
            out.extend(run_analyzers(graph, env))
        return out.sort()

    def test_path_sensitive_kills_dead_arm_unused_prompt(self):
        sensitive = check_program(self.source)
        insensitive = self._flow_insensitive()
        # The flow-insensitive walk flags the dead arm's
        # "debug_scratch" key as unused — a false positive ...
        (fp,) = insensitive.with_code("SPEAR121")
        assert "debug_scratch" in fp.message
        # ... which path sensitivity kills, keeping the dead-branch
        # report itself.
        assert not sensitive.with_code("SPEAR121")
        assert sensitive.with_code("SPEAR148")

    def test_fp_prone_findings_are_a_subset(self):
        sensitive = keyed(check_program(self.source))
        insensitive = keyed(self._flow_insensitive())
        assert {k for k in sensitive if k[0] in FP_PRONE} <= insensitive

    def test_buggy_fixture_fp_prone_subset(self):
        source = (FIXTURES / "buggy_pipeline.spear").read_text()
        from repro.dl.compiler import compile_program
        from repro.dl.parser import parse

        compiled = compile_program(parse(source))
        insensitive = CheckResult()
        for name, pipeline in sorted(compiled.pipelines.items()):
            env = AnalysisEnv(views=compiled.views)
            graph = build_dataflow(
                pipeline, env, name=name, path_sensitive=False
            )
            insensitive.extend(run_analyzers(graph, env))
        sensitive = keyed(check_program(source))
        assert {k for k in sensitive if k[0] in FP_PRONE} <= keyed(
            insensitive
        )


# ---------------------------------------------------------------------------
# Property: on random branchy pipelines, path sensitivity never *adds*
# an FP-prone finding the flow-insensitive walk would not also report.

SLOTS = ("alpha", "beta")


def _arm(kind: str, arg) -> object:
    if kind == "ret":
        return RET("notes", into=arg)
    if kind == "append":
        return REF(RefAction.APPEND, f"More about {arg}.", key="qa")
    return REF(RefAction.CREATE, f"Aside on {arg}.", key=f"aside_{arg}")


arm_step = st.tuples(
    st.sampled_from(("ret", "append", "create")), st.sampled_from(SLOTS)
)
conditions = st.sampled_from(
    (
        ("below", "confidence", 0.7),
        ("above", "confidence", 0.9),
        ("above", "never_signal", 0.5),
        ("contains", "alpha", None),
    )
)


def _condition(spec) -> Condition:
    kind, name, threshold = spec
    if kind == "below":
        return Condition.metadata_below(name, threshold)
    if kind == "above":
        return Condition.metadata_above(name, threshold)
    return Condition.context_contains(name)


branches = st.lists(
    st.tuples(conditions, arm_step, st.one_of(st.none(), arm_step)),
    min_size=1,
    max_size=4,
)


@settings(max_examples=40, deadline=None)
@given(branches=branches, tail_gen=st.booleans())
def test_path_sensitivity_only_removes_fp_prone_findings(branches, tail_gen):
    ops = [
        REF(RefAction.CREATE, "Answer briefly. ", key="qa"),
        GEN("draft", prompt="qa"),
    ]
    for condition, then_spec, else_spec in branches:
        ops.append(
            CHECK(
                _condition(condition),
                then=_arm(*then_spec),
                orelse=_arm(*else_spec) if else_spec else None,
            )
        )
    if tail_gen:
        ops.append(GEN("answer", prompt="qa"))
    pipeline = Pipeline(ops)
    sensitive = keyed(check_pipeline(pipeline))
    insensitive = keyed(flow_insensitive(pipeline))
    assert {k for k in sensitive if k[0] in FP_PRONE} <= insensitive
