"""Inline suppressions and the SPEAR199 useless-suppression meta-check."""

from pathlib import Path

from repro.analysis import CheckResult, Suppression, check_program
from repro.analysis.diagnostics import SourceSpan, make_diagnostic
from repro.analysis.suppressions import apply_suppressions
from repro.dl.lexer import collect_suppressions

FIXTURES = Path(__file__).parent.parent / "fixtures" / "dl"


class TestCollectSuppressions:
    def test_standalone_comment_targets_the_next_line(self):
        source = (
            "pipeline p {\n"
            "  # spear: ignore[SPEAR121]\n"
            '  REF[CREATE, "draft", key="scratch"]\n'
            "}\n"
        )
        (suppression,) = collect_suppressions(source)
        assert suppression.codes == ("SPEAR121",)
        assert suppression.comment_line == 2
        assert suppression.line == 3

    def test_trailing_comment_targets_its_own_line(self):
        source = (
            "pipeline p {\n"
            '  REF[CREATE, "q", key="qa"]\n'
            '  GEN["answer", prompt="qa"]  # spear: ignore[SPEAR101]\n'
            "}\n"
        )
        (suppression,) = collect_suppressions(source)
        assert suppression.line == 3
        assert suppression.comment_line == 3

    def test_multiple_codes_and_whitespace(self):
        source = "# spear: ignore[SPEAR121, spear148]\npipeline p {\n}\n"
        (suppression,) = collect_suppressions(source)
        assert suppression.codes == ("SPEAR121", "SPEAR148")

    def test_ordinary_comments_are_not_suppressions(self):
        assert collect_suppressions("# just a note\npipeline p {\n}\n") == []

    def test_unparseable_source_yields_nothing(self):
        assert collect_suppressions("pipeline ???") == []


class TestApplySuppressions:
    def _finding(self, code: str, line: int):
        return make_diagnostic(
            code, "x", span=SourceSpan(file="f.spear", line=line, column=3)
        )

    def test_matching_finding_is_silenced(self):
        suppression = Suppression(
            line=5, codes=("SPEAR121",), comment_line=4, comment_column=3
        )
        result = apply_suppressions(
            CheckResult([self._finding("SPEAR121", 5)]),
            [suppression],
            filename="f.spear",
        )
        assert len(result) == 0

    def test_non_matching_line_stays_and_yields_spear199(self):
        suppression = Suppression(
            line=9, codes=("SPEAR121",), comment_line=8, comment_column=3
        )
        result = apply_suppressions(
            CheckResult([self._finding("SPEAR121", 5)]),
            [suppression],
            filename="f.spear",
        )
        assert result.codes() == ["SPEAR121", "SPEAR199"]
        (meta,) = result.with_code("SPEAR199")
        assert meta.span.line == 8
        assert meta.data["suppressed_code"] == "SPEAR121"

    def test_unknown_code_is_reported_as_useless(self):
        suppression = Suppression(
            line=5, codes=("SPEAR999",), comment_line=4, comment_column=3
        )
        result = apply_suppressions(
            CheckResult(), [suppression], filename="f.spear"
        )
        (meta,) = result.with_code("SPEAR199")
        assert "unknown code" in meta.message

    def test_spear199_itself_cannot_be_suppressed(self):
        suppression = Suppression(
            line=4, codes=("SPEAR199",), comment_line=4, comment_column=3
        )
        result = apply_suppressions(
            CheckResult(), [suppression], filename="f.spear"
        )
        # The ignore[SPEAR199] did not silence the SPEAR199 it caused.
        assert result.codes() == ["SPEAR199"]


class TestEndToEnd:
    def test_suppressed_fixture(self):
        source = (FIXTURES / "suppressed_pipeline.spear").read_text()
        result = check_program(source, filename="suppressed_pipeline.spear")
        # The used suppression silenced the SPEAR121 on "scratch" ...
        assert not result.with_code("SPEAR121")
        # ... and the useless one came back as SPEAR199.
        (meta,) = result.with_code("SPEAR199")
        assert meta.data["suppressed_code"] == "SPEAR101"
        assert not result.has_errors

    def test_without_suppressions_the_finding_returns(self):
        source = (FIXTURES / "suppressed_pipeline.spear").read_text()
        result = check_program(source, suppressions=[])
        assert result.with_code("SPEAR121")
        assert not result.with_code("SPEAR199")
