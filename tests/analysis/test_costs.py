"""Static cost bounds and the SPEAR15x analyzers."""

from repro.analysis import (
    AnalysisEnv,
    build_dataflow,
    check_pipeline,
    estimate_costs,
)
from repro.core import (
    CHECK,
    GEN,
    REF,
    RETRY,
    Condition,
    Pipeline,
    RefAction,
)
from repro.resilience.policies import RetryPolicy


def summarize(pipeline: Pipeline):
    return estimate_costs(build_dataflow(pipeline, AnalysisEnv()))


class TestEstimateCosts:
    def test_bounds_are_ordered_and_priced(self):
        summary = summarize(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Answer the question. " * 10, key="qa"),
                    GEN("answer", prompt="qa"),
                ]
            )
        )
        assert summary.exact
        assert 0 < summary.lower.tokens <= summary.upper.tokens
        assert 0 < summary.lower.seconds <= summary.upper.seconds
        assert 0 < summary.lower.usd <= summary.upper.usd
        (gen,) = summary.operators
        assert gen.kind == "GEN"
        assert gen.max_runs == 1

    def test_conditional_gen_costs_nothing_in_the_lower_bound(self):
        summary = summarize(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Answer. ", key="qa"),
                    GEN("answer", prompt="qa"),
                    CHECK(
                        Condition.metadata_below("confidence", 0.7),
                        then=GEN("redo", prompt="qa"),
                    ),
                ]
            )
        )
        redo = next(op for op in summary.operators if op.label == 'GEN["redo"]')
        assert redo.lower.tokens == 0
        assert redo.upper.tokens > 0

    def test_retry_multiplies_the_upper_bound_only(self):
        plain = summarize(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Answer. ", key="qa"),
                    GEN("answer", prompt="qa"),
                ]
            )
        )
        retried = summarize(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Answer. ", key="qa"),
                    RETRY(
                        GEN("answer", prompt="qa"),
                        Condition.metadata_below("confidence", 0.7),
                        policy=RetryPolicy(max_attempts=3),
                    ),
                ]
            )
        )
        (gen,) = retried.operators
        assert gen.max_runs == 3
        assert retried.upper.tokens == 3 * plain.upper.tokens
        # The body is only guaranteed its first attempt.
        assert retried.lower.tokens == plain.lower.tokens

    def test_unknown_prompt_text_degrades_to_inexact(self):
        summary = summarize(Pipeline([GEN("answer", prompt="ghost")]))
        assert not summary.exact
        (gen,) = summary.operators
        assert not gen.exact
        # Zero prompt tokens, but the decode side is still priced.
        assert gen.upper.tokens > 0

    def test_dead_arm_gens_are_not_priced(self):
        summary = summarize(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Answer. ", key="qa"),
                    GEN("answer", prompt="qa"),
                    CHECK(
                        Condition.metadata_above("never_signal", 0.5),
                        then=GEN("dead", prompt="qa"),
                    ),
                ]
            )
        )
        assert all(op.label != 'GEN["dead"]' for op in summary.operators)


class TestSpear151DeadlineInfeasible:
    def _pipeline(self) -> Pipeline:
        return Pipeline(
            [
                REF(RefAction.CREATE, "Summarize the history. " * 40, key="qa"),
                GEN("answer", prompt="qa"),
            ]
        )

    def test_impossible_deadline_trips(self):
        result = check_pipeline(
            self._pipeline(),
            runtime={"scheduler": True, "deadline_s": 0.001},
        )
        (finding,) = result.with_code("SPEAR151")
        assert finding.operator == 'GEN["answer"]'
        assert finding.data["deadline_s"] == 0.001
        assert finding.data["lower_seconds"] > 0.001

    def test_generous_deadline_is_clean(self):
        result = check_pipeline(
            self._pipeline(),
            runtime={"scheduler": True, "deadline_s": 120.0},
        )
        assert not result.with_code("SPEAR151")

    def test_no_deadline_no_finding(self):
        result = check_pipeline(self._pipeline(), runtime={"scheduler": True})
        assert not result.with_code("SPEAR151")


class TestSpear152UnboundedFanout:
    def test_condition_on_unwritten_signal_trips(self):
        result = check_pipeline(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Answer. ", key="qa"),
                    RETRY(
                        GEN("answer", prompt="qa"),
                        Condition.metadata_below("external_score", 0.5),
                        policy=RetryPolicy(max_attempts=4),
                    ),
                ]
            )
        )
        (finding,) = result.with_code("SPEAR152")
        assert finding.data["attempts"] == 4

    def test_condition_on_body_written_signal_is_clean(self):
        # GEN writes M["confidence"], so the verdict can change.
        result = check_pipeline(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Answer. ", key="qa"),
                    RETRY(
                        GEN("answer", prompt="qa"),
                        Condition.metadata_below("confidence", 0.5),
                        policy=RetryPolicy(max_attempts=4),
                    ),
                ]
            )
        )
        assert not result.with_code("SPEAR152")

    def test_tokenless_body_is_clean(self):
        result = check_pipeline(
            Pipeline(
                [
                    RETRY(
                        REF(RefAction.CREATE, "Try again.", key="qa"),
                        Condition.metadata_below("external_score", 0.5),
                        policy=RetryPolicy(max_attempts=4),
                    ),
                    GEN("answer", prompt="qa"),
                ]
            )
        )
        assert not result.with_code("SPEAR152")


class TestSpear153CacheDefeatingRefiner:
    def test_refining_the_universal_key_trips(self):
        result = check_pipeline(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Review the claim.", key="qa"),
                    GEN("draft", prompt="qa"),
                    GEN("critique", prompt="qa"),
                    GEN("final", prompt="qa"),
                    CHECK(
                        Condition.metadata_below("confidence", 0.9),
                        then=REF(
                            RefAction.APPEND, "Be specific.", key="qa"
                        ),
                    ),
                ]
            )
        )
        (finding,) = result.with_code("SPEAR153")
        assert finding.data["keys"] == ("qa",)
        assert finding.data["rerun_steps"] >= 3
        assert finding.data["fraction"] >= 0.9

    def test_narrow_refiner_is_clean(self):
        # The refiner touches a key only the final GEN reads: most of
        # the pipeline survives a refinement.
        result = check_pipeline(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Review the claim.", key="qa"),
                    GEN("draft", prompt="qa"),
                    GEN("critique", prompt="qa"),
                    REF(RefAction.CREATE, "Follow up: ", key="followup"),
                    CHECK(
                        Condition.metadata_below("confidence", 0.9),
                        then=REF(
                            RefAction.APPEND, "Be specific.", key="followup"
                        ),
                    ),
                    GEN("final", prompt="followup"),
                ]
            )
        )
        assert not result.with_code("SPEAR153")

    def test_unconditional_prompt_construction_is_clean(self):
        # Top-of-pipeline CREATE/APPEND chains run exactly once; they
        # are not refinement sites.
        result = check_pipeline(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Part one. ", key="qa"),
                    REF(RefAction.APPEND, "Part two. ", key="qa"),
                    GEN("draft", prompt="qa"),
                    GEN("critique", prompt="qa"),
                    GEN("final", prompt="qa"),
                ]
            )
        )
        assert not result.with_code("SPEAR153")
