"""Lane-interference analyzers: SPEAR161, SPEAR162, SPEAR163."""

from repro.analysis import check_pipeline
from repro.core import (
    CHECK,
    GEN,
    MERGE,
    REF,
    RET,
    Condition,
    Pipeline,
    RefAction,
)


def racy_batch() -> Pipeline:
    return Pipeline(
        [
            REF(RefAction.CREATE, "Summarize: ", key="qa"),
            REF(RefAction.CREATE, "Cite sources.", key="style"),
            MERGE("qa", "style", into="final"),
            GEN("answer", prompt="final"),
        ]
    )


class TestSpear161PromptWriteRaces:
    def test_shared_prompts_flag_every_written_key(self):
        result = check_pipeline(
            racy_batch(),
            runtime={"lanes": 4, "shared_prompts": True},
        )
        findings = result.with_code("SPEAR161")
        assert {f.data["key"] for f in findings} == {"qa", "style", "final"}
        assert all(f.data["lanes"] == 4 for f in findings)

    def test_isolated_prompts_are_clean(self):
        result = check_pipeline(
            racy_batch(),
            runtime={"lanes": 4, "shared_prompts": False},
        )
        assert not result.with_code("SPEAR161")

    def test_single_lane_is_clean(self):
        result = check_pipeline(
            racy_batch(),
            runtime={"lanes": 1, "shared_prompts": True},
        )
        assert not result.with_code("SPEAR161")

    def test_shared_context_flags_slot_writes(self):
        result = check_pipeline(
            Pipeline(
                [
                    RET("notes", into="scratch"),
                    REF(RefAction.CREATE, "Data: {scratch}", key="qa"),
                    GEN("answer", prompt="qa"),
                ]
            ),
            sources=["notes"],
            runtime={"lanes": 2, "shared_context": True},
        )
        slots = [
            f.data["slot"]
            for f in result.with_code("SPEAR161")
            if "slot" in f.data
        ]
        assert "scratch" in slots


class TestSpear162RefineDuringServe:
    def test_refining_a_registered_key_trips(self):
        result = check_pipeline(
            Pipeline(
                [
                    GEN("answer", prompt="qa"),
                    CHECK(
                        Condition.metadata_below("confidence", 0.7),
                        then=REF(
                            RefAction.APPEND, "Explain.", key="qa"
                        ),
                    ),
                    GEN("answer_2", prompt="qa"),
                ]
            ),
            prompts={"qa": "Answer from the notes: "},
            runtime={"serve": True},
        )
        (finding,) = result.with_code("SPEAR162")
        assert finding.data["key"] == "qa"

    def test_fresh_working_key_is_clean(self):
        result = check_pipeline(
            Pipeline(
                [
                    REF(RefAction.CREATE, "scratch notes", key="scratch"),
                    GEN("answer", prompt="qa"),
                    CHECK(
                        Condition.metadata_below("confidence", 0.7),
                        then=GEN("retry", prompt="scratch"),
                    ),
                ]
            ),
            prompts={"qa": "Answer from the notes: "},
            runtime={"serve": True},
        )
        assert not result.with_code("SPEAR162")

    def test_not_serving_is_clean(self):
        result = check_pipeline(
            Pipeline(
                [
                    GEN("answer", prompt="qa"),
                    REF(RefAction.APPEND, "Explain.", key="qa"),
                    GEN("answer_2", prompt="qa"),
                ]
            ),
            prompts={"qa": "Answer from the notes: "},
            runtime={"scheduler": True},
        )
        assert not result.with_code("SPEAR162")

    def test_create_over_registered_key_trips_too(self):
        # A CREATE clobbers the registered template for all later
        # requests just as surely as an APPEND refines it.
        result = check_pipeline(
            Pipeline(
                [
                    REF(RefAction.CREATE, "replacement", key="qa"),
                    GEN("answer", prompt="qa"),
                ]
            ),
            prompts={"qa": "Answer from the notes: "},
            runtime={"serve": True},
        )
        (finding,) = result.with_code("SPEAR162")
        assert finding.data["key"] == "qa"


class TestSpear163MergeDeterminism:
    def test_merge_of_lane_written_keys_trips(self):
        result = check_pipeline(
            racy_batch(),
            runtime={"lanes": 4, "shared_prompts": True},
        )
        (finding,) = result.with_code("SPEAR163")
        assert finding.data["keys"] == ("qa", "style")
        assert finding.data["lanes"] == 4

    def test_merge_of_static_keys_is_clean(self):
        # Neither merged key is written by the pipeline itself, so the
        # merge is stable regardless of lane interleaving.
        result = check_pipeline(
            Pipeline(
                [
                    MERGE("qa", "style", into="final"),
                    GEN("answer", prompt="final"),
                ]
            ),
            prompts={"qa": "Ask.", "style": "Cite."},
            runtime={"lanes": 4, "shared_prompts": True},
        )
        assert not result.with_code("SPEAR163")

    def test_isolated_prompts_are_clean(self):
        result = check_pipeline(
            racy_batch(),
            runtime={"lanes": 4, "shared_prompts": False},
        )
        assert not result.with_code("SPEAR163")
