"""The dataflow extractor: read/write sets for every core + derived operator."""

import pytest

from repro.analysis import AnalysisEnv, build_dataflow
from repro.core import (
    CHECK,
    DELEGATE,
    DIFF,
    EXPAND,
    GEN,
    MAP,
    MERGE,
    REF,
    RET,
    RETRY,
    SWITCH,
    VIEW,
    Condition,
    Pipeline,
    RefAction,
    ViewRegistry,
)
from repro.core.algebra import FunctionOperator
from repro.resilience import RetryPolicy


def graph_of(ops, **env_kwargs):
    return build_dataflow(Pipeline(list(ops)), AnalysisEnv(**env_kwargs))


class TestRet:
    def test_writes_into_slot(self):
        graph = graph_of([RET("notes", query="p1")])
        node = graph.node('RET["notes"]')
        assert node.kind == "RET"
        assert node.data["source"] == "notes"
        assert node.context_writes == ("notes",)

    def test_into_override_and_prompt_read(self):
        graph = graph_of(
            [RET("notes", prompt="qa", into="slot")],
            prompts={"qa": "Search for {topic}"},
        )
        node = graph.node('RET["notes"]')
        assert node.context_writes == ("slot",)
        assert node.prompt_reads == ("qa",)
        assert "topic" in node.template_params


class TestGen:
    def test_reads_prompt_and_template_slots(self):
        graph = graph_of(
            [GEN("answer", prompt="qa")],
            prompts={"qa": "Notes: {notes}\nFocus: {focus}"},
            context=("notes",),
        )
        node = graph.node('GEN["answer"]')
        assert node.prompt_reads == ("qa",)
        assert set(node.template_params) == {"notes", "focus"}
        assert node.unbound_params == ("focus",)
        assert "answer" in node.context_writes
        assert "answer__result" in node.context_writes
        assert "gen_calls" in node.metadata_writes
        assert "confidence" in node.metadata_writes

    def test_extra_literals_shadow_template_reads(self):
        graph = graph_of(
            [GEN("answer", prompt="qa", extra={"focus": "dosage"})],
            prompts={"qa": "Focus: {focus}"},
        )
        node = graph.node('GEN["answer"]')
        assert node.template_params == ()
        assert node.unbound_params == ()

    def test_missing_prompt_recorded(self):
        graph = graph_of([GEN("answer", prompt="ghost")])
        assert graph.node('GEN["answer"]').missing_prompts == ("ghost",)


class TestRef:
    def test_create_then_read_tracks_literal_text(self):
        graph = graph_of(
            [
                REF(RefAction.CREATE, "Hello {name}", key="qa"),
                GEN("answer", prompt="qa"),
            ]
        )
        gen = graph.node('GEN["answer"]')
        assert gen.missing_prompts == ()
        assert gen.template_params == ("name",)

    def test_append_combines_known_texts(self):
        graph = graph_of(
            [
                REF(RefAction.CREATE, "Base {a}", key="qa"),
                REF(RefAction.APPEND, "More {b}", key="qa"),
                GEN("answer", prompt="qa"),
            ]
        )
        gen = graph.node('GEN["answer"]')
        assert set(gen.template_params) == {"a", "b"}

    def test_callable_refiner_makes_text_dynamic(self):
        graph = graph_of(
            [
                REF(RefAction.CREATE, lambda state, text: "{x}", key="qa"),
                GEN("answer", prompt="qa"),
            ]
        )
        gen = graph.node('GEN["answer"]')
        # The text is unknowable, so no template reads are claimed.
        assert gen.template_params == ()
        assert gen.missing_prompts == ()

    def test_ref_reads_quality_signals(self):
        graph = graph_of([REF(RefAction.CREATE, "x", key="qa")])
        node = graph.nodes[0]
        assert "confidence" in node.metadata_reads
        assert "refinements" in node.metadata_writes


class TestCheck:
    def test_condition_reads_and_branch_is_conditional(self):
        then = REF(RefAction.APPEND, "more", key="qa")
        graph = graph_of(
            [
                REF(RefAction.CREATE, "base", key="qa"),
                CHECK(Condition.metadata_below("confidence", 0.7), then=then),
            ]
        )
        check = next(node for node in graph if node.kind == "CHECK")
        assert "confidence" in check.metadata_reads
        ref_nodes = [node for node in graph if node.kind == "REF"]
        assert ref_nodes[0].conditional is False
        assert ref_nodes[1].conditional is True

    def test_context_condition_reads_slot(self):
        graph = graph_of([CHECK(Condition.missing_context("orders"))])
        assert "orders" in graph.nodes[0].context_reads


class TestMerge:
    def test_reads_both_keys_writes_into(self):
        graph = graph_of(
            [MERGE("a", "b", into="m")], prompts={"a": "x", "b": "y"}
        )
        node = graph.nodes[0]
        assert set(node.prompt_reads) == {"a", "b"}
        assert node.prompt_writes == ("m",)
        assert node.missing_prompts == ()

    def test_missing_keys_recorded(self):
        graph = graph_of([MERGE("a", "b")])
        assert set(graph.nodes[0].missing_prompts) == {"a", "b"}


class TestDelegate:
    def test_payload_is_hard_context_read(self):
        graph = graph_of(
            [DELEGATE("validator", "answer", into="verdict")],
            context=("answer",),
        )
        node = graph.nodes[0]
        assert node.data["agent"] == "validator"
        assert node.context_reads == ("answer",)
        assert node.missing_context == ()
        assert node.context_writes == ("verdict",)
        assert "delegations" in node.metadata_writes

    def test_missing_payload_recorded(self):
        graph = graph_of([DELEGATE("validator", "ghost", into="verdict")])
        assert graph.nodes[0].missing_context == ("ghost",)


class TestExpand:
    def test_lowered_to_ref_write(self):
        graph = graph_of(
            [EXPAND("qa", "extra instruction")], prompts={"qa": "base"}
        )
        node = graph.nodes[0]
        assert node.kind == "REF"
        assert node.prompt_writes == ("qa",)


class TestRetry:
    def test_inner_op_marked_repeated(self):
        inner = GEN("answer", prompt="qa")
        retry = RETRY(
            inner,
            Condition.metadata_below("confidence", 0.5),
            refine=REF(RefAction.APPEND, "try again", key="qa"),
            policy=RetryPolicy(max_attempts=3),
        )
        graph = graph_of([retry], prompts={"qa": "text"})
        gen = graph.node('GEN["answer"]')
        assert gen.repeated is True
        refine = next(node for node in graph if node.kind == "REF")
        assert refine.conditional is True
        retry_node = next(node for node in graph if node.kind == "RETRY")
        assert retry_node.data["has_policy"] is True
        assert "confidence" in retry_node.metadata_reads

    def test_missing_policy_flagged_in_data(self):
        retry = RETRY(
            GEN("answer", prompt="qa"),
            Condition.metadata_below("confidence", 0.5),
        )
        graph = graph_of([retry], prompts={"qa": "text"})
        retry_node = next(node for node in graph if node.kind == "RETRY")
        assert retry_node.data["has_policy"] is False


class TestMap:
    def test_writes_every_key(self):
        graph = graph_of(
            [MAP(["p1", "p2"], lambda state, text: text.upper())],
            prompts={"p1": "a", "p2": "b"},
        )
        node = graph.nodes[0]
        assert node.kind == "MAP"
        assert set(node.prompt_writes) == {"p1", "p2"}


class TestSwitch:
    def test_cases_conditional_and_atoms_read(self):
        switch = SWITCH(
            cases=[
                (
                    Condition.metadata_below("confidence", 0.5),
                    REF(RefAction.CREATE, "low", key="qa"),
                ),
                (
                    Condition.context_contains("orders"),
                    REF(RefAction.CREATE, "high", key="qa"),
                ),
            ],
            default=REF(RefAction.CREATE, "default", key="qa"),
        )
        graph = graph_of([switch])
        node = next(n for n in graph if n.kind == "SWITCH")
        assert "confidence" in node.metadata_reads
        assert "orders" in node.context_reads
        assert all(n.conditional for n in graph if n.kind == "REF")


class TestView:
    def test_resolves_text_through_registry(self):
        views = ViewRegistry()
        views.define("base", "Answer about {topic}.", params=("topic",))
        graph = graph_of(
            [
                VIEW("base", key="qa", params={"topic": "dosage"}),
                GEN("answer", prompt="qa"),
            ],
            views=views,
        )
        view_node = next(n for n in graph if n.kind == "VIEW")
        assert view_node.prompt_writes == ("qa",)
        gen = graph.node('GEN["answer"]')
        # {topic} was consumed by the view params; nothing leaks through.
        assert gen.template_params == ()

    def test_leftover_placeholders_become_context_reads(self):
        views = ViewRegistry()
        views.define("base", "Notes:\n{notes}")
        graph = graph_of(
            [VIEW("base", key="qa"), GEN("answer", prompt="qa")],
            views=views,
        )
        gen = graph.node('GEN["answer"]')
        assert gen.template_params == ("notes",)

    def test_unknown_view_recorded_as_error(self):
        graph = graph_of([VIEW("ghost", key="qa")], views=ViewRegistry())
        node = graph.nodes[0]
        assert "view_error" in node.data
        assert "ghost" in node.data["view_error"]

    def test_analysis_does_not_warm_view_cache(self):
        views = ViewRegistry()
        views.define("base", "static text")
        graph_of([VIEW("base", key="qa")], views=views)
        key = views.cache.key("base", {}, version=0)
        assert views.cache.get(key) is None


class TestDiff:
    def test_reads_versioned_keys_writes_into(self):
        graph = graph_of(
            [DIFF("qa@0", "qa", into="drift")], prompts={"qa": "text"}
        )
        node = graph.nodes[0]
        assert node.prompt_reads == ("qa",)
        assert node.context_writes == ("drift",)


class TestOpaque:
    def test_function_operator_sets_havoc(self):
        opaque = FunctionOperator(lambda state: state, "f_custom")
        graph = graph_of(
            [opaque, GEN("answer", prompt="ghost")],
        )
        assert graph.has_opaque
        gen = graph.node('GEN["answer"]')
        assert gen.under_havoc is True
        # Post-havoc missing claims are suppressed.
        assert gen.missing_prompts == ()


class TestGraphApi:
    def test_node_lookup_lists_available_labels(self):
        graph = graph_of([GEN("answer", prompt="qa")], prompts={"qa": "x"})
        with pytest.raises(KeyError) as excinfo:
            graph.node("nope")
        assert 'GEN["answer"]' in str(excinfo.value)

    def test_aggregate_sets(self):
        graph = graph_of(
            [
                RET("notes"),
                REF(RefAction.CREATE, "Notes: {notes}", key="qa"),
                GEN("answer", prompt="qa"),
            ]
        )
        assert graph.prompt_read_set() == {"qa"}
        assert graph.prompt_write_set() == {"qa"}
        assert "notes" in graph.context_read_set()
        assert {"notes", "answer", "answer__result"} <= graph.context_write_set()

    def test_as_footprint_speaks_cache_vocabulary(self):
        from repro.core.footprint import Footprint

        graph = graph_of(
            [GEN("answer", prompt="qa")], prompts={"qa": "Notes: {notes}"}
        )
        footprint = graph.node('GEN["answer"]').as_footprint()
        assert isinstance(footprint, Footprint)
        assert footprint.prompt_keys == ("qa",)
        assert "notes" in dict(footprint.context_reads)
        assert "answer" in footprint.context_writes

    def test_nested_pipeline_extends_path(self):
        inner = Pipeline([GEN("answer", prompt="qa")], name="inner")
        graph = graph_of([inner], prompts={"qa": "x"})
        assert graph.node('GEN["answer"]').path == ("inner",)
