"""SPEAR171/172 cross-validation: checker verdicts mirror fuse_refs.

The fusion-safety analyzer and the optimizer share one classifier,
:func:`repro.optimizer.fusion.ref_fusion_compatibility`.  These tests pin
the contract from both sides: every pair the checker marks fusable is in
fact fused by ``fuse_refs``, and every pair it flags as unsafe survives
optimization un-fused.
"""

from repro.analysis import AnalysisEnv, build_dataflow, run_analyzers
from repro.core import GEN, REF, Pipeline, RefAction
from repro.optimizer import fuse_refs, ref_fusion_compatibility


def fusion_findings(ops):
    pipeline = Pipeline(list(ops))
    env = AnalysisEnv()
    graph = build_dataflow(pipeline, env)
    return [
        diagnostic
        for diagnostic in run_analyzers(graph, env)
        if diagnostic.code in ("SPEAR171", "SPEAR172")
    ]


def seed_then(*refs):
    return [
        REF(RefAction.CREATE, "Base.", key="qa"),
        *refs,
        GEN("answer", prompt="qa"),
    ]


class TestFusableAdvice:
    def test_spear171_pair_is_actually_fused(self):
        ops = seed_then(
            REF(RefAction.APPEND, "Add citations.", key="qa", mode="MANUAL"),
            REF(RefAction.APPEND, "Keep it short.", key="qa", mode="MANUAL"),
        )
        (finding,) = fusion_findings(ops)
        assert finding.code == "SPEAR171"
        fused = fuse_refs(Pipeline(ops))
        assert len(fused.operators) == len(ops) - 1

    def test_fused_pipeline_advises_nothing(self):
        ops = seed_then(
            REF(RefAction.APPEND, "Add citations.", key="qa", mode="MANUAL"),
            REF(RefAction.APPEND, "Keep it short.", key="qa", mode="MANUAL"),
        )
        fused = fuse_refs(Pipeline(ops))
        assert fusion_findings(fused.operators) == []


class TestUnsafePairs:
    def pairs(self):
        return {
            "incompatible-mode": (
                REF(RefAction.APPEND, "a", key="qa", mode="MANUAL"),
                REF(RefAction.APPEND, "b", key="qa", mode="AUTO"),
            ),
            "incompatible-condition": (
                REF(
                    RefAction.APPEND,
                    "a",
                    key="qa",
                    condition='M["confidence"] < 0.5',
                ),
                REF(
                    RefAction.APPEND,
                    "b",
                    key="qa",
                    condition='M["confidence"] < 0.9',
                ),
            ),
            "dynamic": (
                REF(RefAction.APPEND, "a", key="qa"),
                REF(RefAction.APPEND, lambda state, text: text, key="qa"),
            ),
        }

    def test_spear172_pairs_never_fused(self):
        for verdict, (first, second) in self.pairs().items():
            assert ref_fusion_compatibility(first, second) == verdict
            ops = seed_then(first, second)
            (finding,) = fusion_findings(ops)
            assert finding.code == "SPEAR172", verdict
            assert finding.data["verdict"] == verdict
            fused = fuse_refs(Pipeline(ops))
            assert len(fused.operators) == len(ops), verdict

    def test_different_keys_are_unrelated(self):
        ops = [
            REF(RefAction.CREATE, "Base.", key="qa"),
            REF(RefAction.CREATE, "Other.", key="aux"),
            REF(RefAction.APPEND, "a", key="qa"),
            REF(RefAction.APPEND, "b", key="aux"),
            GEN("answer", prompt="qa"),
            GEN("aux_answer", prompt="aux"),
        ]
        assert fusion_findings(ops) == []


class TestCheckerOptimizerAgreement:
    def test_every_verdict_matches_fuse_behavior(self):
        # For each classified pair: checker says fusable <=> fuse_refs
        # shrinks the pipeline by exactly one operator.
        catalogue = [
            (
                REF(RefAction.APPEND, "a", key="qa", mode="AUTO"),
                REF(RefAction.APPEND, "b", key="qa", mode="AUTO"),
            ),
            (
                REF(RefAction.APPEND, "a", key="qa", mode="MANUAL"),
                REF(RefAction.APPEND, "b", key="qa", mode="AUTO"),
            ),
            (
                REF(RefAction.APPEND, "a", key="qa"),
                REF(RefAction.APPEND, lambda s, t: t, key="qa"),
            ),
        ]
        for first, second in catalogue:
            verdict = ref_fusion_compatibility(first, second)
            ops = seed_then(first, second)
            fused = fuse_refs(Pipeline(ops))
            did_fuse = len(fused.operators) == len(ops) - 1
            assert did_fuse == (verdict == "fusable")
