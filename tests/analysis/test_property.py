"""Property test: static read sets over-approximate runtime footprints.

The soundness contract of the dataflow extractor is one-directional: for
any pipeline it can fully see (literal refinements, no opaque operators),
every context slot an operator *actually* reads during execution must
already appear in the statically extracted read set.  We generate random
but valid-by-construction pipelines, execute them against a simulated
model, and compare the runtime :class:`Footprint` claims against the
graph.  The prefix cache is disabled because ``GEN.footprint`` opts out
of cacheability (returns None) while kv-cache state can leak into its
signals.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AnalysisEnv, build_dataflow
from repro.core import CHECK, GEN, REF, RET, Condition, Pipeline, RefAction
from repro.core.state import ExecutionState
from repro.llm.model import SimulatedLLM

SLOTS = ("alpha", "beta", "gamma")
GEN_LABELS = ("draft", "answer")
PLACEHOLDER_POOL = SLOTS + GEN_LABELS


def fresh_state() -> ExecutionState:
    state = ExecutionState(
        model=SimulatedLLM("qwen2.5-7b-instruct", enable_prefix_cache=False)
    )
    state.register_source(
        "seed", lambda state, query: f"seed:{query}", pure=True
    )
    return state


def template_text(placeholders: list[str]) -> str:
    parts = ["Consider the evidence."]
    parts.extend(f"{name}: {{{name}}}" for name in placeholders)
    return "\n".join(parts)


placeholders = st.lists(
    st.sampled_from(PLACEHOLDER_POOL), max_size=2, unique=True
)

ret_step = st.tuples(st.just("ret"), st.sampled_from(SLOTS))
append_step = st.tuples(st.just("append"), placeholders)
gen_step = st.tuples(st.just("gen"), st.sampled_from(GEN_LABELS))
check_step = st.tuples(st.just("check"), placeholders)

steps = st.lists(
    st.one_of(ret_step, append_step, gen_step, check_step),
    min_size=1,
    max_size=6,
)


def build_pipeline(seed_placeholders: list[str], tail) -> Pipeline:
    ops = [REF(RefAction.CREATE, template_text(seed_placeholders), key="qa")]
    for kind, arg in tail:
        if kind == "ret":
            ops.append(RET("seed", query=f"lookup-{arg}", into=arg))
        elif kind == "append":
            ops.append(REF(RefAction.APPEND, template_text(arg), key="qa"))
        elif kind == "gen":
            ops.append(GEN(arg, prompt="qa"))
        elif kind == "check":
            ops.append(
                CHECK(
                    Condition.metadata_below("confidence", 0.9),
                    then=REF(RefAction.APPEND, template_text(arg), key="qa"),
                )
            )
    return Pipeline(ops)


@settings(max_examples=40, deadline=None)
@given(seed_placeholders=placeholders, tail=steps)
def test_static_reads_superset_runtime_reads(seed_placeholders, tail):
    pipeline = build_pipeline(seed_placeholders, tail)
    graph = build_dataflow(pipeline, AnalysisEnv())
    static_reads = graph.context_read_set()

    state = fresh_state()
    runtime_reads: set[str] = set()
    for operator in pipeline.operators:
        footprint = operator.footprint(state)
        if footprint is not None:
            runtime_reads.update(key for key, _ in footprint.context_reads)
        state = operator.apply(state)

    assert runtime_reads <= static_reads, (
        f"runtime read {sorted(runtime_reads - static_reads)} "
        f"not claimed statically (static set: {sorted(static_reads)})"
    )


@settings(max_examples=20, deadline=None)
@given(seed_placeholders=placeholders, tail=steps)
def test_static_writes_cover_runtime_write_claims(seed_placeholders, tail):
    pipeline = build_pipeline(seed_placeholders, tail)
    graph = build_dataflow(pipeline, AnalysisEnv())
    static_writes = graph.context_write_set()

    state = fresh_state()
    runtime_writes: set[str] = set()
    for operator in pipeline.operators:
        footprint = operator.footprint(state)
        if footprint is not None:
            runtime_writes.update(footprint.context_writes)
        state = operator.apply(state)

    assert runtime_writes <= static_writes
