"""SARIF rendering and deterministic diagnostic ordering."""

import json

from repro.analysis import check_pipeline, check_program, to_sarif
from repro.analysis.diagnostics import (
    CheckResult,
    Diagnostic,
    SourceSpan,
    make_diagnostic,
)
from repro.core import GEN, Pipeline


class TestToSarif:
    def _log(self):
        result = check_pipeline(Pipeline([GEN("answer", prompt="ghost")]))
        return to_sarif(result), result

    def test_shape_and_version(self):
        log, result = self._log()
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "spear-check"
        assert len(run["results"]) == len(result)
        # The whole log must be JSON-serializable.
        json.dumps(log)

    def test_rules_cover_exactly_the_present_codes(self):
        log, result = self._log()
        (run,) = log["runs"]
        rule_ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
        assert rule_ids == result.codes()
        (rule,) = [r for r in rule_ids if r == "SPEAR101"]
        assert rule == "SPEAR101"

    def test_severity_maps_to_sarif_levels(self):
        log, __ = self._log()
        (run,) = log["runs"]
        levels = {res["ruleId"]: res["level"] for res in run["results"]}
        assert levels["SPEAR101"] == "error"

    def test_spans_become_physical_locations(self):
        source = (
            "pipeline p {\n"
            '  GEN["answer", prompt="ghost"]\n'
            "}\n"
        )
        result = check_program(source, filename="p.spear")
        log = to_sarif(result)
        (run,) = log["runs"]
        located = [res for res in run["results"] if "locations" in res]
        assert located
        location = located[0]["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "p.spear"
        assert location["region"]["startLine"] >= 1

    def test_spanless_results_have_no_locations(self):
        log, __ = self._log()
        (run,) = log["runs"]
        assert all("locations" not in res for res in run["results"])


class TestOrdering:
    """Diagnostics are emitted in (file, line, column, code) order."""

    def test_sort_orders_by_span_then_code(self):
        def at(code, file, line, column):
            return make_diagnostic(
                code,
                "m",
                span=SourceSpan(file=file, line=line, column=column),
            )

        scrambled = CheckResult(
            [
                at("SPEAR121", "b.spear", 1, 1),
                at("SPEAR111", "a.spear", 9, 2),
                at("SPEAR101", "a.spear", 2, 5),
                at("SPEAR112", "a.spear", 2, 5),
                at("SPEAR101", "a.spear", 2, 1),
            ]
        ).sort()
        keys = [
            (d.span.file, d.span.line, d.span.column, d.code)
            for d in scrambled
        ]
        assert keys == sorted(keys)

    def test_spanless_findings_sort_by_pipeline_and_operator(self):
        scrambled = CheckResult(
            [
                make_diagnostic("SPEAR121", "m", pipeline="z", operator="op"),
                make_diagnostic("SPEAR121", "m", pipeline="a", operator="op2"),
                make_diagnostic("SPEAR121", "m", pipeline="a", operator="op1"),
            ]
        ).sort()
        anchors = [(d.pipeline, d.operator) for d in scrambled]
        assert anchors == [("a", "op1"), ("a", "op2"), ("z", "op")]

    def test_check_program_output_is_sorted(self):
        source = (
            "pipeline p {\n"
            '  REF[CREATE, "orphan", key="unused"]\n'
            '  GEN["answer", prompt="ghost"]\n'
            '  GEN["answer2", prompt="ghost2"]\n'
            "}\n"
        )
        result = check_program(source, filename="p.spear")
        assert len(result) >= 3
        keys = [Diagnostic.sort_key(d) for d in result]
        assert keys == sorted(keys)
