"""Strict mode: the checker as an execution gate on both runners."""

import pytest

from repro.core import CHECK, GEN, REF, RET, Condition, Pipeline, RefAction
from repro.core.state import ExecutionState
from repro.errors import SpearValidationError
from repro.llm.model import SimulatedLLM
from repro.obs.metrics import MetricsRegistry
from repro.runtime import Executor, ParallelBatchRunner, RuntimeOptions


def invalid_pipeline() -> Pipeline:
    return Pipeline([GEN("answer", prompt="ghost")])


def clean_pipeline() -> Pipeline:
    return Pipeline(
        [
            REF(RefAction.CREATE, "Summarize the material.", key="qa"),
            GEN("answer", prompt="qa"),
            CHECK(
                Condition.metadata_below("confidence", 0.99),
                then=REF(
                    RefAction.APPEND, "Answer in one sentence.", key="qa"
                ),
            ),
            GEN("revised", prompt="qa"),
        ]
    )


class TestExecutorStrict:
    def test_aborts_before_the_first_model_call(self):
        model = SimulatedLLM("qwen2.5-7b-instruct")
        executor = Executor(
            options=RuntimeOptions(model=model, strict=True)
        )
        with pytest.raises(SpearValidationError) as excinfo:
            executor.run(invalid_pipeline())
        assert model.calls == 0
        assert "SPEAR101" in excinfo.value.codes
        assert excinfo.value.diagnostics

    def test_non_strict_default_does_not_gate(self):
        model = SimulatedLLM("qwen2.5-7b-instruct")
        executor = Executor(options=RuntimeOptions(model=model))
        # Without strict mode the bad read surfaces at apply time instead.
        with pytest.raises(Exception) as excinfo:
            executor.run(invalid_pipeline())
        assert not isinstance(excinfo.value, SpearValidationError)

    def test_clean_path_identical_with_and_without_strict(self):
        results = {}
        for strict in (False, True):
            model = SimulatedLLM("qwen2.5-7b-instruct")
            executor = Executor(
                options=RuntimeOptions(model=model, strict=strict)
            )
            results[strict] = executor.run(clean_pipeline())
        relaxed, gated = results[False], results[True]
        assert dict(relaxed.context) == dict(gated.context)
        assert dict(relaxed.metadata) == dict(gated.metadata)
        assert relaxed.elapsed == gated.elapsed
        assert [e.kind for e in relaxed.events] == [
            e.kind for e in gated.events
        ]

    def test_strict_does_not_warm_the_view_cache(self):
        from repro.core import VIEW, ViewRegistry

        views = ViewRegistry()
        views.define("base", "Summarize the material.")
        model = SimulatedLLM("qwen2.5-7b-instruct")
        executor = Executor(
            options=RuntimeOptions(model=model, views=views, strict=True)
        )
        pipeline = Pipeline(
            [VIEW("base", key="qa"), GEN("answer", prompt="qa")]
        )
        before = views.cache.misses
        executor.run(pipeline)
        # The run itself takes the one miss; the pre-run check adds none.
        assert views.cache.misses == before + 1

    def test_diagnostics_metric_emitted(self):
        registry = MetricsRegistry()
        model = SimulatedLLM("qwen2.5-7b-instruct")
        executor = Executor(
            options=RuntimeOptions(
                model=model, metrics=registry, strict=True
            )
        )
        with pytest.raises(SpearValidationError):
            executor.run(invalid_pipeline())
        counter = registry.counter(
            "spear_check_diagnostics_total",
            code="SPEAR101",
            severity="error",
        )
        assert counter.value >= 1

    def test_warnings_do_not_block_execution(self):
        registry = MetricsRegistry()
        model = SimulatedLLM("qwen2.5-7b-instruct")
        executor = Executor(
            options=RuntimeOptions(
                model=model, metrics=registry, strict=True
            )
        )
        # Dead write is a warning (SPEAR112): the run must still happen.
        pipeline = Pipeline(
            [
                RET("a", into="slot"),
                RET("b", into="slot"),
                REF(RefAction.CREATE, "Use {slot}.", key="qa"),
                GEN("answer", prompt="qa"),
            ]
        )
        state = executor.new_state()
        state.register_source("a", lambda s, q: "first")
        state.register_source("b", lambda s, q: "second")
        result = executor.run(pipeline, state=state)
        assert result.output("answer")
        counter = registry.counter(
            "spear_check_diagnostics_total",
            code="SPEAR112",
            severity="warning",
        )
        assert counter.value >= 1


class TestParallelStrict:
    def make_runner(self, *, strict: bool) -> ParallelBatchRunner:
        model = SimulatedLLM("qwen2.5-7b-instruct")
        state = ExecutionState(model=model)

        def bind(lane_state: ExecutionState, item: str) -> None:
            lane_state.context.put("item", item)

        runner = ParallelBatchRunner(
            state,
            bind=bind,
            workers=2,
            options=RuntimeOptions(strict=strict),
        )
        runner._model = model
        return runner

    def test_aborts_before_any_lane_starts(self):
        runner = self.make_runner(strict=True)
        with pytest.raises(SpearValidationError) as excinfo:
            runner.run(invalid_pipeline(), items=["x", "y"])
        assert runner._model.calls == 0
        assert "SPEAR101" in excinfo.value.codes

    def test_open_context_suppresses_bind_time_slots(self):
        # {item} is only bound per-lane by the bind callback; strict mode
        # must not reject it as read-before-write.
        runner = self.make_runner(strict=True)
        pipeline = Pipeline(
            [
                REF(RefAction.CREATE, "Describe: {item}", key="qa"),
                GEN("answer", prompt="qa"),
            ]
        )
        batch = runner.run(pipeline, items=["alpha", "beta"])
        assert len(batch.items) == 2
        assert not batch.failures()
