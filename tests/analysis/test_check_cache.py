"""The incremental re-check cache: hits, invalidation, metrics, identity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CheckCache,
    cached_check_state,
    check_pipeline,
    fingerprint_check,
)
from repro.core import CHECK, GEN, REF, Condition, Pipeline, RefAction
from repro.core.state import ExecutionState
from repro.obs.metrics import MetricsRegistry


def pipeline(text: str = "Answer briefly. ") -> Pipeline:
    return Pipeline(
        [
            REF(RefAction.CREATE, text, key="qa"),
            GEN("answer", prompt="qa"),
        ]
    )


class TestFingerprint:
    def test_stable_across_equal_builds(self):
        assert fingerprint_check(pipeline()) == fingerprint_check(pipeline())

    def test_sensitive_to_pipeline_structure(self):
        assert fingerprint_check(pipeline()) != fingerprint_check(
            pipeline("A different template. ")
        )

    def test_sensitive_to_environment(self):
        base = fingerprint_check(pipeline())
        assert base != fingerprint_check(pipeline(), prompts={"qa": "x"})
        assert base != fingerprint_check(pipeline(), context=("notes",))
        assert base != fingerprint_check(pipeline(), open_context=True)
        assert base != fingerprint_check(
            pipeline(), runtime={"scheduler": True}
        )

    def test_sensitive_to_condition_text(self):
        def guarded(threshold: float) -> Pipeline:
            return Pipeline(
                [
                    REF(RefAction.CREATE, "Answer. ", key="qa"),
                    CHECK(
                        Condition.metadata_below("confidence", threshold),
                        then=GEN("redo", prompt="qa"),
                    ),
                    GEN("answer", prompt="qa"),
                ]
            )

        assert fingerprint_check(guarded(0.5)) != fingerprint_check(
            guarded(0.9)
        )

    def test_digest_memo_detects_operator_list_mutation(self):
        # The per-object digest memo must not serve a stale structural
        # hash after the operator list itself changes.
        target = pipeline()
        before = fingerprint_check(target)
        assert fingerprint_check(target) == before  # memoized path
        target.operators.append(GEN("extra", prompt="qa"))
        assert fingerprint_check(target) != before

    def test_digest_memo_shared_by_equal_pipelines(self):
        # Memoizing the first object must not stop a distinct-but-equal
        # build (which walks the structure fresh) from converging.
        first, second = pipeline(), pipeline()
        assert first is not second
        assert fingerprint_check(first) == fingerprint_check(second)


class TestCheckCache:
    def test_second_check_is_a_hit_with_the_same_result(self):
        cache = CheckCache()
        first = cache.check(pipeline())
        second = cache.check(pipeline())
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_changed_pipeline_misses(self):
        cache = CheckCache()
        cache.check(pipeline())
        cache.check(pipeline("Changed. "))
        assert (cache.hits, cache.misses) == (0, 2)

    def test_changed_runtime_misses(self):
        cache = CheckCache()
        cache.check(pipeline())
        cache.check(pipeline(), runtime={"lanes": 4, "shared_prompts": True})
        assert (cache.hits, cache.misses) == (0, 2)

    def test_lru_eviction_is_bounded(self):
        cache = CheckCache(maxsize=2)
        for text in ("a", "b", "c"):
            cache.check(pipeline(f"Template {text}. "))
        assert len(cache) == 2
        # "a" was evicted, so re-checking it misses again.
        cache.check(pipeline("Template a. "))
        assert cache.misses == 4

    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        cache = CheckCache()
        cache.check(pipeline(), metrics=metrics)
        cache.check(pipeline(), metrics=metrics)
        cache.check(pipeline(), metrics=metrics)
        assert metrics.get("spear_check_cache_misses_total").value == 1
        assert metrics.get("spear_check_cache_hits_total").value == 2

    def test_warm_result_matches_cold_byte_for_byte(self):
        cache = CheckCache()
        cold = check_pipeline(pipeline(), runtime={"scheduler": True})
        cache.check(pipeline(), runtime={"scheduler": True})
        warm = cache.check(pipeline(), runtime={"scheduler": True})
        assert warm.render() == cold.render()
        assert warm.to_json() == cold.to_json()


class TestCachedCheckState:
    def test_sees_prompt_store_changes(self):
        cache = CheckCache()
        state = ExecutionState()
        state.prompts.create("qa", "Answer briefly. ")
        target = Pipeline([GEN("answer", prompt="qa")])
        first = cached_check_state(target, state, cache=cache)
        assert not first.with_code("SPEAR101")
        # A different state without the prompt must not reuse the entry.
        missing = cached_check_state(target, ExecutionState(), cache=cache)
        assert missing.with_code("SPEAR101")
        assert cache.misses == 2


# ---------------------------------------------------------------------------
# Property: for randomized pipelines and runtimes, a warm cache returns
# diagnostics byte-identical to a cold analysis.

texts = st.sampled_from(
    ("Answer briefly. ", "Cite evidence. ", "Summarize: {notes} ")
)
thresholds = st.sampled_from((0.5, 0.7, 0.9))
runtimes = st.sampled_from(
    (
        None,
        {"scheduler": True},
        {"lanes": 4, "shared_prompts": True},
        {"serve": True},
        {"scheduler": True, "deadline_s": 0.001},
    )
)


@settings(max_examples=30, deadline=None)
@given(
    text=texts,
    threshold=thresholds,
    refine=st.booleans(),
    runtime=runtimes,
)
def test_warm_cache_is_byte_identical_to_cold(text, threshold, refine, runtime):
    ops = [
        REF(RefAction.CREATE, text, key="qa"),
        GEN("draft", prompt="qa"),
    ]
    if refine:
        ops.append(
            CHECK(
                Condition.metadata_below("confidence", threshold),
                then=REF(RefAction.APPEND, "Be specific.", key="qa"),
            )
        )
    ops.append(GEN("answer", prompt="qa"))
    target = Pipeline(ops)
    env = {"runtime": runtime} if runtime is not None else {}

    cold = check_pipeline(target, **env)
    cache = CheckCache()
    cache.check(target, **env)
    warm = cache.check(target, **env)
    assert cache.hits == 1
    assert warm.render() == cold.render()
    assert warm.to_json() == cold.to_json()
