"""The analyzer suite: one unit test per diagnostic code, plus fixtures."""

from pathlib import Path

import pytest

from repro.analysis import (
    CODE_CATALOG,
    CheckResult,
    Severity,
    check_pipeline,
    check_program,
)
from repro.core import (
    CHECK,
    DELEGATE,
    GEN,
    MERGE,
    REF,
    RET,
    RETRY,
    Condition,
    Pipeline,
    RefAction,
    ViewRegistry,
)

FIXTURES = Path(__file__).parent.parent / "fixtures" / "dl"


def codes(result: CheckResult) -> set[str]:
    return set(result.codes())


class TestPromptRefCodes:
    def test_spear101_undefined_prompt_ref(self):
        result = check_pipeline(Pipeline([GEN("answer", prompt="ghost")]))
        (finding,) = result.with_code("SPEAR101")
        assert finding.severity is Severity.ERROR
        assert "ghost" in finding.message

    def test_spear102_unbound_template_param(self):
        result = check_pipeline(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Hello {nobody}", key="qa"),
                    GEN("answer", prompt="qa"),
                ]
            )
        )
        (finding,) = result.with_code("SPEAR102")
        assert "nobody" in finding.message

    def test_spear103_shadowed_template_param(self):
        result = check_pipeline(
            Pipeline(
                [
                    RET("notes", into="focus"),
                    REF(RefAction.CREATE, "Focus: {focus}", key="qa"),
                    GEN("answer", prompt="qa", extra={"focus": "dosage"}),
                ]
            )
        )
        (finding,) = result.with_code("SPEAR103")
        assert "focus" in finding.message

    def test_spear104_view_resolution_error(self):
        from repro.core import VIEW

        views = ViewRegistry()
        views.define("needs", "About {topic}", params=("topic",))
        result = check_pipeline(
            Pipeline([VIEW("needs", key="qa")]), views=views
        )
        (finding,) = result.with_code("SPEAR104")
        assert "topic" in finding.message


class TestContextCodes:
    def test_spear111_read_before_write(self):
        result = check_pipeline(
            Pipeline(
                [
                    REF(RefAction.CREATE, "Data: {late}", key="qa"),
                    GEN("answer", prompt="qa"),
                    RET("notes", into="late"),
                ]
            )
        )
        (finding,) = result.with_code("SPEAR111")
        assert "late" in finding.message
        assert 'RET["notes"]' in finding.message

    def test_spear112_dead_write(self):
        result = check_pipeline(
            Pipeline([RET("a", into="slot"), RET("b", into="slot")])
        )
        (finding,) = result.with_code("SPEAR112")
        assert finding.operator == 'RET["a"]'

    def test_conditional_write_is_not_dead(self):
        result = check_pipeline(
            Pipeline(
                [
                    RET("a", into="slot"),
                    CHECK(
                        Condition.metadata_below("confidence", 0.5),
                        then=RET("b", into="slot"),
                    ),
                ]
            )
        )
        assert not result.with_code("SPEAR112")


class TestUnusedCodes:
    def test_spear121_unused_prompt(self):
        result = check_pipeline(
            Pipeline([REF(RefAction.CREATE, "orphan", key="nobody_reads")])
        )
        (finding,) = result.with_code("SPEAR121")
        assert "nobody_reads" in finding.message

    def test_spear122_unused_view(self):
        source = """
view used() {
  \"\"\"text\"\"\"
}
view orphan() {
  \"\"\"never instantiated\"\"\"
}
pipeline p {
  VIEW["used", key="qa"]
  GEN["answer", prompt="qa"]
}
"""
        result = check_program(source)
        (finding,) = result.with_code("SPEAR122")
        assert "orphan" in finding.message
        assert finding.severity is Severity.INFO

    def test_base_of_used_view_counts_as_used(self):
        source = """
view base() {
  \"\"\"root text\"\"\"
}
view child() extends base {
  \"\"\"{base} plus more\"\"\"
}
pipeline p {
  VIEW["child", key="qa"]
  GEN["answer", prompt="qa"]
}
"""
        assert not check_program(source).with_code("SPEAR122")


class TestControlCodes:
    def test_spear131_merge_unwritten_key(self):
        result = check_pipeline(Pipeline([MERGE("ghost1", "ghost2")]))
        findings = result.with_code("SPEAR131")
        assert {finding.data["key"] for finding in findings} == {
            "ghost1",
            "ghost2",
        }

    def test_spear141_unbounded_retry(self):
        retry = RETRY(
            GEN("answer", prompt="qa"),
            Condition.metadata_below("confidence", 0.5),
        )
        result = check_pipeline(Pipeline([retry]), prompts={"qa": "x"})
        (finding,) = result.with_code("SPEAR141")
        assert "RetryPolicy" in finding.message

    def test_dl_retry_always_bounded(self):
        source = """
pipeline p {
  REF[CREATE, "text", key="qa"]
  RETRY[GEN["answer", prompt="qa"], M["confidence"] < 0.5]
}
"""
        assert not check_program(source).with_code("SPEAR141")

    def test_spear142_delegate_cycle(self):
        result = check_pipeline(
            Pipeline([DELEGATE("agent", "loop", into="loop")])
        )
        (finding,) = result.with_code("SPEAR142")
        assert "loop" in finding.message

    def test_spear143_unknown_agent(self):
        result = check_pipeline(
            Pipeline([DELEGATE("ghost", "x", into="y")]),
            context=("x",),
            agents=["validator"],
        )
        (finding,) = result.with_code("SPEAR143")
        assert "validator" in finding.message

    def test_spear144_unknown_source(self):
        result = check_pipeline(
            Pipeline([RET("ghost_source")]), sources=["notes"]
        )
        (finding,) = result.with_code("SPEAR144")
        assert "notes" in finding.message

    def test_registration_checks_skipped_when_unknown(self):
        result = check_pipeline(
            Pipeline([RET("anything"), DELEGATE("anyone", "anything", into="v")])
        )
        assert not result.with_code("SPEAR143")
        assert not result.with_code("SPEAR144")

    def test_spear145_deadline_without_scheduler(self):
        pipeline = Pipeline([GEN("answer", prompt="qa")])
        result = check_pipeline(
            pipeline,
            prompts={"qa": "x"},
            runtime={"scheduler": None, "deadline_s": 5.0},
        )
        (finding,) = result.with_code("SPEAR145")
        assert finding.severity is Severity.WARNING
        assert "deadline_s" in str(finding.data["configured"])

    def test_spear145_priority_without_scheduler(self):
        result = check_pipeline(
            Pipeline([GEN("answer", prompt="qa")]),
            prompts={"qa": "x"},
            runtime={"scheduler": False, "priority": "interactive"},
        )
        (finding,) = result.with_code("SPEAR145")
        assert finding.data["configured"] == ("priority",)

    def test_spear145_silent_when_scheduler_enabled(self):
        result = check_pipeline(
            Pipeline([GEN("answer", prompt="qa")]),
            prompts={"qa": "x"},
            runtime={"scheduler": True, "deadline_s": 5.0},
        )
        assert not result.with_code("SPEAR145")

    def test_spear145_skipped_when_runtime_unknown(self):
        result = check_pipeline(
            Pipeline([GEN("answer", prompt="qa")]), prompts={"qa": "x"}
        )
        assert not result.with_code("SPEAR145")

    def test_spear147_serve_policy_without_scheduler(self):
        result = check_pipeline(
            Pipeline([GEN("answer", prompt="qa")]),
            prompts={"qa": "x"},
            runtime={"serve": True, "scheduler": False, "deadline_s": 5.0},
        )
        (finding,) = result.with_code("SPEAR147")
        assert finding.severity is Severity.WARNING
        assert "admission" in finding.message
        # the serving variant supersedes the standalone finding
        assert not result.with_code("SPEAR145")

    def test_spear147_serve_priority_without_scheduler(self):
        result = check_pipeline(
            Pipeline([GEN("answer", prompt="qa")]),
            prompts={"qa": "x"},
            runtime={"serve": True, "scheduler": None, "priority": "bulk"},
        )
        (finding,) = result.with_code("SPEAR147")
        assert finding.data["configured"] == ("priority",)

    def test_spear147_silent_when_pool_scheduled(self):
        result = check_pipeline(
            Pipeline([GEN("answer", prompt="qa")]),
            prompts={"qa": "x"},
            runtime={"serve": True, "scheduler": True, "deadline_s": 5.0},
        )
        assert not result.with_code("SPEAR147")

    def test_spear147_silent_without_serving_policy(self):
        result = check_pipeline(
            Pipeline([GEN("answer", prompt="qa")]),
            prompts={"qa": "x"},
            runtime={"serve": True, "scheduler": False},
        )
        assert not result.with_code("SPEAR147")

    def test_spear146_item_first_template(self):
        pipeline = Pipeline(
            [
                RET("notes", into="tweet"),
                REF(
                    RefAction.CREATE,
                    "Tweet: {tweet} Summarise the tweet in one neutral "
                    "sentence without hashtags.",
                    key="qa",
                ),
                GEN("answer", prompt="qa"),
            ]
        )
        (finding,) = check_pipeline(pipeline).with_code("SPEAR146")
        assert finding.severity is Severity.WARNING
        assert finding.data["placeholder"] == "tweet"
        assert finding.data["static_after"] > finding.data["static_before"]
        assert "before" in finding.data["fix_hint"]

    def test_spear146_instruction_first_is_clean(self):
        pipeline = Pipeline(
            [
                RET("notes", into="tweet"),
                REF(
                    RefAction.CREATE,
                    "Summarise the following tweet in one neutral sentence "
                    "without hashtags: {tweet}",
                    key="qa",
                ),
                GEN("answer", prompt="qa"),
            ]
        )
        assert not check_pipeline(pipeline).with_code("SPEAR146")

    def test_spear146_skipped_for_dynamic_templates(self):
        pipeline = Pipeline(
            [
                RET("notes", into="tweet"),
                REF(RefAction.CREATE, lambda entry, state: "x", key="qa"),
                GEN("answer", prompt="qa"),
            ]
        )
        assert not check_pipeline(pipeline).with_code("SPEAR146")


class TestReachabilityCodes:
    def test_spear148_metadata_check_never_fires(self):
        check = CHECK(
            Condition.metadata_above("never_written", 0.5),
            then=REF(RefAction.CREATE, "x", key="qa"),
        )
        result = check_pipeline(Pipeline([check]))
        (finding,) = result.with_code("SPEAR148")
        assert "never fire" in finding.message

    def test_run_once_idiom_not_flagged(self):
        # "orders" not in C guarding its own RET is the paper's standard
        # conditional-retrieval idiom; statically true but useful.
        check = CHECK(
            Condition.missing_context("orders"),
            then=RET("order_lookup", into="orders"),
        )
        assert not check_pipeline(Pipeline([check])).with_code("SPEAR148")

    def test_written_signal_is_unknowable(self):
        pipeline = Pipeline(
            [
                REF(RefAction.CREATE, "x", key="qa"),
                GEN("answer", prompt="qa"),
                CHECK(
                    Condition.metadata_below("confidence", 0.5),
                    then=REF(RefAction.APPEND, "more", key="qa"),
                ),
            ]
        )
        assert not check_pipeline(pipeline).with_code("SPEAR148")


class TestFixtures:
    def test_buggy_fixture_trips_many_distinct_codes(self):
        source = (FIXTURES / "buggy_pipeline.spear").read_text()
        result = check_program(source, filename="buggy_pipeline.spear")
        assert result.has_errors
        assert len(codes(result)) >= 6
        assert {
            "SPEAR101",
            "SPEAR102",
            "SPEAR111",
            "SPEAR112",
            "SPEAR121",
            "SPEAR122",
            "SPEAR131",
            "SPEAR142",
            "SPEAR146",
            "SPEAR148",
            "SPEAR172",
        } <= codes(result)

    def test_buggy_fixture_spans_point_into_the_file(self):
        source = (FIXTURES / "buggy_pipeline.spear").read_text()
        result = check_program(source, filename="buggy_pipeline.spear")
        for finding in result:
            assert finding.span is not None
            assert finding.span.file == "buggy_pipeline.spear"
            assert finding.span.line > 0
            assert finding.span.column > 0

    def test_clean_fixture_is_clean(self):
        source = (FIXTURES / "clean_pipeline.spear").read_text()
        result = check_program(source)
        assert len(result) == 0

    def test_syntax_error_becomes_spear001(self):
        result = check_program("pipeline p { GEN[", filename="broken.spear")
        (finding,) = result.with_code("SPEAR001")
        assert finding.span is not None
        assert finding.span.file == "broken.spear"

    def test_compile_error_becomes_spear002(self):
        result = check_program('pipeline p { TELEPORT["x"] }')
        (finding,) = result.with_code("SPEAR002")
        assert "TELEPORT" in finding.message


class TestExamplesGate:
    EXAMPLES = Path(__file__).parent.parent.parent / "examples"

    def test_spear_dl_demo_source_checks_clean(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "spear_dl_demo_for_check", self.EXAMPLES / "spear_dl_demo.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        result = check_program(module.SOURCE)
        assert not result.has_errors
        assert len(result) == 0

    def test_spear_file_example_checks_clean(self):
        source = (self.EXAMPLES / "enoxaparin_qa.spear").read_text()
        result = check_program(source)
        assert not result.has_errors
        assert len(result) == 0


class TestDiagnosticFramework:
    def test_catalog_covers_every_emitted_code(self):
        source = (FIXTURES / "buggy_pipeline.spear").read_text()
        for finding in check_program(source):
            assert finding.code in CODE_CATALOG
            assert finding.name == CODE_CATALOG[finding.code][1]

    def test_with_code_rejects_unknown_codes_listing_catalog(self):
        with pytest.raises(KeyError) as excinfo:
            CheckResult().with_code("SPEAR999")
        assert "SPEAR101" in str(excinfo.value)

    def test_to_dict_round_trips_counts(self):
        source = (FIXTURES / "buggy_pipeline.spear").read_text()
        result = check_program(source)
        payload = result.to_dict()
        assert payload["errors"] == len(result.errors)
        assert len(payload["diagnostics"]) == len(result)
