"""SPEAR-DL: the declarative developer layer (paper §6).

The same clinical pipeline as examples/enoxaparin_qa.py, expressed in the
declarative language instead of the Python API: views with parameters and
composition, a pipeline of operator terms, CHECK conditions in the paper's
own notation, and delegation — compiled to the identical operator objects.

Run: ``python examples/spear_dl_demo.py``
"""

from repro import ExecutionState, SimulatedLLM
from repro.agents import ValidationAgent
from repro.data import make_clinical_corpus
from repro.dl import compile_source, parse
from repro.retrieval import clinical_sources

SOURCE = '''
# Views: parameterized, composable prompt templates.
view clinical_base() {
  """### Task
You are reviewing the clinical chart of one patient.
Answer from the notes only; do not invent information."""
  tags: clinical
}

view med_summary(drug) extends clinical_base {
  """Summarize the patient's medication history and highlight any use of {drug}.
Notes:
{initial_notes}"""
  tags: clinical, summary
}

# The adaptive QA pipeline, in the paper's operator notation.
pipeline enoxaparin_qa {
  RET["initial_notes", query="p0001"]
  VIEW["med_summary", key="qa", params={drug: "Enoxaparin"}]
  GEN["answer_0", prompt="qa"]
  CHECK[M["confidence"] < 0.9] -> REF[APPEND, "Be specific about dosage and indicate whether Enoxaparin was administered in the last 48 hours.", key="qa", mode="manual"]
  CHECK["orders" not in C] -> RET["order_lookup", query="p0001", into="orders"]
  REF[APPEND, "Structured orders:\\n{orders}", key="qa"]
  GEN["answer_1", prompt="qa"]
  DIFF["qa@0", "qa", into="prompt_drift"]
  DELEGATE["validation_agent", payload="answer_1", into="validation"]
}
'''


def main() -> None:
    # Parse → AST → compile; the AST is inspectable on its own.
    program = parse(SOURCE)
    print(f"parsed {len(program.views)} views, {len(program.pipelines)} pipelines")
    for statement in program.pipeline("enoxaparin_qa").statements:
        arrow = f" -> {statement.then.name}" if statement.then else ""
        print(f"  {statement.op.name}{arrow}")
    print()

    compiled = compile_source(SOURCE)

    corpus = make_clinical_corpus(20, seed=11)
    llm = SimulatedLLM("qwen2.5-7b-instruct")
    llm.bind_clinical(corpus)
    state = ExecutionState(model=llm, views=compiled.views, clock=llm.clock)
    for name, source in clinical_sources(corpus).items():
        state.register_source(name, source)
    state.register_agent("validation_agent", ValidationAgent())

    state = compiled.pipeline("enoxaparin_qa").apply(state)

    print(f"answer_0: {state.C['answer_0']}")
    print(f"answer_1: {state.C['answer_1']}")
    print(f"evidence score: {state.C['validation']['evidence_score']:.2f}")
    drift = state.C["prompt_drift"]
    print(
        f"prompt drift since v0: +{drift['added_lines']} lines, "
        f"similarity {drift['similarity']:.2f}"
    )


if __name__ == "__main__":
    main()
