"""Quickstart: prompts as first-class data in five minutes.

Builds the smallest meaningful SPEAR pipeline: create a prompt in the
store P, generate, react to the confidence signal in M with a runtime
refinement, regenerate, and inspect the prompt's provenance.

Run: ``python examples/quickstart.py [TRACE_PATH]``

With a ``TRACE_PATH`` argument the run's event log is exported as JSONL,
ready for offline analysis with ``spear stats`` / ``spear trace``.
"""

import sys
from pathlib import Path

from repro import (
    CHECK,
    Condition,
    ExecutionState,
    GEN,
    REF,
    RefAction,
    SimulatedLLM,
)
from repro.core.history import trace
from repro.data import make_tweet_corpus


def main(trace_path: str | Path | None = None) -> None:
    # A seeded corpus grounds the simulated backend: it actually performs
    # the tasks prompts ask for, with accuracy that depends on the prompt.
    corpus = make_tweet_corpus(50, seed=7)
    llm = SimulatedLLM("qwen2.5-7b-instruct")
    llm.bind_tweets(corpus)

    state = ExecutionState(model=llm, clock=llm.clock)
    tweet = corpus[5]
    print(f"tweet: {tweet.text}\n")

    # P: the prompt store. Prompts are structured entries, not strings.
    state.prompts.create(
        "judge",
        "Select the tweet only if its sentiment is negative.\n"
        f"Respond with yes or no.\nTweet:\n{tweet.text}",
    )

    # The pipeline: GEN, then a CHECK over metadata M that refines the
    # prompt and retries when confidence is low.  Operators compose with
    # ``>>`` and each consumes/produces the full (P, C, M) state.
    pipeline = (
        GEN("verdict", prompt="judge")
        >> CHECK(
            Condition.metadata_below("confidence", 0.9),
            REF(
                RefAction.APPEND,
                "Explain your reasoning step by step before answering.",
                key="judge",
                mode="AUTO",
            )
            >> GEN("verdict", prompt="judge"),
        )
    )
    state = pipeline.apply(state)

    # C: outputs; M: signals; P carries full provenance.
    print(f"verdict:    {state.C['verdict']}")
    print(f"confidence: {state.M['confidence']:.2f}")
    print(f"gen calls:  {state.M['gen_calls']}")
    print(f"latency:    {state.clock.now:.2f}s simulated\n")

    print("prompt provenance (the ref_log):")
    for line in trace(state.prompts["judge"]):
        print(f"  {line}")

    if trace_path is not None:
        from repro.runtime.tracing import export_events

        path = export_events(state.events, trace_path)
        print(f"\nevent trace exported to {path}"
              f" — try: spear stats {path}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
