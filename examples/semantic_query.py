"""Semantic operators over SPEAR: declarative queries, cost-based plans.

The paper positions SPEAR as the prompt-control substrate *under*
semantic data processing systems (§6, §8).  This example runs the same
declarative query in both stage orders and shows the executor's
selectivity-aware physical planning at work: it pilot-samples the
filter's pass rate, fuses the Map→Filter order, and keeps the Filter→Map
order sequential at low selectivity (predicate pushdown).

Run: ``python examples/semantic_query.py [negative_fraction]``
"""

import sys

from repro.data import make_tweet_corpus
from repro.llm import SimulatedLLM
from repro.semantic import SemanticQuery

MAP_INSTRUCTION = "Summarize and clean up the tweet in at most 30 words."
FILTER_INSTRUCTION = (
    "Select the tweet only if its sentiment is negative. Respond with yes or no."
)


def main() -> None:
    selectivity = float(sys.argv[1]) if len(sys.argv) > 1 else 0.2
    corpus = make_tweet_corpus(120, seed=7, negative_fraction=selectivity)
    items = [tweet.text for tweet in corpus]
    print(f"{len(items)} tweets, true selectivity {selectivity:.0%}\n")

    for label, build in (
        (
            "map -> filter",
            lambda q: q.sem_map(MAP_INSTRUCTION).sem_filter(FILTER_INSTRUCTION),
        ),
        (
            "filter -> map",
            lambda q: q.sem_filter(FILTER_INSTRUCTION).sem_map(MAP_INSTRUCTION),
        ),
    ):
        llm = SimulatedLLM("qwen2.5-7b-instruct")
        llm.bind_tweets(corpus)
        result = build(SemanticQuery(items)).execute(llm)
        print(f"query {label}:")
        for line in result.plan_description().splitlines():
            print(f"  plan: {line}")
        print(
            f"  kept {len(result.kept())} rows with {result.calls} calls "
            f"({result.pilot_calls} pilot) in {result.sim_seconds:.0f}s simulated"
        )
        sample = result.kept()[:2]
        for row in sample:
            print(f"    -> {row.text}")
        print()


if __name__ == "__main__":
    main()
