"""The paper's §2 use case: an adaptive Enoxaparin QA pipeline.

Demonstrates every core operator on a synthetic clinical corpus:

- view dispatch across note kinds (§4.2);
- RET with structured and prompt-based retrieval;
- CHECK-driven runtime refinement on low confidence (Table 1, row 2);
- Missing Order Retrieval (Table 1, row 3);
- MERGE of a fallback and primary prompt (Table 1, row 4);
- DELEGATE to the evidence-validation agent (Table 1, row 5);
- prompt history introspection and replay verification (§4.3, §6).

Run: ``python examples/enoxaparin_qa.py``
"""

from repro import (
    CHECK,
    Condition,
    DELEGATE,
    ExecutionState,
    GEN,
    MERGE,
    REF,
    RET,
    RefAction,
    SimulatedLLM,
    VIEW,
    verify_replay,
)
from repro.agents import ValidationAgent
from repro.core.history import trace
from repro.data import make_clinical_corpus
from repro.retrieval import clinical_sources


def build_state(corpus) -> ExecutionState:
    """Wire a state with the model, retrieval sources, agents, and views."""
    llm = SimulatedLLM("qwen2.5-7b-instruct")
    llm.bind_clinical(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    for name, source in clinical_sources(corpus).items():
        state.register_source(name, source)
    state.register_agent("validation_agent", ValidationAgent())

    # Views per note kind (§4.2): each emphasizes different chart aspects,
    # composed over a shared clinical scaffold.
    state.views.define(
        "clinical_base",
        "### Task\nYou are reviewing the clinical chart of one patient.\n"
        "Answer from the notes only; do not invent information.",
    )
    state.views.define(
        "discharge_summary",
        "Summarize the patient's medication history and highlight any use "
        "of {drug}. Emphasize medications, hospital course, and follow-up.\n"
        "Notes:\n{initial_notes}",
        params=("drug",),
        base="clinical_base",
        tags={"clinical", "discharge"},
    )
    state.views.define(
        "med_justification",
        "Why was {drug} administered? Explain the provider's reasoning, "
        "considering indication and risk.\nNotes:\n{initial_notes}",
        params=("drug",),
        base="clinical_base",
        tags={"clinical", "justification"},
    )
    return state


def main() -> None:
    corpus = make_clinical_corpus(20, seed=11)
    patient = next(p for p in corpus if p.on_enoxaparin and not p.has_orders)
    print(f"patient {patient.patient_id} (orders missing from the chart)\n")

    state = build_state(corpus)

    pipeline = (
        # Retrieve the chart and instantiate the QA prompt from a view.
        RET("initial_notes", query=patient.patient_id)
        >> VIEW("discharge_summary", key="qa_prompt", params={"drug": "Enoxaparin"})
        >> GEN("answer_0", prompt="qa_prompt")
        # Confidence-based retry: refine, then regenerate.
        >> CHECK(
            Condition.metadata_below("confidence", 0.9),
            REF(
                RefAction.APPEND,
                "Be specific about dosage and indicate whether Enoxaparin "
                "was administered in the last 48 hours.",
                key="qa_prompt",
                mode="MANUAL",
            ),
        )
        # Missing Order Retrieval: fetch structured orders if absent.
        >> CHECK(
            Condition.missing_context("orders"),
            RET("order_lookup", query=patient.patient_id, into="orders"),
        )
        >> REF(
            RefAction.APPEND,
            "Structured orders:\n{orders}",
            key="qa_prompt",
            function_name="f_inject_orders",
        )
        >> GEN("answer_1", prompt="qa_prompt")
        # Merge a fallback variant before the final generation.
        >> REF(
            RefAction.CREATE,
            "Include lab values like D-dimer and provider rationale.",
            key="qa_fallback",
        )
        >> MERGE("qa_fallback", "qa_prompt", into="qa_final")
        >> GEN("final_answer", prompt="qa_final")
        # Delegate evidence validation to an external agent.
        >> DELEGATE("validation_agent", "final_answer", into="validation")
    )
    state = pipeline.apply(state)

    print(f"answer_0:     {state.C['answer_0']}")
    print(f"answer_1:     {state.C['answer_1']}")
    print(f"final answer: {state.C['final_answer']}\n")
    report = state.C["validation"]
    print(f"evidence score: {report['evidence_score']:.2f}")
    for claim in report["claims"]:
        marker = "+" if claim["supported"] else "-"
        print(f"  {marker} {claim['kind']}: {claim['claim']}")

    print(f"\nground truth: dosage={patient.dosage}, timing={patient.timing}, "
          f"indication={patient.indication}")
    print(f"simulated latency: {state.clock.now:.2f}s, "
          f"gen calls: {state.M['gen_calls']}\n")

    print("qa_prompt evolution:")
    for line in trace(state.prompts["qa_prompt"]):
        print(f"  {line}")

    # Every text change is logged, so the whole store replays exactly.
    assert verify_replay(state.prompts)
    print("\nreplay verification: OK (history reconstructs every version)")


if __name__ == "__main__":
    main()
