"""The §7 sentiment workload: Map/Filter pipelines and operator fusion.

Runs the paper's two pipeline orders over a synthetic Sentiment140-style
corpus, asks the selectivity-aware fusion planner whether to fuse, then
executes both plans and compares measured time and accuracy — the live
version of Table 4 / Figure 1 at a chosen selectivity.

Run: ``python examples/sentiment_fusion.py [selectivity]``
"""

import sys

from repro.data import make_tweet_corpus
from repro.experiments.common import (
    FILTER_NEG_INSTRUCTION,
    MAP_INSTRUCTION,
    accuracy_against_negatives,
    make_llm,
    run_filter_map_sequential,
    run_fused,
    run_map_filter_sequential,
)
from repro.llm.profiles import get_profile
from repro.optimizer.fusion import FusionPlanner, LlmStage


def main() -> None:
    selectivity = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    corpus = make_tweet_corpus(300, seed=7, negative_fraction=selectivity)
    print(f"corpus: {len(corpus)} tweets, selectivity {selectivity:.0%}\n")

    map_stage = LlmStage(
        kind="map", instruction=MAP_INSTRUCTION, expected_output_tokens=22
    )
    filter_stage = LlmStage(
        kind="filter", instruction=FILTER_NEG_INSTRUCTION, expected_output_tokens=3
    )
    planner = FusionPlanner(get_profile("qwen2.5-7b-instruct"))

    for first, second, order, sequential_runner in (
        (map_stage, filter_stage, "map_filter", run_map_filter_sequential),
        (filter_stage, map_stage, "filter_map", run_filter_map_sequential),
    ):
        decision = planner.decide(first, second, selectivity=selectivity)
        print(f"{order}: planner says fuse={decision.fuse} "
              f"(estimated gain {decision.est_gain:+.1%})")

        sequential = sequential_runner(make_llm("qwen2.5-7b-instruct"), corpus)
        fused = run_fused(make_llm("qwen2.5-7b-instruct"), corpus, order=order)
        gain = 1.0 - fused.sim_seconds / sequential.sim_seconds
        print(
            f"  measured: sequential {sequential.sim_seconds:.0f}s "
            f"({sequential.calls} calls), fused {fused.sim_seconds:.0f}s "
            f"({fused.calls} calls) -> gain {gain:+.1%}"
        )
        print(
            f"  accuracy: sequential "
            f"{accuracy_against_negatives(sequential, corpus):.3f}, "
            f"fused {accuracy_against_negatives(fused, corpus):.3f}"
        )
        agrees = decision.fuse == (gain > 0)
        print(f"  planner decision {'agrees' if agrees else 'DISAGREES'} "
              "with measurement\n")


if __name__ == "__main__":
    main()
