"""Meta prompts and cost-based refinement planning (paper §4.4, §5).

A pipeline runs several refiners against the tweet-filter prompt over a
batch of items, collecting outcome confidence into each prompt's ref_log.
The meta layer then mines those histories to rank refiners, flags the one
that consistently hurts, recommends a replacement, and the cost-based
planner packs the best refiners into a token budget for the next run.

Run: ``python examples/meta_optimization.py``
"""

from repro import ExecutionState, GEN, REF, RefAction, SimulatedLLM
from repro.core.meta import (
    analyze_refiners,
    evolution_summary,
    recommend_replacement,
    underperforming_refiners,
)
from repro.data import make_tweet_corpus
from repro.experiments.common import build_views, compose_item_prompt
from repro.optimizer.planner import CandidateRefiner, RefinementPlanner

BASE = build_views().expand("filter_stage")

#: Candidate refiners: two that help, one "simplifier" that strips the
#: scaffold and reliably hurts.
REFINERS = {
    "f_add_criteria": (
        "Use these criteria:\n- the sentiment is clearly negative\n"
        "- judge the full text, not individual words"
    ),
    "f_add_example": "Example: 'so stressed about the exam' -> yes",
    "f_strip_guidance": None,  # callable below
}


def _strip_guidance(state, text):
    return "\n".join(
        line for line in text.splitlines() if not line.startswith("-")
    )


def _build_refiner(name):
    if name == "f_strip_guidance":
        return REF(
            RefAction.UPDATE, _strip_guidance, key="filter_prompt",
            function_name=name,
        )
    return REF(
        RefAction.APPEND, REFINERS[name], key="filter_prompt",
        function_name=name,
    )


def main() -> None:
    corpus = make_tweet_corpus(120, seed=7)
    llm = SimulatedLLM("qwen2.5-7b-instruct")
    llm.bind_tweets(corpus)
    state = ExecutionState(model=llm, clock=llm.clock)
    state.prompts.create("filter_prompt", BASE)

    # Exploration phase: apply each refiner, then generate over a few
    # items so GEN attaches outcome confidence to the refinement record.
    probe_items = corpus.tweets[:8]
    for name in REFINERS:
        for tweet in probe_items:
            state = _build_refiner(name).apply(state)
            prompt_key = "filter_prompt"
            state.prompts.create(
                "probe",
                compose_item_prompt(state.prompts.text(prompt_key), tweet.text),
                overwrite=True,
            )
            state = GEN("verdict", prompt="probe").apply(state)
            # Attribute the outcome to the refined prompt's latest record.
            state.prompts[prompt_key].ref_log[-1].signals.setdefault(
                "outcome_confidence", state.M["confidence"]
            )
            state.prompts[prompt_key].rollback(0)  # reset for the next probe

    # Meta analysis (§4.4): which refiners consistently improve confidence?
    print("refiner statistics mined from ref_logs:")
    for name, stats in sorted(
        analyze_refiners(state.prompts).items(),
        key=lambda item: -item[1].mean_confidence_delta,
    ):
        if name.startswith("f_rollback") or name == "f_literal":
            continue
        print(
            f"  {name:<18} applications={stats.applications:<3} "
            f"mean confidence delta {stats.mean_confidence_delta:+.3f}"
        )

    flagged = [
        stats.function
        for stats in underperforming_refiners(state.prompts, min_applications=3)
        if stats.function in REFINERS
    ]
    print(f"\nunderperforming: {flagged}")
    for name in flagged:
        replacement = recommend_replacement(state.prompts, name)
        print(f"  suggested replacement for {name}: {replacement}")

    # Cost-based planning (§5): pack the best refiners into a budget.
    candidates = [
        CandidateRefiner(
            name=name,
            build=lambda name=name: _build_refiner(name),
            est_cost_tokens=(
                20 if name != "f_strip_guidance" else 1
            ),
        )
        for name in REFINERS
    ]
    plan = RefinementPlanner().plan(state, candidates, budget_tokens=45)
    print(f"\nplanned refiners under a 45-token budget: "
          f"{[step.refiner.name for step in plan.steps]}")
    print(f"skipped: {list(plan.skipped)}")

    state = plan.apply(state)
    summary = evolution_summary(state.prompts, "filter_prompt")
    print(f"\nfilter_prompt is now at v{summary['versions'] - 1} "
          f"({summary['net_growth_chars']:+d} chars vs v0)")


if __name__ == "__main__":
    main()
