"""Batch clinical audit: BatchRunner + persistence + tracing together.

A QA pipeline (with confidence-triggered refinement) is mapped over every
patient in the corpus via :class:`~repro.runtime.batch.BatchRunner`; the
run reports field completeness against ground truth, the prompt store —
with its accumulated refinement history — is persisted to JSON and
reloaded, and the last item's execution timeline is rendered.

Run: ``python examples/clinical_audit.py``
"""

import tempfile
from pathlib import Path

from repro import (
    CHECK,
    Condition,
    ExecutionState,
    GEN,
    Pipeline,
    REF,
    RefAction,
    SimulatedLLM,
)
from repro.data import make_clinical_corpus
from repro.eval.metrics import field_completeness
from repro.runtime.batch import BatchRunner
from repro.runtime.persistence import load_store, save_store
from repro.runtime.tracing import render_timeline, summarize_run

QA_PROMPT = (
    "### Task\n"
    "Summarize the patient's medication history and highlight any use of "
    "Enoxaparin.\nNotes:\n{notes}"
)


def main() -> None:
    corpus = make_clinical_corpus(25, seed=11)
    llm = SimulatedLLM("qwen2.5-7b-instruct")
    llm.bind_clinical(corpus)

    base_state = ExecutionState(model=llm, clock=llm.clock)
    base_state.prompts.create("qa", QA_PROMPT)

    # Refine at most once: later items inherit the improved prompt via the
    # shared store, so the condition also checks the refinement is absent.
    needs_refinement = Condition.metadata_below("confidence", 0.75) & Condition.of(
        lambda state: "Be specific about dosage" not in state.prompts.text("qa"),
        "refinement not yet applied",
    )
    pipeline = Pipeline(
        [
            GEN("answer", prompt="qa"),
            CHECK(
                needs_refinement,
                REF(
                    RefAction.APPEND,
                    "Be specific about dosage, timing, and indication.",
                    key="qa",
                    mode="AUTO",
                )
                >> GEN("answer", prompt="qa"),
            ),
        ],
        name="audit_item",
    )

    runner = BatchRunner(
        base_state,
        bind=lambda state, patient: state.context.put(
            "notes",
            "\n".join(note.text for note in patient.notes),
            producer="bind",
        ),
    )
    batch = runner.run(pipeline, items=corpus.patients)

    # Quality: how complete are the extracted fields for treated patients?
    treated = [
        result
        for result in batch.items
        if result.item.on_enoxaparin
    ]
    answers = [
        result.context["answer__fields"]
        if "answer__fields" in result.context
        else _fields_from(result)
        for result in treated
    ]
    completeness = field_completeness(answers, ["dosage", "timing", "indication"])
    retried = sum(
        1 for result in batch.items if result.metadata.get("gen_calls", 0) > 1
    )
    print(f"audited {len(batch.items)} patients "
          f"({len(treated)} on Enoxaparin) in {batch.elapsed:.1f}s simulated")
    print(f"mean field completeness (treated): {completeness:.1%}")
    print(f"items that needed a refinement retry: {retried}")
    print(f"prompt 'qa' accumulated {base_state.prompts['qa'].version} refinements\n")

    # Persist the evolved prompt library and prove the round-trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = save_store(base_state.prompts, Path(tmp) / "prompt_library.json")
        reloaded = load_store(path)
        assert reloaded.text("qa") == base_state.prompts.text("qa")
        print(f"prompt store persisted to JSON and reloaded "
              f"({path.stat().st_size} bytes), texts identical\n")

    # Introspection: the run summary and the tail of the timeline.
    summary = summarize_run(base_state.events)
    operators = summary.pop("operators", {})
    for kind, stats in sorted(summary.items()):
        line = f"  {kind}: {int(stats['count'])} events"
        if stats["latency"]:
            line += f", {stats['latency']:.1f}s generation latency"
        print(line)
    slowest = sorted(
        operators.items(), key=lambda item: -item[1]["wall_time"]
    )[:3]
    for label, stats in slowest:
        print(
            f"  {label}: {int(stats['count'])} applications, "
            f"{stats['wall_time']:.1f}s wall"
        )
    print("\nlast item's timeline:")
    tail = render_timeline(base_state.events).splitlines()[-6:]
    print("\n".join(tail))


def _fields_from(result) -> dict:
    """Extract the structured fields of a QA generation result."""
    generation = result.context.get("answer")
    fields = {}
    if generation:
        for name in ("dosage", "timing", "indication"):
            if f"{name}:" in generation:
                fields[name] = True
    return fields


if __name__ == "__main__":
    main()
