"""Long-lived multi-tenant serving on top of the SPEAR runtime.

The paper frames pipelines as *programs*; this package is the *service*
wrapped around them: a :class:`SpearServer` owns a pool of warm
per-tenant runtimes and executes registered pipelines for named tenants
via typed :class:`ServeRequest` / :class:`ServeResponse` messages.

Isolation is structural.  Each tenant's :class:`TenantSession` owns its
own virtual clock, simulated model, prompt store, result cache, and a
private radix/structured-prompt cache partition
(:class:`~repro.llm.partitions.CachePartitions`) — so cross-tenant KV
sharing is impossible and one tenant's outputs are byte-identical to a
standalone run of the same pipeline.  Admission control is bounded
per-tenant queues with breaker-style load shedding
(:class:`~repro.resilience.ShedPolicy` →
:class:`~repro.errors.RateLimitError`); under overload the server sheds
instead of queueing unboundedly.  Request priority and deadlines order
the global admission queue and feed the per-run GEN scheduler.
"""

from repro.serve.server import ServeRequest, ServeResponse, SpearServer
from repro.serve.session import TenantConfig, TenantSession
from repro.serve.traffic import TrafficConfig, build_demo_server, run_traffic

__all__ = [
    "SpearServer",
    "ServeRequest",
    "ServeResponse",
    "TenantConfig",
    "TenantSession",
    "TrafficConfig",
    "build_demo_server",
    "run_traffic",
]
