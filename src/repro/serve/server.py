"""The multi-tenant serving pool: typed requests in, typed responses out.

:class:`SpearServer` owns the warm :class:`~repro.serve.session.TenantSession`
pool and a thread pool of workers.  Submission is admission-controlled
per tenant (bounded queues + breaker-style shedding via
:class:`~repro.resilience.ShedPolicy`); admitted requests enter one
global queue ordered by (priority class, deadline, arrival) and drain
into sessions under session affinity.  Every outcome — served or shed —
is a ``SERVE`` event on the server's own event log, which an attached
:class:`~repro.obs.collector.ObsCollector` rolls into the
``spear_serve_*`` metric family.  Tenant session logs never see SERVE
events, so per-tenant ledger runs stay byte-identical to standalone
executions of the same pipeline.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from repro.errors import RateLimitError, SpearError
from repro.llm.partitions import CachePartitions
from repro.llm.profiles import DEFAULT_PROFILE
from repro.resilience import ShedPolicy
from repro.runtime.events import EventKind, EventLog
from repro.runtime.scheduler import resolve_priority_class
from repro.serve.session import TenantConfig, TenantSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future

    from repro.core.pipeline import Pipeline

__all__ = ["ServeRequest", "ServeResponse", "SpearServer"]


@dataclass(frozen=True)
class ServeRequest:
    """One typed unit of serving work.

    ``pipeline`` names a pipeline registered on the server (pipelines
    are shared, versioned artefacts; tenants reference them, they do not
    carry them).  ``items`` fans the pipeline out over a dataset;
    without it the request is a single run seeded from ``context``.
    """

    #: tenant identity; must be registered (or auto-registration on).
    tenant: str
    #: registered pipeline name to execute.
    pipeline: str
    #: optional dataset to fan the pipeline over (one fork per item).
    items: Sequence[Any] | None = None
    #: context values bound into the request's forked state.
    context: Mapping[str, Any] | None = None
    #: priority class (PriorityClass / name); None inherits the tenant's.
    priority: Any = None
    #: admission deadline in virtual seconds; None inherits the tenant's.
    deadline_s: float | None = None
    #: caller-chosen id; the server assigns ``<tenant>-<seq>`` when None.
    request_id: str | None = None


@dataclass
class ServeResponse:
    """Outcome of one :class:`ServeRequest`.

    ``result`` is the runner's result object (RunResult or BatchResult)
    and satisfies the shared ``.output()`` / ``.report`` / ``.cache``
    protocol; :meth:`output` delegates to it.  Shed and failed requests
    carry ``error`` (and ``retry_after`` for sheds) instead.
    """

    tenant: str
    request_id: str
    #: ``"ok"``, ``"shed"``, or ``"error"``.
    status: str
    result: Any = None
    error: str | None = None
    #: simulated seconds the request's execution took (tenant clock).
    elapsed: float = 0.0
    #: wall-clock seconds between admission and execution start.
    queue_wait: float = 0.0
    #: shed hint: simulated seconds to wait before resubmitting.
    retry_after: float | None = None
    report: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def output(self, label: str) -> Any:
        """The shared result protocol, passed through (None when not ok)."""
        if self.result is None:
            return None
        return self.result.output(label)


class _Admitted:
    """One queued request plus its dispatch bookkeeping (heap entry)."""

    __slots__ = (
        "order", "request", "session", "pipeline", "prompts",
        "future", "enqueued_wall",
    )

    def __init__(self, order, request, session, pipeline, prompts, future):
        self.order = order
        self.request = request
        self.session = session
        self.pipeline = pipeline
        self.prompts = prompts
        self.future = future
        self.enqueued_wall = time.monotonic()

    def __lt__(self, other: "_Admitted") -> bool:
        return self.order < other.order


class SpearServer:
    """Thread-based multi-tenant serving over warm SPEAR runtimes.

    Usage::

        server = SpearServer(binder=lambda llm: llm.bind_tweets(corpus))
        server.register_pipeline("summarize", pipeline, prompts={...})
        server.add_tenant("acme")
        with server:                      # starts the worker pool
            future = server.submit(ServeRequest("acme", "summarize",
                                                context={"tweet": text}))
            response = future.result()

    Requests may also be submitted before :meth:`start` — they queue up
    and drain once workers run (the synthetic traffic driver uses this
    for deterministic overload experiments).
    """

    def __init__(
        self,
        *,
        profile: str = DEFAULT_PROFILE,
        binder: Any = None,
        workers: int = 4,
        scheduler: Any = True,
        shed: ShedPolicy | None = None,
        ledger_dir: Any = None,
        collector: Any = None,
        partitions: CachePartitions | None = None,
        auto_tenants: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1: {workers}")
        self.profile = profile
        self.binder = binder
        self.workers = workers
        self.scheduler = scheduler
        self.shed = shed if shed is not None else ShedPolicy()
        self.ledger_dir = ledger_dir
        self.collector = collector
        self.partitions = (
            partitions if partitions is not None else CachePartitions()
        )
        #: auto-register unknown tenants with a default config on first
        #: submit (convenient for traffic drivers; off for strict pools).
        self.auto_tenants = auto_tenants
        #: the server's own event log: SERVE outcomes only, never tenant
        #: pipeline events (those live on the sessions' logs/ledgers).
        self.events = EventLog()
        if collector is not None:
            collector.subscribe_to(self.events)
        self._pipelines: dict[str, tuple["Pipeline", dict[str, str]]] = {}
        self._tenants: dict[str, TenantConfig] = {}
        self._sessions: dict[str, TenantSession] = {}
        self._admission = threading.Lock()
        self._queue: list[_Admitted] = []
        self._cv = threading.Condition()
        self._counter = itertools.count()
        self._threads: list[threading.Thread] = []
        self._running = False
        self._warned_policy_noop = False

    # -- registration -------------------------------------------------------

    def register_pipeline(
        self,
        name: str,
        pipeline: "Pipeline",
        *,
        prompts: Mapping[str, str] | None = None,
        strict: bool = True,
    ) -> None:
        """Register a named pipeline (and the prompt texts it needs).

        ``prompts`` maps prompt key → template text; each tenant session
        materializes them into *its own* prompt store on first use, so
        tenants never share prompt state even for shared pipelines.

        Registration is **strict by default**: the pipeline is
        statically checked against the serve runtime (the incremental
        re-check cache makes repeat registrations O(1)).  Errors reject
        the registration with :class:`~repro.errors.SpearValidationError`;
        warnings — including SPEAR162 refine-during-serve hazards on the
        persistent tenant prompt store — surface as one
        :class:`RuntimeWarning`.  Pass ``strict=False`` to skip.
        """
        if strict:
            from repro.analysis import cached_check_pipeline
            from repro.errors import SpearValidationError

            result = cached_check_pipeline(
                pipeline,
                prompts=dict(prompts or {}),
                open_context=True,
                name=name,
                runtime={
                    "serve": True,
                    "scheduler": self.scheduler is not False,
                    "lanes": self.workers,
                },
            )
            if result.has_errors:
                raise SpearValidationError(result.errors)
            warnings_ = [
                d for d in result if d.severity.value == "warning"
            ]
            if warnings_:
                summary = "; ".join(
                    f"{d.code} {d.operator or ''}".strip()
                    for d in warnings_
                )
                warnings.warn(
                    f"pipeline {name!r} registered with static warnings: "
                    f"{summary} (run `spear check` for details, or "
                    "register with strict=False to silence)",
                    RuntimeWarning,
                    stacklevel=2,
                )
        self._pipelines[name] = (pipeline, dict(prompts or {}))

    def add_tenant(
        self, config: "TenantConfig | str", **overrides: Any
    ) -> TenantConfig:
        """Register a tenant; returns its (possibly defaulted) config."""
        if isinstance(config, str):
            config = TenantConfig(name=config, **overrides)
        elif overrides:
            raise TypeError(
                "pass overrides only with a tenant name, not a TenantConfig"
            )
        self._tenants[config.name] = config
        return config

    def tenants(self) -> list[str]:
        """Registered tenant names, in registration order."""
        return list(self._tenants)

    def _session(self, tenant: str) -> TenantSession:
        with self._admission:
            session = self._sessions.get(tenant)
            if session is not None:
                return session
            config = self._tenants.get(tenant)
            if config is None:
                if not self.auto_tenants:
                    raise SpearError(
                        f"unknown tenant: {tenant!r} (register it with "
                        "add_tenant, or pass auto_tenants=True)"
                    )
                config = TenantConfig(name=tenant)
                self._tenants[tenant] = config
            session = TenantSession(
                config,
                profile=self.profile,
                binder=self.binder,
                partitions=self.partitions,
                scheduler=self.scheduler,
                shed=self.shed,
                ledger_root=self.ledger_dir,
            )
            self._sessions[tenant] = session
            return session

    def session(self, tenant: str) -> TenantSession:
        """The tenant's (lazily created) warm session."""
        return self._session(tenant)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "SpearServer":
        """Spin up the worker pool (idempotent)."""
        with self._cv:
            if self._running:
                return self
            self._running = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"spear-serve-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop the workers; queued-but-unstarted requests error out."""
        with self._cv:
            if not self._running:
                return
            self._running = False
            self._cv.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
        self._threads.clear()
        with self._cv:
            drained, self._queue = self._queue, []
        for entry in drained:
            self._finish_aborted(entry)

    def __enter__(self) -> "SpearServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- submission ---------------------------------------------------------

    def _order_key(
        self, request: ServeRequest, session: TenantSession
    ) -> tuple:
        priority = (
            request.priority
            if request.priority is not None
            else session.config.priority
        )
        rank = resolve_priority_class(priority).rank
        deadline = (
            request.deadline_s
            if request.deadline_s is not None
            else session.config.deadline_s
        )
        deadline_key = deadline if deadline is not None else float("inf")
        return (rank, deadline_key, next(self._counter))

    def _maybe_warn_policy_noop(self, request: ServeRequest, session) -> None:
        if self._warned_policy_noop or self.scheduler is not False:
            return
        has_policy = (
            request.priority is not None
            or request.deadline_s is not None
            or session.config.priority is not None
            or session.config.deadline_s is not None
        )
        if has_policy:
            self._warned_policy_noop = True
            warnings.warn(
                "serving policy (priority/deadline) with the pool's "
                "scheduler disabled only orders admission — per-GEN "
                "scheduling silently no-ops (SPEAR147); build the server "
                "with scheduler=True or a SchedulerConfig",
                RuntimeWarning,
                stacklevel=3,
            )

    def submit(self, request: ServeRequest) -> "Future[ServeResponse]":
        """Admit one request; returns a future resolving to its response.

        Overload sheds *synchronously*: when the tenant's pending queue
        is at its :class:`~repro.resilience.ShedPolicy` limit (or its
        shed breaker is open), a SERVE shed event is recorded and
        :class:`~repro.errors.RateLimitError` is raised with the
        policy's ``retry_after`` hint — the caller backs off instead of
        queueing unboundedly.
        """
        from concurrent.futures import Future

        if request.pipeline not in self._pipelines:
            raise SpearError(f"unknown pipeline: {request.pipeline!r}")
        session = self._session(request.tenant)
        self._maybe_warn_policy_noop(request, session)
        request_id = request.request_id or (
            f"{request.tenant}-{next(self._counter)}"
        )
        with self._admission:
            admitted, reason = session.admit()
            depth = session.pending
        if not admitted:
            retry_after = session.shed.retry_after_s
            self.events.record(
                EventKind.SERVE,
                "SpearServer",
                at=session.clock.now,
                payload={
                    "tenant": request.tenant,
                    "request_id": request_id,
                    "status": "shed",
                    "reason": reason,
                    "queue_depth": depth,
                    "retry_after": retry_after,
                },
            )
            raise RateLimitError(
                f"tenant {request.tenant!r} shed ({reason}); retry after "
                f"{retry_after}s",
                retry_after=retry_after,
            )
        if request.request_id is None:
            request = ServeRequest(
                tenant=request.tenant,
                pipeline=request.pipeline,
                items=request.items,
                context=request.context,
                priority=request.priority,
                deadline_s=request.deadline_s,
                request_id=request_id,
            )
        pipeline, prompts = self._pipelines[request.pipeline]
        future: "Future[ServeResponse]" = Future()
        entry = _Admitted(
            self._order_key(request, session),
            request, session, pipeline, prompts, future,
        )
        with self._cv:
            heapq.heappush(self._queue, entry)
            self._cv.notify()
        return future

    def serve(
        self, requests: Iterable[ServeRequest]
    ) -> list[ServeResponse]:
        """Submit a batch and wait; sheds become ``status="shed"`` rows."""
        futures: list["Future[ServeResponse] | ServeResponse"] = []
        for request in requests:
            try:
                futures.append(self.submit(request))
            except RateLimitError as error:
                futures.append(
                    ServeResponse(
                        tenant=request.tenant,
                        request_id=request.request_id or "?",
                        status="shed",
                        error=str(error),
                        retry_after=error.retry_after,
                    )
                )
        return [
            entry if isinstance(entry, ServeResponse) else entry.result()
            for entry in futures
        ]

    # -- workers ------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cv:
                while self._running and not self._queue:
                    self._cv.wait()
                if not self._running:
                    return
                entry = heapq.heappop(self._queue)
            self._execute_entry(entry)

    def _execute_entry(self, entry: _Admitted) -> None:
        request = entry.request
        session = entry.session
        queue_wait = time.monotonic() - entry.enqueued_wall
        started = session.clock.now
        try:
            result = session.execute(request, entry.pipeline, entry.prompts)
        except Exception as error:  # noqa: BLE001 - one request, one verdict
            response = ServeResponse(
                tenant=request.tenant,
                request_id=request.request_id or "?",
                status="error",
                error=f"{type(error).__name__}: {error}",
                queue_wait=queue_wait,
            )
            if session.breaker is not None:
                session.breaker.record_failure(session.clock.now)
        else:
            response = ServeResponse(
                tenant=request.tenant,
                request_id=request.request_id or "?",
                status="ok",
                result=result,
                elapsed=session.clock.now - started,
                queue_wait=queue_wait,
                report=dict(result.report),
            )
            if session.breaker is not None:
                session.breaker.record_success(session.clock.now)
        with self._admission:
            session.pending -= 1
            depth = session.pending
        self.events.record(
            EventKind.SERVE,
            "SpearServer",
            at=session.clock.now,
            payload={
                "tenant": response.tenant,
                "request_id": response.request_id,
                "status": response.status,
                "elapsed": response.elapsed,
                "queue_wait": response.queue_wait,
                "queue_depth": depth,
                "priority": str(request.priority) if request.priority else None,
                "deadline_s": request.deadline_s,
            },
        )
        entry.future.set_result(response)

    def _finish_aborted(self, entry: _Admitted) -> None:
        with self._admission:
            entry.session.pending -= 1
        entry.future.set_result(
            ServeResponse(
                tenant=entry.request.tenant,
                request_id=entry.request.request_id or "?",
                status="error",
                error="server shut down before execution",
            )
        )

    # -- accounting ---------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Pool-wide accounting: sessions, queue, cache partitions."""
        with self._admission:
            sessions = dict(self._sessions)
        with self._cv:
            queued = len(self._queue)
        return {
            "tenants": len(sessions),
            "queued": queued,
            "workers": self.workers,
            "sessions": {
                name: session.snapshot()
                for name, session in sessions.items()
            },
            "partitions": self.partitions.snapshot(),
        }
