"""Per-tenant serving sessions: isolated warm runtimes.

A :class:`TenantSession` is the unit of isolation in the serving layer.
It owns everything a tenant's pipelines touch — virtual clock, simulated
model grounded on the server's corpora, prompt store, operator result
cache, and a private KV/prompt cache partition — so two tenants can
never share cache state, observe each other's prompts, or perturb each
other's clocks.  A session executes one request at a time (session
affinity: the server's workers serialize on the session lock), which
also keeps every tenant's event stream totally ordered and its outputs
byte-identical to a standalone run of the same pipeline.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.resilience import CircuitBreaker, ShedPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import Pipeline
    from repro.llm.partitions import CachePartitions
    from repro.serve.server import ServeRequest

__all__ = ["TenantConfig", "TenantSession"]


@dataclass(frozen=True)
class TenantConfig:
    """Declarative per-tenant serving configuration.

    Every field except ``name`` is optional; None inherits the server's
    default.  The config is pure data — sessions are built from it by
    the server, so a config can be logged, diffed, and replayed.
    """

    #: tenant identity; also the cache-partition namespace and the
    #: per-tenant ledger subdirectory name.
    name: str
    #: model profile override (e.g. ``"gpt-4o-mini"`` for a budget tier).
    profile: str | None = None
    #: default priority class for this tenant's requests.
    priority: Any = None
    #: default admission deadline (virtual seconds) for requests.
    deadline_s: float | None = None
    #: admission-control override; None inherits the server's policy.
    shed: ShedPolicy | None = None
    #: attach an operator-level result cache to the session.
    result_cache: bool = True
    #: warm prefix (KV) caching inside the tenant's partition.
    enable_prefix_cache: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("TenantConfig.name must be non-empty")


class TenantSession:
    """One tenant's warm runtime inside the serving pool.

    Built lazily by :class:`~repro.serve.server.SpearServer` on the
    tenant's first request and kept warm for the server's lifetime: the
    virtual clock, model, prompt store, result cache, and cache
    partition persist across requests, so a tenant's later requests see
    its own warm caches — and only its own.
    """

    def __init__(
        self,
        config: TenantConfig,
        *,
        profile: str,
        binder: "Callable[[Any], None] | None",
        partitions: "CachePartitions",
        scheduler: Any,
        shed: ShedPolicy,
        ledger_root: "str | Path | None" = None,
    ) -> None:
        from repro.llm.model import SimulatedLLM
        from repro.runtime.clock import VirtualClock
        from repro.runtime.executor import Executor
        from repro.runtime.options import RuntimeOptions
        from repro.runtime.result_cache import ResultCache

        self.config = config
        self.shed = config.shed if config.shed is not None else shed
        clock = VirtualClock()
        partition = partitions.get(config.name)
        self.partition = partition
        self.model = SimulatedLLM(
            config.profile or profile,
            clock=clock,
            kv_cache=partition.kv_cache,
            prompt_cache=partition.prompt_cache,
            enable_prefix_cache=config.enable_prefix_cache,
        )
        if binder is not None:
            binder(self.model)
        ledger_dir = (
            str(Path(ledger_root) / config.name)
            if ledger_root is not None
            else None
        )
        self.executor = Executor(
            options=RuntimeOptions(
                model=self.model,
                clock=clock,
                result_cache=ResultCache() if config.result_cache else None,
                scheduler=scheduler,
                ledger_dir=ledger_dir,
            )
        )
        #: the session's base state: owns the tenant's prompt store; every
        #: request runs on a fork so request context never accumulates.
        self.state = self.executor.new_state()
        self.clock = clock
        #: session affinity: the server's workers serialize requests here.
        self.lock = threading.Lock()
        #: admission bookkeeping, guarded by the server's admission lock.
        self.pending = 0
        self.completed = 0
        self.shed_count = 0
        self.breaker = (
            CircuitBreaker(self.shed.breaker)
            if self.shed.breaker is not None
            else None
        )

    # -- admission (called under the server's admission lock) --------------

    def admit(self) -> "tuple[bool, str | None]":
        """One admission decision: (admitted, shed_reason)."""
        now = self.clock.now
        if self.breaker is not None and not self.breaker.allow(now):
            self.shed_count += 1
            return False, "breaker_open"
        if self.pending >= self.shed.queue_limit:
            if self.breaker is not None:
                self.breaker.record_failure(now)
            self.shed_count += 1
            return False, "queue_full"
        self.pending += 1
        return True, None

    # -- execution ----------------------------------------------------------

    def _ensure_prompts(self, prompts: Mapping[str, str]) -> None:
        for key, text in prompts.items():
            if key not in self.state.prompts:
                self.state.prompts.create(key, text)

    def execute(
        self,
        request: "ServeRequest",
        pipeline: "Pipeline",
        prompts: Mapping[str, str],
    ) -> Any:
        """Run one admitted request; returns the runner result.

        Single-shot requests return a
        :class:`~repro.runtime.executor.RunResult`; requests with
        ``items`` return a :class:`~repro.runtime.batch.BatchResult` —
        both satisfy the shared ``.output()`` / ``.report`` / ``.cache``
        protocol.  The whole request is one ledger run under the
        tenant's ledger root (manifest keyed by tenant and request id);
        the executor's inner per-run scope is reentrant and defers.
        """
        from repro.obs.ledger import describe_pipeline, ledger_scope

        with self.lock:
            self._ensure_prompts(prompts)
            state = self.state.fork()
            if request.context:
                for key, value in request.context.items():
                    state.context.put(str(key), value, producer="serve")
            priority = (
                request.priority
                if request.priority is not None
                else self.config.priority
            )
            deadline_s = (
                request.deadline_s
                if request.deadline_s is not None
                else self.config.deadline_s
            )
            manifest = {
                "runner": "SpearServer",
                "tenant": self.config.name,
                "request_id": request.request_id,
                "pipeline": describe_pipeline(pipeline),
            }
            with ledger_scope(
                self.executor.options, state, manifest=manifest
            ):
                result = self.executor.run(
                    pipeline,
                    items=request.items,
                    state=state,
                    priority=priority,
                    deadline_s=deadline_s,
                )
            self.completed += 1
            return result

    def snapshot(self) -> dict[str, Any]:
        """Point-in-time session accounting (admission + runtime)."""
        return {
            "tenant": self.config.name,
            "pending": self.pending,
            "completed": self.completed,
            "shed": self.shed_count,
            "clock": self.clock.now,
            "model": self.model.snapshot(),
            "breaker": (
                self.breaker.snapshot(self.clock.now)
                if self.breaker is not None
                else None
            ),
        }
