"""Deterministic synthetic traffic for the serving pool.

Drives a :class:`~repro.serve.server.SpearServer` with closed bursts of
per-tenant requests over the Table-3 tweet workload.  Determinism is the
point: every burst is submitted *before* the worker pool starts, so
admission control sees the full backlog at once — a burst of exactly the
queue limit sheds nothing, and a burst of ``overload × limit`` sheds
exactly ``(overload - 1) × limit`` requests per tenant, independent of
host thread timing.  Latency percentiles are computed over the tenants'
simulated clocks (deterministic); throughput and queue-wait use wall
time (reported, not gated).

Used by ``spear serve``, the CI serve-smoke job, and
``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.data import make_tweet_corpus
from repro.errors import RateLimitError
from repro.experiments.common import (
    FILTER_NEG_INSTRUCTION,
    MAP_INSTRUCTION,
    SCAFFOLD,
)
from repro.resilience import ShedPolicy
from repro.serve.server import ServeRequest, SpearServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["TrafficConfig", "build_demo_server", "run_traffic"]

PROFILE = "qwen2.5-7b-instruct"

MAP_PROMPT = SCAFFOLD + "\n" + MAP_INSTRUCTION + "\nTweet:\n{tweet}"
FILTER_PROMPT = SCAFFOLD + "\n" + FILTER_NEG_INSTRUCTION + "\nTweet:\n{tweet}"


@dataclass(frozen=True)
class TrafficConfig:
    """One synthetic serving experiment, fully seeded.

    ``requests_per_tenant`` defaults to the queue limit (the nominal,
    shed-free load); multiply via ``overload`` to study admission
    control — ``overload=4`` submits 4× the limit and must shed 3×.
    """

    tenants: int = 16
    queue_limit: int = 8
    #: burst size per tenant; None means exactly ``queue_limit``.
    requests_per_tenant: int | None = None
    #: multiplies the burst; the excess over ``queue_limit`` is shed.
    overload: int = 1
    workers: int = 8
    #: tweets in the shared demo corpus (requests cycle through it).
    corpus_size: int = 32
    seed: int = 7
    profile: str = PROFILE
    #: every 4th tenant interactive with a deadline, the rest bulk.
    mixed_priority: bool = True
    scheduler: Any = True

    @property
    def burst(self) -> int:
        base = (
            self.requests_per_tenant
            if self.requests_per_tenant is not None
            else self.queue_limit
        )
        return base * max(1, self.overload)

    def tenant_names(self) -> list[str]:
        width = len(str(max(1, self.tenants - 1)))
        return [f"tenant-{index:0{width}d}" for index in range(self.tenants)]


def build_demo_server(
    config: TrafficConfig | None = None, **server_kwargs: Any
) -> SpearServer:
    """A ready-to-drive server: tweet corpus, Map→Filter pipeline, tenants.

    The corpus is shared read-only ground truth (the binder grounds each
    tenant's *private* model on it); prompt stores, caches, and clocks
    stay per-tenant.
    """
    from repro.core import GEN, Pipeline

    config = config or TrafficConfig()
    corpus = make_tweet_corpus(config.corpus_size, seed=config.seed)
    server = SpearServer(
        profile=config.profile,
        binder=lambda llm: llm.bind_tweets(corpus),
        workers=config.workers,
        scheduler=config.scheduler,
        shed=ShedPolicy(queue_limit=config.queue_limit),
        **server_kwargs,
    )
    server.corpus = corpus  # type: ignore[attr-defined]
    server.register_pipeline(
        "summarize",
        Pipeline([GEN("summary", prompt="map_p")]),
        prompts={"map_p": MAP_PROMPT},
    )
    server.register_pipeline(
        "summarize_filter",
        Pipeline(
            [GEN("summary", prompt="map_p"), GEN("neg", prompt="filter_p")]
        ),
        prompts={"map_p": MAP_PROMPT, "filter_p": FILTER_PROMPT},
    )
    for index, name in enumerate(config.tenant_names()):
        interactive = config.mixed_priority and index % 4 == 0
        server.add_tenant(
            name,
            priority="interactive" if interactive else None,
            deadline_s=5.0 if interactive else None,
        )
    return server


def _quantile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(q * len(ordered)))
    return ordered[index]


def run_traffic(
    server: SpearServer,
    config: TrafficConfig | None = None,
    *,
    pipeline: str = "summarize_filter",
) -> dict[str, Any]:
    """Submit every tenant's burst, run the pool to drain, report.

    The server must not be started yet: all bursts are enqueued against
    the stopped pool first (making shed counts a pure function of the
    config), then the workers are started and the backlog drains.
    Returns the metrics dict (per-tenant rows under ``"tenants"``).
    """
    import time

    config = config or TrafficConfig()
    corpus = getattr(server, "corpus", None) or make_tweet_corpus(
        config.corpus_size, seed=config.seed
    )
    tweets = list(corpus)
    futures = []
    shed = 0
    submitted = 0
    for t_index, tenant in enumerate(config.tenant_names()):
        for r_index in range(config.burst):
            tweet = tweets[(t_index + r_index) % len(tweets)]
            request = ServeRequest(
                tenant=tenant,
                pipeline=pipeline,
                context={"tweet": tweet.text},
            )
            submitted += 1
            try:
                futures.append(server.submit(request))
            except RateLimitError:
                shed += 1
    wall_start = time.monotonic()
    server.start()
    responses = [future.result() for future in futures]
    wall_elapsed = time.monotonic() - wall_start
    server.shutdown()

    ok = [r for r in responses if r.status == "ok"]
    errors = [r for r in responses if r.status == "error"]
    elapsed = [r.elapsed for r in ok]
    waits = [r.queue_wait for r in ok]
    sessions = {
        name: server.session(name).snapshot()
        for name in config.tenant_names()
    }
    return {
        "tenants": config.tenants,
        "workers": config.workers,
        "queue_limit": config.queue_limit,
        "overload": config.overload,
        "submitted": submitted,
        "served": len(ok),
        "errors": len(errors),
        "shed": shed,
        "shed_rate": round(shed / submitted, 4) if submitted else 0.0,
        "latency_p50_s": round(_quantile(elapsed, 0.50), 4),
        "latency_p99_s": round(_quantile(elapsed, 0.99), 4),
        "queue_wait_p50_s": round(_quantile(waits, 0.50), 4),
        "queue_wait_p99_s": round(_quantile(waits, 0.99), 4),
        "wall_elapsed_s": round(wall_elapsed, 3),
        "throughput_rps": (
            round(len(ok) / wall_elapsed, 2) if wall_elapsed > 0 else 0.0
        ),
        "sessions": sessions,
    }
