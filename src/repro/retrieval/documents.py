"""Document model and store for the retrieval substrate.

RET sources retrieve "raw input or supporting data (e.g., from documents,
databases, or APIs)" (paper §3.3).  This module provides the document
abstraction those sources operate over; indexing and ranking live in
:mod:`repro.retrieval.index`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

__all__ = ["Document", "DocumentStore"]


@dataclass(frozen=True)
class Document:
    """One retrievable unit: text plus structured attributes."""

    doc_id: str
    text: str
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def get(self, attribute: str, default: Any = None) -> Any:
        """Attribute accessor with default."""
        return self.attributes.get(attribute, default)


class DocumentStore:
    """In-memory collection of documents with attribute filtering."""

    def __init__(self, documents: list[Document] | None = None) -> None:
        self._documents: dict[str, Document] = {}
        for document in documents or []:
            self.add(document)

    def add(self, document: Document) -> None:
        """Insert (or replace) a document."""
        self._documents[document.doc_id] = document

    def get(self, doc_id: str) -> Document | None:
        """Look up a document by id."""
        return self._documents.get(doc_id)

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def __contains__(self, doc_id: object) -> bool:
        return doc_id in self._documents

    def filter(self, predicate: Callable[[Document], bool]) -> list[Document]:
        """All documents satisfying ``predicate``, in insertion order."""
        return [document for document in self if predicate(document)]

    def where(self, **attributes: Any) -> list[Document]:
        """Documents whose attributes equal every given value.

        The structured-retrieval path: ``store.where(patient_id="p0001",
        kind="discharge_summary")``.
        """
        return self.filter(
            lambda document: all(
                document.get(name) == value for name, value in attributes.items()
            )
        )
