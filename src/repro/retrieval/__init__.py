"""Retrieval substrate: documents, BM25 index, structured/prompt retrievers."""

from repro.retrieval.documents import Document, DocumentStore
from repro.retrieval.index import InvertedIndex, tokenize_query
from repro.retrieval.retriever import (
    PromptRetriever,
    StructuredRetriever,
    clinical_sources,
    corpus_documents,
)

__all__ = [
    "Document",
    "DocumentStore",
    "InvertedIndex",
    "tokenize_query",
    "PromptRetriever",
    "StructuredRetriever",
    "clinical_sources",
    "corpus_documents",
]
