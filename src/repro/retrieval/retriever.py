"""Retrievers: the RET operator's two retrieval forms (paper §3.3).

- :class:`StructuredRetriever` — parameterized lookup ("data source, time
  window, or patient ID");
- :class:`PromptRetriever` — retrieval intent expressed as natural
  language, answered by BM25 over the index; because the retrieval prompt
  lives in P, REF can refine *what is retrieved* at runtime.

:func:`clinical_sources` wires a clinical corpus into ready-made RET
sources for the §2 Enoxaparin pipeline (notes, order lookup, labs).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.data.clinical import ClinicalCorpus
from repro.errors import RetrievalError
from repro.retrieval.documents import Document, DocumentStore
from repro.retrieval.index import InvertedIndex

__all__ = [
    "StructuredRetriever",
    "PromptRetriever",
    "corpus_documents",
    "clinical_sources",
]


class StructuredRetriever:
    """Attribute-equality retrieval over a document store.

    Usable directly as a RET source: the query is a mapping of attribute
    filters, e.g. ``{"patient_id": "p0001", "kind": "nursing_note"}``.
    """

    def __init__(self, store: DocumentStore) -> None:
        self.store = store

    def __call__(self, state: Any, query: Any) -> list[Document]:
        if query is None:
            return list(self.store)
        if not isinstance(query, dict):
            raise RetrievalError(
                f"structured retrieval expects a dict query, got {type(query).__name__}"
            )
        return self.store.where(**query)


class PromptRetriever:
    """Free-text retrieval over a BM25 index.

    Usable as a RET source for prompt-based retrieval: the (possibly
    REF-refined) retrieval prompt arrives as the query string.
    """

    def __init__(self, index: InvertedIndex, *, top_k: int = 3) -> None:
        self.index = index
        self.top_k = top_k

    def __call__(self, state: Any, query: Any) -> list[Document]:
        if not isinstance(query, str) or not query.strip():
            raise RetrievalError("prompt-based retrieval expects a non-empty string")
        return [document for document, __ in self.index.search(query, top_k=self.top_k)]


def corpus_documents(corpus: ClinicalCorpus) -> DocumentStore:
    """Project a clinical corpus into a document store (notes + orders + labs)."""
    store = DocumentStore()
    for patient in corpus:
        for note in patient.notes:
            store.add(
                Document(
                    doc_id=note.note_id,
                    text=note.text,
                    attributes={
                        "patient_id": note.patient_id,
                        "kind": note.kind,
                        "mentions_enoxaparin": note.mentions_enoxaparin,
                    },
                )
            )
        for order in patient.orders:
            store.add(
                Document(
                    doc_id=order.order_id,
                    text=(
                        f"ORDER: {order.medication} {order.dosage} "
                        f"{order.frequency} for patient {order.patient_id}"
                    ),
                    attributes={"patient_id": order.patient_id, "kind": "order"},
                )
            )
        for lab in patient.labs:
            store.add(
                Document(
                    doc_id=lab.lab_id,
                    text=f"LAB: {lab.test} = {lab.value} for patient {lab.patient_id}",
                    attributes={"patient_id": lab.patient_id, "kind": "lab"},
                )
            )
    return store


def clinical_sources(
    corpus: ClinicalCorpus,
) -> dict[str, Callable[[Any, Any], Any]]:
    """Ready-made RET sources for the Enoxaparin QA pipeline (paper §2).

    Returns sources keyed by the names the paper's examples use:

    - ``initial_notes`` — a patient's notes (query = patient id), joined
      as one context block;
    - ``order_lookup``  — the patient's structured medication orders;
    - ``lab_lookup``    — the patient's lab results;
    - ``note_search``   — prompt-based BM25 search over everything.
    """
    store = corpus_documents(corpus)
    index = InvertedIndex(store)
    structured = StructuredRetriever(store)
    prompt_based = PromptRetriever(index)

    def initial_notes(state: Any, query: Any) -> str:
        patient_id = query if isinstance(query, str) else state.context["patient_id"]
        notes = structured(state, {"patient_id": patient_id})
        note_docs = [doc for doc in notes if doc.get("kind") not in ("order", "lab")]
        if not note_docs:
            raise RetrievalError(f"no notes found for patient {patient_id!r}")
        return "\n".join(doc.text for doc in note_docs)

    def order_lookup(state: Any, query: Any) -> str:
        patient_id = query if isinstance(query, str) else state.context["patient_id"]
        orders = structured(state, {"patient_id": patient_id, "kind": "order"})
        if not orders:
            return "ORDER: none on file"
        return "\n".join(doc.text for doc in orders)

    def lab_lookup(state: Any, query: Any) -> str:
        patient_id = query if isinstance(query, str) else state.context["patient_id"]
        labs = structured(state, {"patient_id": patient_id, "kind": "lab"})
        return "\n".join(doc.text for doc in labs)

    def note_search(state: Any, query: Any) -> str:
        documents = prompt_based(state, query)
        return "\n".join(document.text for document in documents)

    return {
        "initial_notes": initial_notes,
        "order_lookup": order_lookup,
        "lab_lookup": lab_lookup,
        "note_search": note_search,
    }
