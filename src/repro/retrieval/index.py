"""Inverted index with BM25 ranking.

The prompt-based retrieval path (``RET[source, prompt: P[...]]``) turns a
natural-language retrieval prompt into a ranked keyword search.  BM25 is
the standard lexical ranking function; implemented from scratch here (no
external IR library) over the in-memory document store.
"""

from __future__ import annotations

import math
import re
from collections import Counter, defaultdict

from repro.retrieval.documents import Document, DocumentStore

__all__ = ["InvertedIndex", "tokenize_query"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

_STOPWORDS = frozenset(
    {
        "a", "an", "the", "and", "or", "of", "to", "in", "on", "for",
        "with", "is", "are", "was", "were", "be", "been", "it", "this",
        "that", "any", "all", "from", "retrieve", "find", "fetch", "get",
        "documents", "notes", "about", "related", "please",
    }
)


def tokenize_query(text: str) -> list[str]:
    """Lowercase word tokens with stopwords (and retrieval verbs) removed."""
    return [
        token
        for token in _TOKEN_RE.findall(text.lower())
        if token not in _STOPWORDS
    ]


class InvertedIndex:
    """BM25-ranked inverted index over a :class:`DocumentStore`."""

    def __init__(self, store: DocumentStore, *, k1: float = 1.5, b: float = 0.75) -> None:
        self.store = store
        self.k1 = k1
        self.b = b
        self._postings: dict[str, dict[str, int]] = defaultdict(dict)
        self._doc_lengths: dict[str, int] = {}
        self._total_length = 0
        for document in store:
            self._index(document)

    def _index(self, document: Document) -> None:
        tokens = _TOKEN_RE.findall(document.text.lower())
        counts = Counter(tokens)
        for token, count in counts.items():
            self._postings[token][document.doc_id] = count
        self._doc_lengths[document.doc_id] = len(tokens)
        self._total_length += len(tokens)

    def add(self, document: Document) -> None:
        """Index a new document (also adds it to the backing store)."""
        self.store.add(document)
        self._index(document)

    @property
    def average_length(self) -> float:
        """Mean document length in tokens."""
        if not self._doc_lengths:
            return 0.0
        return self._total_length / len(self._doc_lengths)

    def _idf(self, token: str) -> float:
        n_docs = len(self._doc_lengths)
        df = len(self._postings.get(token, ()))
        # BM25+-style floor keeps very common terms from going negative.
        return max(math.log((n_docs - df + 0.5) / (df + 0.5) + 1.0), 0.0)

    def score(self, doc_id: str, query_tokens: list[str]) -> float:
        """BM25 score of one document against tokenized query terms."""
        length = self._doc_lengths.get(doc_id, 0)
        if length == 0:
            return 0.0
        avg = self.average_length or 1.0
        score = 0.0
        for token in query_tokens:
            tf = self._postings.get(token, {}).get(doc_id, 0)
            if tf == 0:
                continue
            idf = self._idf(token)
            score += idf * (tf * (self.k1 + 1)) / (
                tf + self.k1 * (1 - self.b + self.b * length / avg)
            )
        return score

    def search(self, query: str, *, top_k: int = 5) -> list[tuple[Document, float]]:
        """Rank documents against a free-text query; returns (doc, score)."""
        query_tokens = tokenize_query(query)
        if not query_tokens:
            return []
        candidates: set[str] = set()
        for token in query_tokens:
            candidates.update(self._postings.get(token, ()))
        scored = [
            (self.store.get(doc_id), self.score(doc_id, query_tokens))
            for doc_id in candidates
        ]
        ranked = sorted(
            (
                (document, score)
                for document, score in scored
                if document is not None and score > 0.0
            ),
            key=lambda pair: (-pair[1], pair[0].doc_id),
        )
        return ranked[:top_k]
