"""SPEAR-DL: the declarative developer-facing language (paper §6)."""

from repro.dl.ast_nodes import (
    ConditionNode,
    OpCall,
    PipelineDef,
    Program,
    Statement,
    ViewDef,
)
from repro.dl.compiler import CompiledProgram, compile_program, compile_source
from repro.dl.formatter import format_op_call, format_program
from repro.dl.lexer import Token, TokenType, tokenize
from repro.dl.parser import parse

__all__ = [
    "ConditionNode",
    "OpCall",
    "PipelineDef",
    "Program",
    "Statement",
    "ViewDef",
    "CompiledProgram",
    "format_op_call",
    "format_program",
    "compile_program",
    "compile_source",
    "Token",
    "TokenType",
    "tokenize",
    "parse",
]
