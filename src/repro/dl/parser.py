"""SPEAR-DL recursive-descent parser.

Grammar (EBNF-ish)::

    program      := (view_def | pipeline_def)*
    view_def     := "view" NAME "(" [NAME ("," NAME)*] ")"
                    ["extends" NAME] "{" STRING [tags_clause] "}"
    tags_clause  := "tags" ":" NAME ("," NAME)*
    pipeline_def := "pipeline" NAME "{" statement* "}"
    statement    := op_call ["->" op_call]
    op_call      := NAME "[" [arg ("," arg)*] "]"
    arg          := kwarg | expr
    kwarg        := NAME "=" expr
    expr         := STRING | NUMBER | NAME | dict | condition
    dict         := "{" [NAME ":" expr ("," NAME ":" expr)*] "}"
    condition    := "M" "[" STRING "]" ("<" | ">") NUMBER
                  | STRING ["not"] "in" "C"

Conditions are only meaningful inside CHECK/RETRY argument lists; the
parser recognizes them syntactically wherever they appear and the
compiler validates placement.
"""

from __future__ import annotations

from typing import Any

from repro.dl.ast_nodes import (
    ConditionNode,
    OpCall,
    PipelineDef,
    Program,
    Statement,
    ViewDef,
)
from repro.dl.lexer import Token, TokenType, tokenize
from repro.errors import DslSyntaxError

__all__ = ["parse"]


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _error(self, message: str) -> DslSyntaxError:
        token = self.current
        return DslSyntaxError(message, token.line, token.column)

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self._index += 1
        return token

    def _expect(self, token_type: TokenType, what: str | None = None) -> Token:
        if self.current.type is not token_type:
            raise self._error(
                f"expected {what or token_type.value}, got {self.current.value!r}"
            )
        return self._advance()

    def _expect_keyword(self, keyword: str) -> Token:
        if self.current.type is not TokenType.NAME or self.current.value != keyword:
            raise self._error(f"expected {keyword!r}, got {self.current.value!r}")
        return self._advance()

    # -- program --------------------------------------------------------------

    def parse_program(self) -> Program:
        views: list[ViewDef] = []
        pipelines: list[PipelineDef] = []
        while self.current.type is not TokenType.EOF:
            if self.current.type is not TokenType.NAME:
                raise self._error("expected 'view' or 'pipeline'")
            if self.current.value == "view":
                views.append(self._parse_view())
            elif self.current.value == "pipeline":
                pipelines.append(self._parse_pipeline())
            else:
                raise self._error(
                    f"expected 'view' or 'pipeline', got {self.current.value!r}"
                )
        return Program(views=tuple(views), pipelines=tuple(pipelines))

    # -- view definitions ----------------------------------------------------------

    def _parse_view(self) -> ViewDef:
        keyword = self._expect_keyword("view")
        name = self._expect(TokenType.NAME, "view name").value

        params: list[str] = []
        self._expect(TokenType.LPAREN, "'('")
        while self.current.type is not TokenType.RPAREN:
            params.append(self._expect(TokenType.NAME, "parameter name").value)
            if self.current.type is TokenType.COMMA:
                self._advance()
        self._expect(TokenType.RPAREN, "')'")

        base: str | None = None
        if self.current.type is TokenType.NAME and self.current.value == "extends":
            self._advance()
            base = self._expect(TokenType.NAME, "base view name").value

        self._expect(TokenType.LBRACE, "'{'")
        template = self._expect(TokenType.STRING, "view template string").value.strip()

        tags: list[str] = []
        if self.current.type is TokenType.NAME and self.current.value == "tags":
            self._advance()
            self._expect(TokenType.COLON, "':'")
            tags.append(self._expect(TokenType.NAME, "tag").value)
            while self.current.type is TokenType.COMMA:
                self._advance()
                tags.append(self._expect(TokenType.NAME, "tag").value)

        self._expect(TokenType.RBRACE, "'}'")
        return ViewDef(
            name=name,
            params=tuple(params),
            template=template,
            base=base,
            tags=tuple(tags),
            line=keyword.line,
            column=keyword.column,
        )

    # -- pipelines ---------------------------------------------------------------------

    def _parse_pipeline(self) -> PipelineDef:
        keyword = self._expect_keyword("pipeline")
        name = self._expect(TokenType.NAME, "pipeline name").value
        self._expect(TokenType.LBRACE, "'{'")
        statements: list[Statement] = []
        while self.current.type is not TokenType.RBRACE:
            statements.append(self._parse_statement())
        self._expect(TokenType.RBRACE, "'}'")
        return PipelineDef(
            name=name,
            statements=tuple(statements),
            line=keyword.line,
            column=keyword.column,
        )

    def _parse_statement(self) -> Statement:
        op = self._parse_op_call()
        then: OpCall | None = None
        if self.current.type is TokenType.ARROW:
            self._advance()
            then = self._parse_op_call()
        return Statement(op=op, then=then)

    def _parse_op_call(self) -> OpCall:
        name_token = self._expect(TokenType.NAME, "operator name")
        self._expect(TokenType.LBRACKET, "'['")
        args: list[Any] = []
        kwargs: dict[str, Any] = {}
        while self.current.type is not TokenType.RBRACKET:
            if (
                self.current.type is TokenType.NAME
                and self._peek().type is TokenType.EQUALS
            ):
                key = self._advance().value
                self._advance()  # '='
                kwargs[key] = self._parse_expr()
            else:
                args.append(self._parse_expr())
            if self.current.type is TokenType.COMMA:
                self._advance()
            elif self.current.type is not TokenType.RBRACKET:
                raise self._error("expected ',' or ']' in argument list")
        self._expect(TokenType.RBRACKET, "']'")
        return OpCall(
            name=name_token.value,
            args=tuple(args),
            kwargs=kwargs,
            line=name_token.line,
            column=name_token.column,
        )

    # -- expressions ----------------------------------------------------------------------

    def _parse_expr(self) -> Any:
        token = self.current

        if token.type is TokenType.STRING:
            # Could be a bare string or a context condition:
            #   "orders" not in C  /  "orders" in C
            follower = self._peek()
            if follower.type is TokenType.NAME and follower.value in ("not", "in"):
                return self._parse_context_condition()
            return self._advance().value

        if token.type is TokenType.NUMBER:
            self._advance()
            if any(marker in token.value for marker in ".eE"):
                return float(token.value)
            return int(token.value)

        if token.type is TokenType.LBRACE:
            return self._parse_dict()

        if token.type is TokenType.LBRACKET:
            return self._parse_list()

        if token.type is TokenType.NAME:
            if token.value == "M" and self._peek().type is TokenType.LBRACKET:
                return self._parse_metadata_condition()
            # A nested operator term (e.g. RETRY[GEN["x", prompt="qa"], ...]):
            # uppercase NAME followed by '['.
            if token.value.isupper() and self._peek().type is TokenType.LBRACKET:
                return self._parse_op_call()
            value = self._advance().value
            if value == "true":
                return True
            if value == "false":
                return False
            return value

        raise self._error(f"unexpected token {token.value!r} in expression")

    def _parse_list(self) -> list[Any]:
        self._expect(TokenType.LBRACKET, "'['")
        items: list[Any] = []
        while self.current.type is not TokenType.RBRACKET:
            items.append(self._parse_expr())
            if self.current.type is TokenType.COMMA:
                self._advance()
        self._expect(TokenType.RBRACKET, "']'")
        return items

    def _parse_dict(self) -> dict[str, Any]:
        self._expect(TokenType.LBRACE, "'{'")
        result: dict[str, Any] = {}
        while self.current.type is not TokenType.RBRACE:
            key = self._expect(TokenType.NAME, "dict key").value
            self._expect(TokenType.COLON, "':'")
            result[key] = self._parse_expr()
            if self.current.type is TokenType.COMMA:
                self._advance()
        self._expect(TokenType.RBRACE, "'}'")
        return result

    def _parse_metadata_condition(self) -> ConditionNode:
        self._expect_keyword("M")
        self._expect(TokenType.LBRACKET, "'['")
        signal = self._expect(TokenType.STRING, "signal name").value
        self._expect(TokenType.RBRACKET, "']'")
        if self.current.type is TokenType.LT:
            op = "<"
        elif self.current.type is TokenType.GT:
            op = ">"
        else:
            raise self._error("expected '<' or '>' after M[...]")
        self._advance()
        number = self._expect(TokenType.NUMBER, "threshold").value
        return ConditionNode(
            kind="metadata_cmp", key=signal, op=op, value=float(number)
        )

    def _parse_context_condition(self) -> ConditionNode:
        key = self._expect(TokenType.STRING, "context key").value
        negated = False
        if self.current.type is TokenType.NAME and self.current.value == "not":
            negated = True
            self._advance()
        self._expect_keyword("in")
        self._expect_keyword("C")
        return ConditionNode(
            kind="context_missing" if negated else "context_present", key=key
        )


def parse(source: str) -> Program:
    """Parse SPEAR-DL source into a :class:`Program` AST."""
    return _Parser(tokenize(source)).parse_program()
