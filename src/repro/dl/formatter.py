"""SPEAR-DL formatter: render a parsed Program back to canonical source.

Useful for tooling (pretty-printing generated pipelines, diffing DL
programs) and as a correctness anchor: ``parse(format(parse(src)))``
produces the same AST as ``parse(src)`` — the round-trip property tested
in tests/dl/test_formatter.py.
"""

from __future__ import annotations

from typing import Any

from repro.dl.ast_nodes import (
    ConditionNode,
    OpCall,
    PipelineDef,
    Program,
    Statement,
    ViewDef,
)

__all__ = ["format_program", "format_op_call"]


def _format_string(value: str) -> str:
    if "\n" in value or '"' in value:
        return f'"""{value}"""'
    return f'"{value}"'


def _format_value(value: Any) -> str:
    if isinstance(value, ConditionNode):
        return value.text()
    if isinstance(value, OpCall):
        return format_op_call(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return _format_string(value)
    if isinstance(value, float):
        # Keep integral floats readable but still float-typed on reparse.
        text = repr(value)
        return text
    if isinstance(value, int):
        return str(value)
    if isinstance(value, dict):
        inner = ", ".join(
            f"{key}: {_format_value(item)}" for key, item in value.items()
        )
        return "{" + inner + "}"
    if isinstance(value, list):
        return "[" + ", ".join(_format_value(item) for item in value) + "]"
    return str(value)


def format_op_call(call: OpCall) -> str:
    """One operator term in canonical form."""
    parts = [_format_value(arg) for arg in call.args]
    parts.extend(
        f"{name}={_format_value(value)}" for name, value in call.kwargs.items()
    )
    return f"{call.name}[{', '.join(parts)}]"


def _format_statement(statement: Statement) -> str:
    text = format_op_call(statement.op)
    if statement.then is not None:
        text += f" -> {format_op_call(statement.then)}"
    return text


def _format_view(view: ViewDef) -> str:
    header = f"view {view.name}({', '.join(view.params)})"
    if view.base is not None:
        header += f" extends {view.base}"
    lines = [header + " {", f'  """{view.template}"""']
    if view.tags:
        lines.append(f"  tags: {', '.join(view.tags)}")
    lines.append("}")
    return "\n".join(lines)


def _format_pipeline(pipeline: PipelineDef) -> str:
    lines = [f"pipeline {pipeline.name} {{"]
    lines.extend(
        f"  {_format_statement(statement)}" for statement in pipeline.statements
    )
    lines.append("}")
    return "\n".join(lines)


def format_program(program: Program) -> str:
    """Render a full program; views first, then pipelines."""
    chunks = [_format_view(view) for view in program.views]
    chunks.extend(_format_pipeline(pipeline) for pipeline in program.pipelines)
    return "\n\n".join(chunks) + "\n"
