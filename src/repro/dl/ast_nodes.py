"""SPEAR-DL abstract syntax tree nodes.

The parser produces these plain dataclasses; the compiler lowers them to
core operators.  Keeping the AST independent of the operator classes lets
tools (formatters, linters, visualizers) work on DL programs without an
execution environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "ConditionNode",
    "OpCall",
    "Statement",
    "ViewDef",
    "PipelineDef",
    "Program",
]


@dataclass(frozen=True)
class ConditionNode:
    """A condition term inside CHECK[...].

    kinds:
    - ``metadata_cmp``: M["signal"] < value  (op is "<" or ">")
    - ``context_missing``: "key" not in C
    - ``context_present``: "key" in C
    """

    kind: str
    key: str
    op: str | None = None
    value: float | None = None

    def text(self) -> str:
        """Render back to the paper's notation (for ref_log provenance)."""
        if self.kind == "metadata_cmp":
            return f'M["{self.key}"] {self.op} {self.value}'
        if self.kind == "context_missing":
            return f'"{self.key}" not in C'
        return f'"{self.key}" in C'


@dataclass(frozen=True)
class OpCall:
    """One operator term: ``NAME[positional..., kw=value...]``."""

    name: str
    args: tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: source position — metadata only, excluded from equality so ASTs
    #: compare structurally (formatter round-trips shift line numbers).
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Statement:
    """One pipeline statement: an op, optionally with an arrow target.

    ``CHECK[cond] -> REF[...]`` parses as Statement(op=CHECK-call,
    then=REF-call).
    """

    op: OpCall
    then: OpCall | None = None


@dataclass(frozen=True)
class ViewDef:
    """A named view definition."""

    name: str
    params: tuple[str, ...]
    template: str
    base: str | None = None
    tags: tuple[str, ...] = ()
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class PipelineDef:
    """A named pipeline of statements."""

    name: str
    statements: tuple[Statement, ...]
    line: int = field(default=0, compare=False)
    column: int = field(default=0, compare=False)


@dataclass(frozen=True)
class Program:
    """A full SPEAR-DL compilation unit."""

    views: tuple[ViewDef, ...] = ()
    pipelines: tuple[PipelineDef, ...] = ()

    def view(self, name: str) -> ViewDef | None:
        """Look up a view definition by name."""
        for view in self.views:
            if view.name == name:
                return view
        return None

    def pipeline(self, name: str) -> PipelineDef | None:
        """Look up a pipeline definition by name."""
        for pipeline in self.pipelines:
            if pipeline.name == name:
                return pipeline
        return None
