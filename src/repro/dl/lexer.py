"""SPEAR-DL lexer.

SPEAR-DL (paper §6) is the declarative developer-facing layer: view
definitions and pipelines of operator terms.  The surface syntax mirrors
the paper's notation::

    view qa_base(drug) {
      \"\"\"Summarize the patient's medication history and highlight any
      use of {drug}.\"\"\"
      tags: clinical, summary
    }

    pipeline enoxaparin_qa {
      RET["initial_notes", query="p0001"]
      VIEW["qa_base", key="qa", params={drug: "Enoxaparin"}]
      GEN["answer_0", prompt="qa"]
      CHECK[M["confidence"] < 0.7] -> REF[APPEND, "Explain reasoning.", key="qa"]
      GEN["answer_1", prompt="qa"]
    }

The lexer produces a flat token stream; comments (``# ...``) and
whitespace are skipped.  Strings support single, double, and triple
double-quoted forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import DslSyntaxError

__all__ = ["TokenType", "Token", "tokenize", "collect_suppressions"]


class TokenType(str, Enum):
    """Lexical token categories."""

    NAME = "NAME"
    STRING = "STRING"
    NUMBER = "NUMBER"
    LBRACKET = "LBRACKET"
    RBRACKET = "RBRACKET"
    LBRACE = "LBRACE"
    RBRACE = "RBRACE"
    LPAREN = "LPAREN"
    RPAREN = "RPAREN"
    COMMA = "COMMA"
    COLON = "COLON"
    EQUALS = "EQUALS"
    LT = "LT"
    GT = "GT"
    ARROW = "ARROW"
    EOF = "EOF"


@dataclass(frozen=True)
class Token:
    """One lexical token with source position (1-based)."""

    type: TokenType
    value: str
    line: int
    column: int


_PUNCT = {
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    ",": TokenType.COMMA,
    ":": TokenType.COLON,
    "=": TokenType.EQUALS,
    "<": TokenType.LT,
    ">": TokenType.GT,
}


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char == "_"


def tokenize(
    source: str,
    *,
    comments: "list[tuple[str, int, int, bool]] | None" = None,
) -> list[Token]:
    """Lex SPEAR-DL source into tokens; raises :class:`DslSyntaxError`.

    ``comments``, when given, collects every comment as
    ``(text, line, column, trailing)`` — ``trailing`` is True when a
    token precedes the comment on the same line.  The token stream
    itself never contains comments; this side channel is how inline
    ``# spear: ignore[...]`` suppressions reach the checker.
    """
    tokens: list[Token] = []
    position = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal position, line, column
        for __ in range(count):
            if position < length and source[position] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            position += 1

    while position < length:
        char = source[position]

        if char in " \t\r\n":
            advance(1)
            continue

        if char == "#":
            start_line, start_column = line, column
            start = position
            while position < length and source[position] != "\n":
                advance(1)
            if comments is not None:
                comments.append(
                    (
                        source[start:position],
                        start_line,
                        start_column,
                        bool(tokens) and tokens[-1].line == start_line,
                    )
                )
            continue

        if source.startswith('"""', position):
            start_line, start_column = line, column
            end = source.find('"""', position + 3)
            if end < 0:
                raise DslSyntaxError("unterminated triple-quoted string", start_line, start_column)
            value = source[position + 3 : end]
            advance(end + 3 - position)
            tokens.append(Token(TokenType.STRING, value, start_line, start_column))
            continue

        if char in "\"'":
            start_line, start_column = line, column
            quote = char
            end = position + 1
            while end < length and source[end] != quote:
                if source[end] == "\n":
                    raise DslSyntaxError(
                        "unterminated string", start_line, start_column
                    )
                if source[end] == "\\":
                    end += 1
                end += 1
            if end >= length:
                raise DslSyntaxError("unterminated string", start_line, start_column)
            raw = source[position + 1 : end]
            value = raw.replace(f"\\{quote}", quote).replace("\\n", "\n").replace("\\\\", "\\")
            advance(end + 1 - position)
            tokens.append(Token(TokenType.STRING, value, start_line, start_column))
            continue

        if source.startswith("->", position):
            tokens.append(Token(TokenType.ARROW, "->", line, column))
            advance(2)
            continue

        if char.isdigit() or (
            char == "-" and position + 1 < length and source[position + 1].isdigit()
        ):
            start_line, start_column = line, column
            end = position + 1
            while end < length and (source[end].isdigit() or source[end] == "."):
                end += 1
            # Scientific notation: 6e-10, 1.5E+3, 2e7.
            if end < length and source[end] in "eE":
                exponent = end + 1
                if exponent < length and source[exponent] in "+-":
                    exponent += 1
                if exponent < length and source[exponent].isdigit():
                    end = exponent
                    while end < length and source[end].isdigit():
                        end += 1
            value = source[position:end]
            mantissa = value.split("e")[0].split("E")[0]
            if mantissa.count(".") > 1:
                raise DslSyntaxError(f"malformed number {value!r}", start_line, start_column)
            advance(end - position)
            tokens.append(Token(TokenType.NUMBER, value, start_line, start_column))
            continue

        if _is_name_start(char):
            start_line, start_column = line, column
            end = position + 1
            while end < length and _is_name_char(source[end]):
                end += 1
            value = source[position:end]
            advance(end - position)
            tokens.append(Token(TokenType.NAME, value, start_line, start_column))
            continue

        if char in _PUNCT:
            tokens.append(Token(_PUNCT[char], char, line, column))
            advance(1)
            continue

        raise DslSyntaxError(f"unexpected character {char!r}", line, column)

    tokens.append(Token(TokenType.EOF, "", line, column))
    return tokens


def collect_suppressions(source: str) -> "list":
    """Parse every ``# spear: ignore[...]`` comment in ``source``.

    Returns :class:`repro.analysis.suppressions.Suppression` records;
    source that fails to lex yields none (the checker reports SPEAR001
    long before suppressions matter).
    """
    from repro.analysis.suppressions import Suppression

    comments: list[tuple[str, int, int, bool]] = []
    try:
        tokenize(source, comments=comments)
    except DslSyntaxError:
        return []
    suppressions = []
    for text, line, column, trailing in comments:
        suppression = Suppression.from_comment(
            text, line, column, trailing=trailing
        )
        if suppression is not None:
            suppressions.append(suppression)
    return suppressions
