"""SPEAR-DL compiler: lower AST programs to views and operator pipelines.

``compile_program`` registers every view definition into a
:class:`~repro.core.views.ViewRegistry` and lowers every pipeline to a
:class:`~repro.core.pipeline.Pipeline` of core operators.  Operator
argument conventions follow the paper's notation; validation errors raise
:class:`~repro.errors.DslCompileError` with the offending position.

Every lowered operator carries a ``span`` attribute (a
:class:`~repro.analysis.diagnostics.SourceSpan`) pointing back at the DL
source term it came from, so static-analysis diagnostics and runtime
errors can report ``file:line:col`` instead of just the op label.
"""

from __future__ import annotations

from repro.analysis.diagnostics import SourceSpan
from repro.core.algebra import Condition, Operator
from repro.core.derived import DIFF, EXPAND, RETRY, VIEW
from repro.core.entry import RefAction
from repro.core.operators import CHECK, DELEGATE, GEN, MERGE, REF, RET
from repro.core.pipeline import Pipeline
from repro.core.views import ViewRegistry
from repro.dl.ast_nodes import ConditionNode, OpCall, Program, Statement
from repro.dl.parser import parse
from repro.errors import DslCompileError

__all__ = ["CompiledProgram", "compile_program", "compile_source"]


def _condition_from_node(node: ConditionNode) -> Condition:
    if node.kind == "metadata_cmp":
        if node.op == "<":
            return Condition.metadata_below(node.key, float(node.value or 0.0))
        return Condition.metadata_above(node.key, float(node.value or 0.0))
    if node.kind == "context_missing":
        return Condition.missing_context(node.key)
    return Condition.context_contains(node.key)


class CompiledProgram:
    """Views + pipelines produced from one DL compilation unit."""

    def __init__(self, views: ViewRegistry, pipelines: dict[str, Pipeline]) -> None:
        self.views = views
        self.pipelines = pipelines

    def pipeline(self, name: str) -> Pipeline:
        """Look up a compiled pipeline."""
        try:
            return self.pipelines[name]
        except KeyError:
            raise DslCompileError(
                f"no pipeline named {name!r}; available: {sorted(self.pipelines)}"
            ) from None


class _Lowering:
    def __init__(self, views: ViewRegistry, *, filename: str | None = None) -> None:
        self.views = views
        self.filename = filename

    def _span(self, call: OpCall) -> SourceSpan:
        return SourceSpan(file=self.filename, line=call.line, column=call.column)

    def _fail(self, call: OpCall, message: str) -> DslCompileError:
        return DslCompileError(
            f"{self._span(call).render()}: {call.name}: {message}",
            line=call.line,
            column=call.column,
            file=self.filename,
        )

    def _require_string(self, call: OpCall, index: int, what: str) -> str:
        if len(call.args) <= index or not isinstance(call.args[index], str):
            raise self._fail(call, f"expects a string {what} at position {index}")
        return call.args[index]

    # -- per-operator lowering --------------------------------------------

    def lower_op(self, call: OpCall) -> Operator:
        lowerer = getattr(self, f"_lower_{call.name.lower()}", None)
        if lowerer is None:
            raise DslCompileError(
                f"{self._span(call).render()}: unknown operator {call.name!r}",
                line=call.line,
                column=call.column,
                file=self.filename,
            )
        operator = lowerer(call)
        operator.span = self._span(call)
        return operator

    def _lower_ret(self, call: OpCall) -> Operator:
        source = self._require_string(call, 0, "source name")
        allowed = {"query", "prompt", "into"}
        unknown = set(call.kwargs) - allowed
        if unknown:
            raise self._fail(call, f"unknown arguments {sorted(unknown)}")
        return RET(source, **call.kwargs)

    def _lower_gen(self, call: OpCall) -> Operator:
        label = self._require_string(call, 0, "output label")
        prompt = call.kwargs.get("prompt")
        if not isinstance(prompt, str):
            raise self._fail(call, "requires prompt=<prompt key>")
        max_tokens = call.kwargs.get("max_tokens")
        return GEN(label, prompt=prompt, max_tokens=max_tokens)

    def _lower_ref(self, call: OpCall) -> Operator:
        if len(call.args) < 2:
            raise self._fail(call, "expects REF[ACTION, text, key=...]")
        action_name = call.args[0]
        if not isinstance(action_name, str):
            raise self._fail(call, "action must be a name like APPEND")
        try:
            action = RefAction(action_name.upper())
        except ValueError:
            raise self._fail(call, f"unknown action {action_name!r}") from None
        text = call.args[1]
        if not isinstance(text, str):
            raise self._fail(call, "refinement text must be a string")
        key = call.kwargs.get("key")
        if not isinstance(key, str):
            raise self._fail(call, "requires key=<prompt key>")
        mode = call.kwargs.get("mode")
        return REF(action, text, key=key, mode=mode.upper() if mode else None)

    def _lower_expand(self, call: OpCall) -> Operator:
        key = self._require_string(call, 0, "prompt key")
        addition = self._require_string(call, 1, "addition")
        return EXPAND(key, addition, mode=call.kwargs.get("mode"))

    def _lower_check(self, call: OpCall, then: Operator | None = None) -> Operator:
        if len(call.args) != 1 or not isinstance(call.args[0], ConditionNode):
            raise self._fail(call, "expects a single condition, e.g. M[\"confidence\"] < 0.7")
        return CHECK(_condition_from_node(call.args[0]), then=then)

    def _lower_merge(self, call: OpCall) -> Operator:
        key_1 = self._require_string(call, 0, "prompt key")
        key_2 = self._require_string(call, 1, "prompt key")
        return MERGE(
            key_1,
            key_2,
            into=call.kwargs.get("into"),
            strategy=call.kwargs.get("strategy", "concat"),
        )

    def _lower_delegate(self, call: OpCall) -> Operator:
        agent = self._require_string(call, 0, "agent name")
        payload = call.kwargs.get("payload") or (
            call.args[1] if len(call.args) > 1 else None
        )
        if not isinstance(payload, str):
            raise self._fail(call, "requires payload=<context key>")
        into = call.kwargs.get("into")
        if not isinstance(into, str):
            raise self._fail(call, "requires into=<context key>")
        return DELEGATE(agent, payload, into=into)

    def _lower_view(self, call: OpCall) -> Operator:
        name = self._require_string(call, 0, "view name")
        if name not in self.views:
            raise self._fail(call, f"references unknown view {name!r}")
        params = call.kwargs.get("params", {})
        if not isinstance(params, dict):
            raise self._fail(call, "params must be a {key: value} dict")
        return VIEW(name, key=call.kwargs.get("key"), params=params)

    def _lower_select_view(self, call: OpCall) -> Operator:
        from repro.optimizer.select_view_op import SelectView

        candidates = call.kwargs.get("candidates")
        terms = call.kwargs.get("terms")
        key = call.kwargs.get("key")
        if not isinstance(candidates, list) or not all(
            isinstance(name, str) for name in candidates
        ):
            raise self._fail(call, "requires candidates=[\"view\", ...]")
        if not isinstance(terms, list) or not all(
            isinstance(term, str) for term in terms
        ):
            raise self._fail(call, "requires terms=[\"term\", ...]")
        if not isinstance(key, str):
            raise self._fail(call, "requires key=<prompt key>")
        for name in candidates:
            if name not in self.views:
                raise self._fail(call, f"references unknown view {name!r}")
        params = call.kwargs.get("params", {})
        if not isinstance(params, dict):
            raise self._fail(call, "params must be a {key: value} dict")
        return SelectView(candidates, terms, key=key, params=params)

    def _lower_fused_gen(self, call: OpCall) -> Operator:
        from repro.optimizer.gen_fusion import FusedGen

        labels = call.kwargs.get("labels")
        prompts = call.kwargs.get("prompts")
        if (
            not isinstance(labels, list)
            or not isinstance(prompts, list)
            or len(labels) != len(prompts)
            or len(labels) < 2
        ):
            raise self._fail(
                call,
                "requires labels=[...] and prompts=[...] of equal length >= 2",
            )
        return FusedGen(list(zip(labels, prompts)))

    def _lower_retry(self, call: OpCall) -> Operator:
        if len(call.args) != 2:
            raise self._fail(
                call, "expects RETRY[<operator>, <condition>, ...options]"
            )
        inner, condition = call.args
        if not isinstance(inner, OpCall):
            raise self._fail(call, "first argument must be an operator term")
        if not isinstance(condition, ConditionNode):
            raise self._fail(call, "second argument must be a condition")
        refine_call = call.kwargs.get("refine")
        refine = (
            self.lower_op(refine_call)
            if isinstance(refine_call, OpCall)
            else None
        )
        max_retries = call.kwargs.get("max_retries", 2)
        if not isinstance(max_retries, int):
            raise self._fail(call, "max_retries must be an integer")
        # The DSL's retry budget lowers onto a first-class RetryPolicy so
        # DSL retries and runtime-injected fault retries share semantics
        # (error-retry with deterministic backoff included).
        from repro.resilience.policies import RetryPolicy

        return RETRY(
            self.lower_op(inner),
            _condition_from_node(condition),
            refine=refine,
            policy=RetryPolicy(max_attempts=max_retries + 1),
        )

    def _lower_diff(self, call: OpCall) -> Operator:
        key_1 = self._require_string(call, 0, "prompt key")
        key_2 = self._require_string(call, 1, "prompt key")
        return DIFF(key_1, key_2, into=call.kwargs.get("into", "diff"))

    # -- statements -------------------------------------------------------------

    def lower_statement(self, statement: Statement) -> Operator:
        if statement.then is not None:
            if statement.op.name != "CHECK":
                raise DslCompileError(
                    f"{self._span(statement.op).render()}: "
                    "'->' is only valid after CHECK",
                    line=statement.op.line,
                    column=statement.op.column,
                    file=self.filename,
                )
            then = self.lower_op(statement.then)
            operator = self._lower_check(statement.op, then=then)
            operator.span = self._span(statement.op)
            return operator
        if statement.op.name == "CHECK":
            operator = self._lower_check(statement.op)
            operator.span = self._span(statement.op)
            return operator
        return self.lower_op(statement.op)


def compile_program(
    program: Program,
    *,
    views: ViewRegistry | None = None,
    filename: str | None = None,
) -> CompiledProgram:
    """Lower a parsed program into views + pipelines.

    ``filename`` (when known) is stamped into every operator span and
    compile error so reports read ``file:line:col``.
    """
    registry = views if views is not None else ViewRegistry()
    for view in program.views:
        registry.define(
            view.name,
            view.template,
            params=view.params,
            base=view.base,
            tags=set(view.tags),
        )
    lowering = _Lowering(registry, filename=filename)
    pipelines = {
        pipeline_def.name: Pipeline(
            [lowering.lower_statement(statement) for statement in pipeline_def.statements],
            name=pipeline_def.name,
        )
        for pipeline_def in program.pipelines
    }
    return CompiledProgram(registry, pipelines)


def compile_source(
    source: str,
    *,
    views: ViewRegistry | None = None,
    filename: str | None = None,
) -> CompiledProgram:
    """Parse and compile SPEAR-DL source in one step."""
    return compile_program(parse(source), views=views, filename=filename)
