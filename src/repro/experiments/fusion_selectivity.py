"""Table 4: performance gain by fusion type and selectivity.

Two pipeline configurations over the tweet corpus:

- **Map→Filter**: clean up the tweet, then classify sentiment — every
  input passes through both stages, so fusion saves a full call per item
  at *every* selectivity (≈20% in the paper).
- **Filter→Map**: filter for negative sentiment, then clean up — the
  sequential plan enjoys predicate pushdown (Map runs only on kept items),
  so fusion loses at low selectivity and wins only as selectivity rises.

Selectivity is controlled by the corpus generator's negative fraction
(the filter's pass rate).  Gain is ``1 − fused_time / sequential_time``.

Run directly: ``python -m repro.experiments.fusion_selectivity``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.tweets import make_tweet_corpus
from repro.eval.tables import format_table
from repro.experiments.common import (
    accuracy_against_negatives,
    make_llm,
    run_filter_map_sequential,
    run_fused,
    run_map_filter_sequential,
)

__all__ = [
    "SELECTIVITIES",
    "PAPER_TABLE4",
    "FusionCell",
    "Table4Result",
    "run_cell",
    "run_table4",
    "main",
]

SELECTIVITIES = (0.1, 0.3, 0.5, 0.8, 1.0)

#: The paper's published Table 4 (gain %, by fusion type × selectivity).
PAPER_TABLE4 = {
    "map_filter": {0.1: 23.11, 0.3: 23.40, 0.5: 21.72, 0.8: 21.16, 1.0: 19.42},
    "filter_map": {0.1: -10.35, 0.3: -3.99, 0.5: 3.21, 0.8: 16.27, 1.0: 21.17},
}


@dataclass(frozen=True)
class FusionCell:
    """Measured sequential-vs-fused comparison at one selectivity."""

    order: str
    selectivity: float
    sequential_s: float
    fused_s: float
    sequential_accuracy: float
    fused_accuracy: float

    @property
    def gain_pct(self) -> float:
        """Relative time saved by fusion, in percent (negative = slower)."""
        if self.sequential_s == 0:
            return 0.0
        return (1.0 - self.fused_s / self.sequential_s) * 100.0

    @property
    def accuracy_drop_pct(self) -> float:
        """Accuracy lost by fusing, in percentage points."""
        return (self.sequential_accuracy - self.fused_accuracy) * 100.0


@dataclass(frozen=True)
class Table4Result:
    """All cells of the reproduced Table 4."""

    cells: dict[tuple[str, float], FusionCell]

    def gain(self, order: str, selectivity: float) -> float:
        """Gain % for one (order, selectivity) cell."""
        return self.cells[(order, selectivity)].gain_pct

    def rows(self) -> list[list]:
        """Two table rows (one per fusion type), columns by selectivity."""
        rows = []
        for order, label in (
            ("map_filter", "Map->Filter"),
            ("filter_map", "Filter->Map"),
        ):
            row = [label]
            for selectivity in SELECTIVITIES:
                row.append(f"{self.gain(order, selectivity):+.2f}%")
            rows.append(row)
        return rows


def run_cell(
    order: str,
    selectivity: float,
    *,
    n: int = 400,
    seed: int = 7,
    profile: str = "qwen2.5-7b-instruct",
) -> FusionCell:
    """Run sequential and fused plans at one selectivity; fresh caches each."""
    corpus = make_tweet_corpus(n, seed=seed, negative_fraction=selectivity)

    sequential_llm = make_llm(profile)
    if order == "map_filter":
        sequential = run_map_filter_sequential(sequential_llm, corpus)
    elif order == "filter_map":
        sequential = run_filter_map_sequential(sequential_llm, corpus)
    else:
        raise ValueError(f"unknown order {order!r}")

    fused_llm = make_llm(profile)
    fused = run_fused(fused_llm, corpus, order=order)

    return FusionCell(
        order=order,
        selectivity=selectivity,
        sequential_s=sequential.sim_seconds,
        fused_s=fused.sim_seconds,
        sequential_accuracy=accuracy_against_negatives(sequential, corpus),
        fused_accuracy=accuracy_against_negatives(fused, corpus),
    )


def run_table4(
    *,
    n: int = 400,
    seed: int = 7,
    profile: str = "qwen2.5-7b-instruct",
) -> Table4Result:
    """Run every (order × selectivity) cell."""
    cells = {
        (order, selectivity): run_cell(
            order, selectivity, n=n, seed=seed, profile=profile
        )
        for order in ("map_filter", "filter_map")
        for selectivity in SELECTIVITIES
    }
    return Table4Result(cells=cells)


def main() -> None:
    """Regenerate Table 4 and print measured-vs-paper."""
    table = run_table4()
    headers = ["Fusion Type"] + [f"{int(s * 100)}%" for s in SELECTIVITIES]
    print(format_table(headers, table.rows(), title="Table 4 (reproduced): gain by fusion type and selectivity"))
    print()
    paper_rows = [
        ["Map->Filter"] + [f"{PAPER_TABLE4['map_filter'][s]:+.2f}%" for s in SELECTIVITIES],
        ["Filter->Map"] + [f"{PAPER_TABLE4['filter_map'][s]:+.2f}%" for s in SELECTIVITIES],
    ]
    print(format_table(headers, paper_rows, title="Table 4 (paper, for reference)"))


if __name__ == "__main__":
    main()
