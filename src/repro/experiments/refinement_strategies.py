"""Table 3: comparison of prompt refinement strategies.

The paper's task: a Map (summarize) + Filter (negative sentiment) pipeline
stored as a reusable view V, refined at runtime to focus on school-related
content.  Five strategies produce the refined filter prompt:

1. **Static Prompt**     — a hand-written, from-scratch prompt (no V).
2. **Agentic Rewrite**   — the LLM writes a new prompt from the objective
   alone (no V).
3. **Manual Refinement** — a refinement instruction appended to V.
4. **Assisted Refinement** — the LLM rewrites V given the original
   instruction plus a refinement hint.
5. **Auto Refinement**   — the LLM refines V from the original instruction
   plus a high-level objective; per-item adaptive hints are injected for
   items the risk heuristic flags.

For each strategy we report mean per-item pipeline time (simulated
seconds), speedup over Static, F1 against the school-related-negative
ground truth, F1 gain over Static, and the refined stage's prefix-cache
hit rate — the same columns as the paper's Table 3.

Run directly: ``python -m repro.experiments.refinement_strategies``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.derived import VIEW
from repro.core.refinement import (
    assisted_refinement,
    auto_refinement,
    build_rewrite_prompt,
    manual_refinement,
)
from repro.core.state import ExecutionState
from repro.data.tweets import Tweet, TweetCorpus, make_tweet_corpus
from repro.eval.metrics import prf_from_sets
from repro.eval.tables import format_table
from repro.experiments.common import (
    StageRun,
    build_views,
    compose_item_prompt,
    make_llm,
)
from repro.llm.model import SimulatedLLM

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import ObsCollector

__all__ = [
    "StrategyResult",
    "Table3Result",
    "STRATEGIES",
    "PAPER_TABLE3",
    "run_strategy",
    "run_table3",
    "main",
]

REFINEMENT_HINT = (
    "school-related content such as classes, exams, teachers, and homework"
)
OBJECTIVE = "select tweets with negative sentiment about school"

#: The static strategy's hand-written prompt.  The paper keeps prompt
#: lengths "relatively consistent" across strategies for fairness, so this
#: carries the same amount of guidance as the view scaffold — but written
#: ad hoc, item-first, so no prefix is shareable across items.
STATIC_PROMPT_TEMPLATE = """Tweet:
{tweet}
Read the tweet above and decide whether it is a negative tweet about school.
General guidance:
- Read the whole tweet before deciding anything.
- Ignore handles (like @someone), hashtags, and links when judging content.
- Treat elongated words (soooo) and shouting case as emphasis, not meaning.
- Judge only what the text itself expresses, not what it implies about the author.
- If the tweet quotes someone else, treat the quoted words as part of the tweet.
- Do not invent information that is not present in the tweet.
- Give your answer in exactly the requested format with no extra commentary.
Respond with yes or no."""

STRATEGIES = (
    "static",
    "agentic",
    "manual",
    "assisted",
    "auto",
)

#: The paper's published Table 3, for side-by-side reporting.
PAPER_TABLE3 = {
    "static": {"time_s": 3.10, "speedup": 1.00, "f1": 0.70, "cache_hit": 0.0},
    "agentic": {"time_s": 2.87, "speedup": 1.07, "f1": 0.79, "cache_hit": 0.0},
    "manual": {"time_s": 2.08, "speedup": 1.33, "f1": 0.75, "cache_hit": 96.8},
    "assisted": {"time_s": 2.26, "speedup": 1.27, "f1": 0.74, "cache_hit": 88.2},
    "auto": {"time_s": 2.12, "speedup": 1.32, "f1": 0.81, "cache_hit": 80.6},
}


@dataclass(frozen=True)
class StrategyResult:
    """Measured outcome of one strategy."""

    strategy: str
    mean_item_seconds: float
    f1: float
    filter_cache_hit: float  # in [0, 1]
    filter_prompt: str
    selected: frozenset[str]


@dataclass(frozen=True)
class Table3Result:
    """All five strategies plus derived columns."""

    results: dict[str, StrategyResult]
    corpus_size: int

    def speedup(self, strategy: str) -> float:
        """Speedup of ``strategy`` over the Static baseline."""
        baseline = self.results["static"].mean_item_seconds
        measured = self.results[strategy].mean_item_seconds
        if measured == 0:
            return 0.0
        return baseline / measured

    def f1_gain_pct(self, strategy: str) -> float:
        """F1 gain of ``strategy`` over the Static baseline, in percent."""
        baseline = self.results["static"].f1
        if baseline == 0:
            return 0.0
        return (self.results[strategy].f1 - baseline) / baseline * 100.0

    def rows(self) -> list[list]:
        """Table rows in the paper's column order."""
        names = {
            "static": "Static Prompt",
            "agentic": "Agentic Rewrite",
            "manual": "Manual Refinement",
            "assisted": "Assisted Refinement",
            "auto": "Auto Refinement",
        }
        return [
            [
                names[strategy],
                round(self.results[strategy].mean_item_seconds, 2),
                round(self.speedup(strategy), 2),
                round(self.results[strategy].f1, 2),
                round(self.f1_gain_pct(strategy), 1),
                round(self.results[strategy].filter_cache_hit * 100.0, 1),
            ]
            for strategy in STRATEGIES
        ]


def _adaptive_hint_for(tweet: Tweet) -> str | None:
    """The per-item hint auto mode injects for risk-flagged items.

    The risk heuristic flags tweets with noisy surface markers (mentions,
    hashtags) — extra noise correlates with harder judgements in the
    corpus model, so auto mode spends hint tokens exactly there.
    """
    if "@" not in tweet.text and "#" not in tweet.text:
        return None
    snippet = " ".join(tweet.text.split()[-4:])
    return (
        f'Hint: the tweet ends "{snippet}"; strip the noise markers first, '
        "then weigh its topic and tone carefully."
    )


def _build_filter_instructions(strategy: str, llm: SimulatedLLM) -> str:
    """Produce the refined filter prompt text for one strategy.

    View-based strategies go through the real operator path (VIEW + the
    refinement-mode helpers), so their rewrite calls are charged to the
    clock and their provenance lands in the ref_log.
    """
    if strategy == "static":
        return STATIC_PROMPT_TEMPLATE

    if strategy == "agentic":
        result = llm.generate(
            build_rewrite_prompt(None, objective=OBJECTIVE), use_cache=False
        )
        return result.text

    state = ExecutionState(model=llm, views=build_views())
    state = VIEW("filter_stage", key="filter_prompt").apply(state)
    if strategy == "manual":
        refine = manual_refinement(
            "filter_prompt", f"Focus on {REFINEMENT_HINT}."
        )
    elif strategy == "assisted":
        refine = assisted_refinement("filter_prompt", REFINEMENT_HINT)
    elif strategy == "auto":
        refine = auto_refinement("filter_prompt", OBJECTIVE)
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    state = refine.apply(state)
    return state.prompts["filter_prompt"].text


def run_strategy(
    strategy: str,
    corpus: TweetCorpus,
    *,
    profile: str = "qwen2.5-7b-instruct",
    collector: "ObsCollector | None" = None,
) -> StrategyResult:
    """Execute the full Map + refined-Filter pipeline for one strategy.

    Pass an :class:`~repro.obs.ObsCollector` to accrue model-layer
    metrics (calls, tokens, latency, cache gauges) for the run; each
    strategy's model is attached under the label ``profile/strategy``.
    """
    llm = make_llm(profile)
    llm.bind_tweets(corpus)
    if collector is not None:
        collector.attach_model(llm, name=f"{profile}/{strategy}")
    views = build_views()
    map_instruction = views.expand("map_stage")
    filter_instructions = _build_filter_instructions(strategy, llm)

    run = StageRun()
    filter_run = StageRun()
    for tweet in corpus:
        map_result = llm.generate(compose_item_prompt(map_instruction, tweet.text))
        run.record_call(map_result)

        if strategy in ("static", "agentic"):
            # Item-first templates: interpolate the tweet where the prompt
            # places it (at the top) — no cacheable prefix across items.
            prompt = filter_instructions.replace("{tweet}", tweet.text)
        else:
            instructions = filter_instructions
            if strategy == "auto":
                hint = _adaptive_hint_for(tweet)
                if hint is not None:
                    instructions = f"{instructions}\n{hint}"
            prompt = compose_item_prompt(instructions, tweet.text)

        filter_result = llm.generate(prompt)
        run.record_call(filter_result)
        filter_run.record_call(filter_result)
        decision = bool(filter_result.extras.get("decision"))
        run.record_decision(tweet, decision)
        filter_run.record_decision(tweet, decision)

    truth = {tweet.uid for tweet in corpus.school_negatives()}
    prf = prf_from_sets(run.selected, truth)
    return StrategyResult(
        strategy=strategy,
        mean_item_seconds=run.sim_seconds / len(corpus),
        f1=prf.f1,
        filter_cache_hit=filter_run.cache_hit_rate,
        filter_prompt=filter_instructions,
        selected=frozenset(run.selected),
    )


def run_table3(
    *,
    n: int = 1000,
    seed: int = 7,
    profile: str = "qwen2.5-7b-instruct",
    negative_fraction: float = 0.5,
    school_fraction: float = 0.5,
    collector: "ObsCollector | None" = None,
) -> Table3Result:
    """Run all five strategies on one seeded corpus."""
    corpus = make_tweet_corpus(
        n,
        seed=seed,
        negative_fraction=negative_fraction,
        school_fraction=school_fraction,
    )
    results = {
        strategy: run_strategy(
            strategy, corpus, profile=profile, collector=collector
        )
        for strategy in STRATEGIES
    }
    return Table3Result(results=results, corpus_size=n)


def main() -> None:
    """Regenerate Table 3 and print measured-vs-paper."""
    table = run_table3()
    headers = ["Strategy", "Time (s)", "Speedup (x)", "F1", "F1 Gain (%)", "Cache Hit (%)"]
    print(format_table(headers, table.rows(), title="Table 3 (reproduced)"))
    print()
    paper_rows = [
        [
            strategy,
            PAPER_TABLE3[strategy]["time_s"],
            PAPER_TABLE3[strategy]["speedup"],
            PAPER_TABLE3[strategy]["f1"],
            PAPER_TABLE3[strategy]["cache_hit"],
        ]
        for strategy in STRATEGIES
    ]
    print(
        format_table(
            ["Strategy", "Time (s)", "Speedup (x)", "F1", "Cache Hit (%)"],
            paper_rows,
            title="Table 3 (paper, for reference)",
        )
    )


if __name__ == "__main__":
    main()
