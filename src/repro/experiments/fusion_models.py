"""Figure 1: performance gain vs accuracy drop under fusion, per model.

The paper plots, for Qwen2.5-7B-Instruct, Mistral-7B-Instruct, and
GPT-4o-mini, the speedup and accuracy cost of fusing each pipeline order
at the corpus's natural selectivity (balanced corpus, ≈50% negative):

- Map→Filter fusion: clear speedups (up to 1.33×) at a modest accuracy
  cost (4–8%);
- Filter→Map fusion: smaller or negative speedups, accuracy drops 0.3–6%.

Run directly: ``python -m repro.experiments.fusion_models``
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.tweets import make_tweet_corpus
from repro.eval.tables import format_table
from repro.experiments.common import (
    accuracy_against_negatives,
    make_llm,
    run_filter_map_sequential,
    run_fused,
    run_map_filter_sequential,
)

__all__ = ["MODELS", "Figure1Point", "Figure1Result", "run_figure1", "main"]

MODELS = ("qwen2.5-7b-instruct", "mistral-7b-instruct", "gpt-4o-mini")

#: Shape targets from the paper's Figure 1 discussion (§7).
PAPER_FIGURE1_SHAPE = {
    "map_filter": {"max_speedup": 1.33, "accuracy_drop_range": (4.0, 8.0)},
    "filter_map": {"accuracy_drop_range": (0.3, 6.0)},
}


@dataclass(frozen=True)
class Figure1Point:
    """One (model, fusion order) point of the figure."""

    model: str
    order: str
    sequential_s: float
    fused_s: float
    sequential_accuracy: float
    fused_accuracy: float

    @property
    def speedup(self) -> float:
        """Sequential time / fused time (>1 means fusion is faster)."""
        if self.fused_s == 0:
            return 0.0
        return self.sequential_s / self.fused_s

    @property
    def gain_pct(self) -> float:
        """Relative time saved by fusion, in percent."""
        if self.sequential_s == 0:
            return 0.0
        return (1.0 - self.fused_s / self.sequential_s) * 100.0

    @property
    def accuracy_drop_pct(self) -> float:
        """Accuracy lost by fusing, in percentage points."""
        return (self.sequential_accuracy - self.fused_accuracy) * 100.0


@dataclass(frozen=True)
class Figure1Result:
    """All six points (3 models × 2 orders)."""

    points: dict[tuple[str, str], Figure1Point]

    def point(self, model: str, order: str) -> Figure1Point:
        """Look up one point."""
        return self.points[(model, order)]

    def rows(self) -> list[list]:
        """Table rows: one per (model, order)."""
        rows = []
        for model in MODELS:
            for order, label in (
                ("map_filter", "Map->Filter"),
                ("filter_map", "Filter->Map"),
            ):
                point = self.points[(model, order)]
                rows.append(
                    [
                        model,
                        label,
                        f"{point.speedup:.2f}x",
                        f"{point.gain_pct:+.1f}%",
                        f"{point.accuracy_drop_pct:+.1f}pp",
                    ]
                )
        return rows


def run_point(
    model: str,
    order: str,
    *,
    n: int = 400,
    seed: int = 7,
    negative_fraction: float = 0.5,
) -> Figure1Point:
    """Measure one (model, order) point with fresh caches."""
    corpus = make_tweet_corpus(n, seed=seed, negative_fraction=negative_fraction)
    sequential_llm = make_llm(model)
    if order == "map_filter":
        sequential = run_map_filter_sequential(sequential_llm, corpus)
    else:
        sequential = run_filter_map_sequential(sequential_llm, corpus)
    fused_llm = make_llm(model)
    fused = run_fused(fused_llm, corpus, order=order)
    return Figure1Point(
        model=model,
        order=order,
        sequential_s=sequential.sim_seconds,
        fused_s=fused.sim_seconds,
        sequential_accuracy=accuracy_against_negatives(sequential, corpus),
        fused_accuracy=accuracy_against_negatives(fused, corpus),
    )


def run_figure1(
    *, n: int = 400, seed: int = 7, negative_fraction: float = 0.5
) -> Figure1Result:
    """Measure all (model × order) points."""
    points = {
        (model, order): run_point(
            model, order, n=n, seed=seed, negative_fraction=negative_fraction
        )
        for model in MODELS
        for order in ("map_filter", "filter_map")
    }
    return Figure1Result(points=points)


def main() -> None:
    """Regenerate Figure 1's data series."""
    figure = run_figure1()
    headers = ["Model", "Fusion", "Speedup", "Gain", "Accuracy drop"]
    print(
        format_table(
            headers,
            figure.rows(),
            title="Figure 1 (reproduced): fusion gain vs accuracy drop",
        )
    )
    print()
    print(
        "Paper shape: Map->Filter speedups up to 1.33x with 4-8pp accuracy "
        "cost;\nFilter->Map speedups smaller or negative with 0.3-6pp drops."
    )


if __name__ == "__main__":
    main()
