"""Shared machinery for the §7 experiments.

The evaluation pipeline is the paper's: tweets flow through a Map stage
(clean up / summarize) and a Filter stage (negative sentiment), defined as
reusable views; Table 3 refines the pipeline toward school-related
content, Table 4 and Figure 1 compare sequential vs fused execution.

Every run uses a fresh :class:`~repro.llm.SimulatedLLM` (cold caches), a
seeded corpus, and the virtual clock for timing — runs are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.views import ViewRegistry
from repro.data.tweets import Tweet, TweetCorpus
from repro.llm.model import SimulatedLLM
from repro.llm.tasks import POST_ITEM_MARKER
from repro.optimizer.fusion import LlmStage, build_fused_instruction

__all__ = [
    "POST_ITEM_MARKER",
    "MAP_INSTRUCTION",
    "FILTER_NEG_INSTRUCTION",
    "SCAFFOLD",
    "build_views",
    "compose_item_prompt",
    "StageRun",
    "run_map_filter_sequential",
    "run_filter_map_sequential",
    "run_fused",
    "accuracy_against_negatives",
    "make_llm",
]

MAP_INSTRUCTION = (
    "Summarize and clean up the tweet in at most 30 words, removing "
    "handles, hashtags, and links."
)

FILTER_NEG_INSTRUCTION = (
    "Select the tweet only if its sentiment is negative. "
    "Respond with yes or no."
)

#: The shared scaffold of the reusable pipeline view V.  Deliberately
#: substantial: view-based prompts front-load stable guidance, which is
#: exactly what makes them prefix-cacheable (paper §5).
SCAFFOLD = """### Task
You are given one tweet from a public social media stream.
General guidance:
- Read the whole tweet before deciding anything.
- Ignore handles (like @someone), hashtags, and links when judging content.
- Treat elongated words (soooo) and shouting case as emphasis, not meaning.
- Judge only what the text itself expresses, not what it implies about the author.
- If the tweet quotes someone else, treat the quoted words as part of the tweet.
- Do not invent information that is not present in the tweet.
- Give your answer in exactly the requested format with no extra commentary."""


def build_views(registry: ViewRegistry | None = None) -> ViewRegistry:
    """Register the pipeline's views: scaffold, map stage, filter stage.

    Returns the registry (a fresh one when none is given).  The map and
    filter views extend the shared scaffold — the composed pair is the
    paper's reusable view V.
    """
    views = registry if registry is not None else ViewRegistry()
    views.define("tweet_scaffold", SCAFFOLD, tags={"sentiment", "base"})
    views.define(
        "map_stage",
        MAP_INSTRUCTION,
        base="tweet_scaffold",
        tags={"sentiment", "map"},
        description="Clean up / summarize one tweet (the Map stage of V).",
    )
    views.define(
        "filter_stage",
        FILTER_NEG_INSTRUCTION,
        base="tweet_scaffold",
        tags={"sentiment", "filter"},
        description="Negative-sentiment selection (the Filter stage of V).",
    )
    return views


def compose_item_prompt(instructions: str, item_text: str) -> str:
    """Compose the per-item prompt: instructions, the item, post-item lines.

    The item goes on its own line (the simulated model grounds it by exact
    line lookup); any instruction lines carrying :data:`POST_ITEM_MARKER`
    are moved after the item.
    """
    pre_lines = []
    post_lines = []
    for line in instructions.splitlines():
        if line.strip().startswith(POST_ITEM_MARKER):
            post_lines.append(line)
        else:
            pre_lines.append(line)
    parts = ["\n".join(pre_lines), "Tweet:", item_text]
    if post_lines:
        parts.append("\n".join(post_lines))
    return "\n".join(parts)


def make_llm(profile: str, *, enable_prefix_cache: bool = True) -> SimulatedLLM:
    """A fresh model instance with cold caches for one experiment run."""
    return SimulatedLLM(profile, enable_prefix_cache=enable_prefix_cache)


@dataclass
class StageRun:
    """Aggregate outcome of running a (multi-stage) pipeline over a corpus."""

    #: uids of items the filter kept.
    selected: set[str] = field(default_factory=set)
    #: per-item predicted decisions keyed by uid.
    decisions: dict[str, bool] = field(default_factory=dict)
    #: total simulated seconds across all calls.
    sim_seconds: float = 0.0
    calls: int = 0
    prompt_tokens: int = 0
    cached_tokens: int = 0
    output_tokens: int = 0

    @property
    def cache_hit_rate(self) -> float:
        """Token-level prefix-cache hit rate across the run."""
        if self.prompt_tokens == 0:
            return 0.0
        return self.cached_tokens / self.prompt_tokens

    @property
    def mean_item_seconds(self) -> float:
        """Mean simulated seconds per selected-or-rejected item."""
        if not self.decisions:
            return 0.0
        return self.sim_seconds / len(self.decisions)

    def record_call(self, result) -> None:
        """Fold one GenerationResult into the aggregates."""
        self.sim_seconds += result.latency.total
        self.calls += 1
        self.prompt_tokens += result.prompt_tokens
        self.cached_tokens += result.cached_tokens
        self.output_tokens += result.output_tokens

    def record_decision(self, tweet: Tweet, decision: bool) -> None:
        """Record the filter verdict for one item."""
        self.decisions[tweet.uid] = decision
        if decision:
            self.selected.add(tweet.uid)


def run_map_filter_sequential(
    llm: SimulatedLLM, corpus: TweetCorpus, *, views: ViewRegistry | None = None
) -> StageRun:
    """Sequential Map→Filter: summarize every tweet, then classify summaries."""
    views = views if views is not None else build_views()
    llm.bind_tweets(corpus)
    map_instruction = views.expand("map_stage")
    filter_instruction = views.expand("filter_stage")
    run = StageRun()
    for tweet in corpus:
        map_result = llm.generate(compose_item_prompt(map_instruction, tweet.text))
        run.record_call(map_result)
        filter_result = llm.generate(
            compose_item_prompt(filter_instruction, map_result.text)
        )
        run.record_call(filter_result)
        run.record_decision(tweet, bool(filter_result.extras.get("decision")))
    return run


def run_filter_map_sequential(
    llm: SimulatedLLM, corpus: TweetCorpus, *, views: ViewRegistry | None = None
) -> StageRun:
    """Sequential Filter→Map: classify raw tweets, summarize only the kept.

    This is the predicate-pushdown plan: at low selectivity most Map calls
    are skipped, which is why fusing this order can *lose* (paper §7).
    """
    views = views if views is not None else build_views()
    llm.bind_tweets(corpus)
    map_instruction = views.expand("map_stage")
    filter_instruction = views.expand("filter_stage")
    run = StageRun()
    for tweet in corpus:
        filter_result = llm.generate(
            compose_item_prompt(filter_instruction, tweet.text)
        )
        run.record_call(filter_result)
        decision = bool(filter_result.extras.get("decision"))
        run.record_decision(tweet, decision)
        if decision:
            map_result = llm.generate(
                compose_item_prompt(map_instruction, tweet.text)
            )
            run.record_call(map_result)
    return run


def run_fused(
    llm: SimulatedLLM,
    corpus: TweetCorpus,
    *,
    order: str,
    map_output_tokens: int = 22,
) -> StageRun:
    """Fused execution: one combined call per item, in either stage order."""
    map_stage = LlmStage(
        kind="map",
        instruction=MAP_INSTRUCTION,
        expected_output_tokens=map_output_tokens,
    )
    filter_stage = LlmStage(
        kind="filter", instruction=FILTER_NEG_INSTRUCTION, expected_output_tokens=3
    )
    if order == "map_filter":
        fused_instruction = build_fused_instruction(map_stage, filter_stage)
    elif order == "filter_map":
        fused_instruction = build_fused_instruction(filter_stage, map_stage)
    else:
        raise ValueError(f"order must be 'map_filter' or 'filter_map': {order!r}")
    # The fused prompt keeps the shared scaffold, like the views do.
    fused_instruction = f"{SCAFFOLD}\n{fused_instruction}"

    llm.bind_tweets(corpus)
    run = StageRun()
    for tweet in corpus:
        result = llm.generate(compose_item_prompt(fused_instruction, tweet.text))
        run.record_call(result)
        run.record_decision(tweet, bool(result.extras.get("decision")))
    return run


def accuracy_against_negatives(run: StageRun, corpus: TweetCorpus) -> float:
    """Fraction of items whose filter verdict matches ground truth."""
    correct = sum(
        1
        for tweet in corpus
        if run.decisions.get(tweet.uid) == tweet.is_negative
    )
    return correct / len(corpus) if len(corpus) else 0.0
