"""Experiment harnesses regenerating the paper's tables and figures."""

from repro.experiments.fusion_models import Figure1Result, run_figure1
from repro.experiments.fusion_selectivity import Table4Result, run_table4
from repro.experiments.refinement_strategies import Table3Result, run_table3
from repro.experiments.variance import VarianceResult, run_variance

__all__ = [
    "Figure1Result",
    "run_figure1",
    "Table4Result",
    "run_table4",
    "Table3Result",
    "run_table3",
    "VarianceResult",
    "run_variance",
]
