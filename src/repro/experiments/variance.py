"""Seed-variance analysis for the Table 3 reproduction.

A single-seed table can overfit its corpus draw.  This harness re-runs
the refinement-strategy comparison across several corpus seeds and
reports mean ± sample standard deviation per cell, verifying that the
shape claims (auto best F1, refinement-mode speedups, cache-hit split)
hold on *every* seed, not just the headline one.

Run directly: ``python -m repro.experiments.variance``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.eval.tables import format_table
from repro.experiments.refinement_strategies import STRATEGIES, run_table3

__all__ = ["CellStats", "VarianceResult", "run_variance", "main"]

DEFAULT_SEEDS = (7, 11, 23, 42)


@dataclass(frozen=True)
class CellStats:
    """Mean and sample standard deviation of one metric across seeds."""

    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((value - mean) ** 2 for value in self.values)
            / (len(self.values) - 1)
        )

    def __str__(self) -> str:
        return f"{self.mean:.3f}±{self.std:.3f}"


@dataclass(frozen=True)
class VarianceResult:
    """Per-strategy statistics across seeds."""

    f1: dict[str, CellStats]
    speedup: dict[str, CellStats]
    cache_hit: dict[str, CellStats]
    seeds: tuple[int, ...]

    def shape_holds_on_every_seed(self) -> bool:
        """The headline Table 3 claims, checked seed by seed."""
        n_seeds = len(self.seeds)
        for index in range(n_seeds):
            auto_f1 = self.f1["auto"].values[index]
            static_f1 = self.f1["static"].values[index]
            if auto_f1 <= static_f1:
                return False
            for strategy in ("manual", "assisted", "auto"):
                if self.speedup[strategy].values[index] <= 1.1:
                    return False
                if self.cache_hit[strategy].values[index] <= 0.7:
                    return False
            for strategy in ("static", "agentic"):
                if self.cache_hit[strategy].values[index] >= 0.1:
                    return False
        return True


def run_variance(
    *,
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    n: int = 300,
    profile: str = "qwen2.5-7b-instruct",
) -> VarianceResult:
    """Run Table 3 once per seed and aggregate."""
    f1: dict[str, list[float]] = {strategy: [] for strategy in STRATEGIES}
    speedup: dict[str, list[float]] = {strategy: [] for strategy in STRATEGIES}
    cache_hit: dict[str, list[float]] = {strategy: [] for strategy in STRATEGIES}
    for seed in seeds:
        table = run_table3(n=n, seed=seed, profile=profile)
        for strategy in STRATEGIES:
            f1[strategy].append(table.results[strategy].f1)
            speedup[strategy].append(table.speedup(strategy))
            cache_hit[strategy].append(table.results[strategy].filter_cache_hit)
    return VarianceResult(
        f1={name: CellStats(tuple(values)) for name, values in f1.items()},
        speedup={name: CellStats(tuple(values)) for name, values in speedup.items()},
        cache_hit={name: CellStats(tuple(values)) for name, values in cache_hit.items()},
        seeds=tuple(seeds),
    )


def main() -> None:
    """Print the across-seed Table 3 with mean ± sd cells."""
    result = run_variance()
    rows = [
        [
            strategy,
            str(result.speedup[strategy]),
            str(result.f1[strategy]),
            str(result.cache_hit[strategy]),
        ]
        for strategy in STRATEGIES
    ]
    print(
        format_table(
            ["Strategy", "Speedup", "F1", "Cache hit"],
            rows,
            title=f"Table 3 across seeds {result.seeds} (mean±sd)",
        )
    )
    print(
        "\nshape holds on every seed:",
        result.shape_holds_on_every_seed(),
    )


if __name__ == "__main__":
    main()
