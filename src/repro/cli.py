"""Command-line interface.

Subcommands::

    python -m repro experiments {table3|table4|figure1|all} [--n N] [--seed S]
    python -m repro run PIPELINE_FILE --pipeline NAME [--patient ID] [--show-trace]
    python -m repro fmt PIPELINE_FILE
    python -m repro check [FILES...] [--dl SOURCE] [--format {text,json}]
    python -m repro stats RUN_JSONL [--format {table,json,prometheus}] [--top N]
    python -m repro trace RUN_JSONL [--timeline]
    python -m repro runs LEDGER_DIR [--run ID] [--format {table,json}]
    python -m repro diff RUN_A RUN_B [--gate] [--max-regress PCT]
    python -m repro top LEDGER_DIR_OR_RUN [--interval S] [--once]
    python -m repro serve [--tenants N] [--workers W] [--overload X] [...]

``run`` executes a SPEAR-DL file against a fully wired state: the
simulated model grounded on the seeded synthetic corpora, the clinical
retrieval sources, and the validation agent.  ``stats`` and ``trace``
analyse an exported JSONL event trace offline (see
:func:`repro.runtime.tracing.export_events` and docs/observability.md).
``runs`` / ``diff`` / ``top`` operate on the persistent run ledger
(:mod:`repro.obs.ledger`): list and inspect finished runs, compare two
runs with CI gate semantics (``--gate`` exits 2 on regression), and
live-tail an in-progress run's leaderboard.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.agents import ValidationAgent
from repro.core import ExecutionState
from repro.data import make_clinical_corpus, make_tweet_corpus
from repro.dl import compile_source, parse
from repro.dl.formatter import format_program
from repro.errors import SpearError
from repro.llm import SimulatedLLM
from repro.retrieval import clinical_sources
from repro.runtime.tracing import render_timeline

__all__ = [
    "main",
    "build_parser",
    "render_stats_text",
    "render_attribution_text",
]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPEAR reproduction: experiments, SPEAR-DL runner, formatter.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "which", choices=("table3", "table4", "figure1", "variance", "all")
    )
    experiments.add_argument("--n", type=int, default=1000, help="corpus size")
    experiments.add_argument("--seed", type=int, default=7)
    experiments.add_argument(
        "--profile", default="qwen2.5-7b-instruct", help="model profile name"
    )

    run = commands.add_parser("run", help="execute a pipeline from a SPEAR-DL file")
    run.add_argument("file", type=Path, help="SPEAR-DL source file")
    run.add_argument("--pipeline", required=True, help="pipeline name to run")
    run.add_argument(
        "--patient", default="p0001", help="patient id exposed as C['patient_id']"
    )
    run.add_argument("--seed", type=int, default=11)
    run.add_argument(
        "--show-trace", action="store_true", help="print the execution timeline"
    )

    fmt = commands.add_parser("fmt", help="reformat a SPEAR-DL file to canonical form")
    fmt.add_argument("file", type=Path)
    fmt.add_argument(
        "--write", action="store_true", help="rewrite the file in place"
    )

    check = commands.add_parser(
        "check", help="statically check SPEAR-DL files or Python pipeline modules"
    )
    check.add_argument(
        "files",
        type=Path,
        nargs="*",
        help="SPEAR-DL sources, or .py modules exposing *_SOURCE strings "
        "or module-level Pipeline objects",
    )
    check.add_argument(
        "--dl",
        action="append",
        default=[],
        metavar="SOURCE",
        help="inline SPEAR-DL program text (repeatable)",
    )
    check.add_argument(
        "--format",
        dest="format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: human-readable text; sarif emits "
        "a SARIF 2.1.0 log for CI annotation)",
    )
    check.add_argument(
        "--costs",
        action="store_true",
        help="print the static cost-bound table (tokens / seconds / USD "
        "lower and upper bounds per pipeline)",
    )
    check.add_argument(
        "--fail-on",
        dest="fail_on",
        choices=("error", "warning"),
        default="error",
        help="exit non-zero at this severity or worse (default: error)",
    )

    stats = commands.add_parser(
        "stats", help="aggregate metrics from an exported JSONL event trace"
    )
    stats.add_argument("file", type=Path, help="JSONL trace (export_events output)")
    stats.add_argument(
        "--format",
        dest="format",
        choices=("table", "json", "prometheus"),
        default="table",
        help="output format (default: human-readable tables)",
    )
    stats.add_argument(
        "--top", type=int, default=5, help="how many slowest spans to report"
    )

    trace = commands.add_parser(
        "trace", help="render the span tree of an exported JSONL event trace"
    )
    trace.add_argument("file", type=Path, help="JSONL trace (export_events output)")
    trace.add_argument(
        "--timeline",
        action="store_true",
        help="print the flat event timeline instead of the span tree",
    )

    runs = commands.add_parser(
        "runs", help="list or inspect persisted ledger runs"
    )
    runs.add_argument("dir", type=Path, help="ledger root (runs/ directory)")
    runs.add_argument(
        "--run", dest="run_id", default=None, help="inspect one run in detail"
    )
    runs.add_argument(
        "--format",
        dest="format",
        choices=("table", "json"),
        default="table",
        help="output format (default: human-readable)",
    )

    diff = commands.add_parser(
        "diff", help="compare two ledger runs (reports + attribution)"
    )
    diff.add_argument("run_a", type=Path, help="baseline run directory")
    diff.add_argument("run_b", type=Path, help="candidate run directory")
    diff.add_argument(
        "--gate",
        action="store_true",
        help="CI mode: exit 2 when a gated metric regresses beyond "
        "--max-regress percent",
    )
    diff.add_argument(
        "--max-regress",
        type=float,
        default=0.0,
        metavar="PCT",
        help="allowed regression on gated metrics, in percent (default: 0)",
    )
    diff.add_argument(
        "--format",
        dest="format",
        choices=("table", "json"),
        default="table",
        help="output format (default: human-readable)",
    )

    top = commands.add_parser(
        "top", help="live-tail an in-progress ledger run's leaderboard"
    )
    top.add_argument(
        "dir",
        type=Path,
        help="ledger root (tails the latest run) or one run directory",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="host seconds between repaints (default: 0.5)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot and exit (no tail loop)",
    )

    serve = commands.add_parser(
        "serve",
        help="drive the multi-tenant serving pool with synthetic traffic",
    )
    serve.add_argument(
        "--tenants", type=int, default=16, help="tenant count (default: 16)"
    )
    serve.add_argument(
        "--workers", type=int, default=8, help="pool worker threads (default: 8)"
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=8,
        help="per-tenant admission queue bound (default: 8)",
    )
    serve.add_argument(
        "--overload",
        type=int,
        default=1,
        help="burst multiplier over the queue limit; excess sheds (default: 1)",
    )
    serve.add_argument(
        "--corpus", type=int, default=32, help="demo corpus size (default: 32)"
    )
    serve.add_argument("--seed", type=int, default=7, help="corpus seed")
    serve.add_argument(
        "--pipeline",
        choices=("summarize", "summarize_filter"),
        default="summarize_filter",
        help="registered demo pipeline to drive (default: summarize_filter)",
    )
    serve.add_argument(
        "--no-scheduler",
        action="store_true",
        help="disable the per-run GEN scheduler (serving policy then only "
        "orders admission; see SPEAR147)",
    )
    serve.add_argument(
        "--ledger-dir",
        type=Path,
        default=None,
        help="write per-tenant ledger runs under this root",
    )
    serve.add_argument(
        "--format",
        dest="format",
        choices=("table", "json"),
        default="table",
        help="output format (default: human-readable)",
    )
    return parser


def _cmd_experiments(args: argparse.Namespace) -> int:
    # Imported lazily: the experiment modules build corpora at import.
    from repro.experiments import fusion_models, fusion_selectivity
    from repro.experiments import refinement_strategies

    if args.which in ("table3", "all"):
        table = refinement_strategies.run_table3(
            n=args.n, seed=args.seed, profile=args.profile
        )
        from repro.eval.tables import format_table

        headers = ["Strategy", "Time (s)", "Speedup (x)", "F1", "F1 Gain (%)", "Cache Hit (%)"]
        print(format_table(headers, table.rows(), title="Table 3 (reproduced)"))
        print()
    if args.which in ("table4", "all"):
        fusion_selectivity.main()
        print()
    if args.which in ("figure1", "all"):
        fusion_models.main()
        print()
    if args.which == "variance":
        from repro.experiments import variance

        variance.main()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    source = args.file.read_text(encoding="utf-8")
    compiled = compile_source(source)

    clinical = make_clinical_corpus(30, seed=args.seed)
    tweets = make_tweet_corpus(200, seed=args.seed)
    llm = SimulatedLLM()
    llm.bind_clinical(clinical)
    llm.bind_tweets(tweets)

    state = ExecutionState(model=llm, views=compiled.views, clock=llm.clock)
    state.context.put("patient_id", args.patient, producer="cli")
    for name, source_fn in clinical_sources(clinical).items():
        state.register_source(name, source_fn)
    state.register_agent("validation_agent", ValidationAgent())

    state = compiled.pipeline(args.pipeline).apply(state)

    print(f"pipeline {args.pipeline!r} finished in "
          f"{state.clock.now:.2f}s simulated, "
          f"{int(state.metadata.get('gen_calls', 0))} generation calls\n")
    print("context outputs:")
    for key in state.context.keys():
        if key.endswith("__result"):
            continue
        value = str(state.context[key]).replace("\n", " ")
        if len(value) > 100:
            value = value[:97] + "..."
        print(f"  {key}: {value}")
    if args.show_trace:
        print("\nexecution timeline:")
        print(render_timeline(state.events))
    return 0


def _collect_py_targets(
    path: Path,
) -> list[tuple[str, object, dict[str, object]]]:
    """Checkable artefacts of a Python module: DL sources + pipelines.

    Imports the module in isolation and collects module-level string
    attributes named ``SOURCE``/``DL_SOURCE`` (or ending ``_SOURCE``) as
    SPEAR-DL programs, plus module-level :class:`Pipeline` objects.

    A module may describe the environment its pipelines run under with
    module-level ``SPEAR_RUNTIME`` (a runtime mapping: ``deadline_s``,
    ``lanes``, ``serve``, …), ``SPEAR_PROMPTS`` (initial prompt texts),
    and ``SPEAR_CONTEXT`` (initially-bound slots) — these feed the
    runtime-gated analyzers (SPEAR145, SPEAR15x, SPEAR16x) exactly as
    strict mode would.
    """
    import importlib.util

    from repro.core.pipeline import Pipeline

    spec = importlib.util.spec_from_file_location(
        f"_spear_check_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        raise SpearError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    env: dict[str, object] = {}
    runtime = getattr(module, "SPEAR_RUNTIME", None)
    if isinstance(runtime, dict):
        env["runtime"] = runtime
    prompts = getattr(module, "SPEAR_PROMPTS", None)
    if isinstance(prompts, dict):
        env["prompts"] = prompts
    context = getattr(module, "SPEAR_CONTEXT", None)
    if isinstance(context, (list, tuple, set, frozenset)):
        env["context"] = tuple(sorted(context))

    targets: list[tuple[str, object, dict[str, object]]] = []
    for attr in sorted(vars(module)):
        if attr.startswith("_"):
            continue
        value = getattr(module, attr)
        if isinstance(value, str) and (
            attr in ("SOURCE", "DL_SOURCE") or attr.endswith("_SOURCE")
        ):
            targets.append((f"{path}::{attr}", value, env))
        elif isinstance(value, Pipeline):
            targets.append((f"{path}::{attr}", value, env))
    return targets


def _compiled_graphs(artefact, env: dict[str, object], name: str):
    """(name, graph, AnalysisEnv) per pipeline in a check target."""
    from repro.analysis import AnalysisEnv, build_dataflow
    from repro.core.pipeline import Pipeline

    analysis_env = AnalysisEnv(
        prompts=env.get("prompts") or {},
        context=tuple(env.get("context") or ()),
        runtime=env.get("runtime"),
    )
    if isinstance(artefact, Pipeline):
        graph = build_dataflow(artefact, analysis_env, name=name)
        return [(name, graph, analysis_env)]
    from repro.dl.compiler import compile_program
    from repro.dl.parser import parse

    try:
        compiled = compile_program(parse(artefact))
    except SpearError:
        return []
    graphs = []
    for pipeline_name, pipeline in sorted(compiled.pipelines.items()):
        pipeline_env = AnalysisEnv(
            views=compiled.views, runtime=env.get("runtime")
        )
        graphs.append(
            (
                pipeline_name,
                build_dataflow(pipeline, pipeline_env, name=pipeline_name),
                pipeline_env,
            )
        )
    return graphs


def _cost_table(targets) -> str:
    """The `spear check --costs` table: static bounds per pipeline."""
    from repro.analysis.costs import estimate_costs
    from repro.eval.tables import format_table

    rows = []
    for target, artefact, env in targets:
        for name, graph, analysis_env in _compiled_graphs(
            artefact, env, target
        ):
            summary = estimate_costs(graph, analysis_env)
            rows.append(
                [
                    name,
                    len(summary.operators),
                    summary.lower.tokens,
                    summary.upper.tokens,
                    round(summary.lower.seconds, 3),
                    round(summary.upper.seconds, 3),
                    round(summary.lower.usd, 6),
                    round(summary.upper.usd, 6),
                    "yes" if summary.exact else "no",
                ]
            )
    return format_table(
        [
            "Pipeline",
            "GENs",
            "Tok lo",
            "Tok hi",
            "Sec lo",
            "Sec hi",
            "USD lo",
            "USD hi",
            "Exact",
        ],
        rows,
    )


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import check_pipeline, check_program, to_sarif
    from repro.core.pipeline import Pipeline

    targets: list[tuple[str, object, dict[str, object]]] = []
    for path in args.files:
        if path.suffix == ".py":
            targets.extend(_collect_py_targets(path))
        else:
            targets.append(
                (str(path), path.read_text(encoding="utf-8"), {})
            )
    for position, source in enumerate(args.dl):
        targets.append((f"<dl:{position}>", source, {}))
    if not targets:
        print("error: nothing to check (no files, no --dl)", file=sys.stderr)
        return 2

    runs = []
    errors = warnings = infos = 0
    for target, artefact, env in targets:
        if isinstance(artefact, Pipeline):
            result = check_pipeline(
                artefact,
                name=artefact.name or target,
                prompts=env.get("prompts"),  # type: ignore[arg-type]
                context=tuple(env.get("context") or ()),
                runtime=env.get("runtime"),  # type: ignore[arg-type]
            )
        else:
            filename = target if not target.startswith("<") else None
            result = check_program(artefact, filename=filename)
        runs.append((target, result))
        errors += len(result.errors)
        warnings += len(result.warnings)
        infos += len(result.infos)

    if args.format == "json":
        payload = {
            "runs": [
                {"target": target, **result.to_dict()}
                for target, result in runs
            ],
            "errors": errors,
            "warnings": warnings,
            "infos": infos,
        }
        print(json.dumps(payload, indent=2))
    elif args.format == "sarif":
        merged = [
            diagnostic for __, result in runs for diagnostic in result
        ]
        print(json.dumps(to_sarif(merged), indent=2))
    else:
        for target, result in runs:
            status = "ok" if not len(result) else result.summary()
            print(f"== {target}: {status}")
            for diagnostic in result:
                print(f"  {diagnostic.render()}")
        print(
            f"checked {len(runs)} target(s): {errors} error(s), "
            f"{warnings} warning(s), {infos} info(s)"
        )
    if args.costs and args.format != "sarif":
        print()
        print(_cost_table(targets))
    if errors:
        return 1
    if getattr(args, "fail_on", "error") == "warning" and warnings:
        return 1
    return 0


def render_stats_text(report) -> str:
    """Render a :class:`~repro.obs.report.RunReport` as the ``spear stats``
    tables.

    A pure function of the report object: a ``report.json`` reloaded via
    :meth:`RunReport.from_dict` renders byte-identically to the live
    original — the foundation ``spear diff`` builds on.
    """
    from repro.eval.tables import format_table

    lines: list[str] = []
    operator_rows = [
        [
            op,
            stats["invocations"],
            stats["errors"],
            round(stats["wall_seconds"]["total"], 2),
            round(stats["wall_seconds"]["p50"], 2),
            round(stats["wall_seconds"]["p95"], 2),
            round(stats["wall_seconds"]["p99"], 2),
        ]
        for op, stats in report.operators.items()
    ]
    lines.append(
        format_table(
            ["Operator", "Calls", "Errors", "Wall (s)", "p50", "p95", "p99"],
            operator_rows,
            title="Per-operator rollup",
        )
    )
    lines.append("")
    generation_rows = [
        [
            prompt,
            stats["calls"],
            round(stats["latency_seconds"]["total"], 2),
            round(stats["latency_seconds"]["p95"], 2),
            stats["prompt_tokens"],
            stats["cached_tokens"],
            stats["output_tokens"],
            f"{stats['cache_hit_ratio'] * 100:.1f}",
            f"{stats['cost_usd']:.6f}",
        ]
        for prompt, stats in report.generation.items()
    ]
    lines.append(
        format_table(
            [
                "Prompt", "Calls", "Latency (s)", "p95",
                "Prompt tok", "Cached tok", "Output tok",
                "Cache hit (%)", "Cost ($)",
            ],
            generation_rows,
            title="Per-prompt generation rollup",
        )
    )
    if report.batches:
        lines.append("")
        batch_rows = [
            [
                mode,
                stats["runs"],
                stats["items"],
                stats["failures"],
                stats["workers"],
                round(stats["elapsed_seconds"]["total"], 2),
                f"{stats['throughput']:.3f}",
            ]
            for mode, stats in report.batches.items()
        ]
        lines.append(
            format_table(
                [
                    "Mode", "Runs", "Items", "Failures", "Workers",
                    "Elapsed (s)", "Items/s",
                ],
                batch_rows,
                title="Batch runs",
            )
        )
    if report.scheduler:
        lines.append("")
        sched = report.scheduler
        sched_rows = [
            [
                priority,
                int(stats["count"]),
                round(stats["mean"], 3),
                round(stats["p50"], 3),
                round(stats["p95"], 3),
            ]
            for priority, stats in sched.get("wait_seconds", {}).items()
        ]
        lines.append(
            format_table(
                ["Class", "Calls", "Wait mean (s)", "p50", "p95"],
                sched_rows,
                title="Scheduler",
            )
        )
        lines.append(
            f"steps: {sched.get('steps', 0)}  "
            f"mean step size: {sched.get('step_size', {}).get('mean', 0.0):.2f}  "
            f"preemptions: {sched.get('preemptions', 0)}  "
            f"forced: {sched.get('forced', 0)}  "
            f"queue depth: {sched.get('queue_depth', 0.0):.0f}"
        )
    if report.prefix_cache:
        lines.append("")
        prefix = report.prefix_cache
        radix = prefix.get("radix", {})
        prefix_rows = [
            [
                model,
                int(stats.get("nodes", 0)),
                int(stats.get("leaves", 0)),
                int(stats.get("pinned_blocks", 0)),
            ]
            for model, stats in sorted(radix.items())
        ]
        if prefix_rows:
            lines.append(
                format_table(
                    ["Model", "Radix nodes", "Leaves", "Pinned"],
                    prefix_rows,
                    title="Prefix cache",
                )
            )
        else:
            # Replayed traces have no live model to pull gauges from;
            # the dedup counters below still derive from SCHED events.
            lines.append("Prefix cache")
        step_dedup = prefix.get("step_dedup_tokens", {})
        groups = prefix.get("groups_per_step", {})
        lines.append(
            f"dedup tokens: {prefix.get('dedup_tokens_total', 0)}  "
            f"mean/step: {step_dedup.get('mean', 0.0):.1f}  "
            f"p95/step: {step_dedup.get('p95', 0.0):.0f}  "
            f"trunk groups/step: {groups.get('mean', 0.0):.2f}"
        )
    result_cache = report.result_cache.get("by_operator", {})
    if result_cache:
        lines.append("")
        rc_rows = [
            [op, stats["hits"], round(stats["saved_seconds"], 2)]
            for op, stats in result_cache.items()
        ]
        lines.append(
            format_table(
                ["Operator", "Hits", "Saved (s)"],
                rc_rows,
                title="Result cache",
            )
        )
    if report.resilience:
        lines.append("")
        res = report.resilience
        models = sorted(
            set(res.get("failures_by_model", {}))
            | set(res.get("retries_by_model", {}))
            | set(res.get("breakers", {}))
        )
        res_rows = [
            [
                model,
                res.get("failures_by_model", {}).get(model, 0),
                res.get("retries_by_model", {}).get(model, 0),
                round(
                    res.get("backoff_seconds", {})
                    .get(model, {})
                    .get("total", 0.0),
                    2,
                ),
                res.get("breakers", {}).get(model, {}).get("state", "closed"),
                res.get("breakers", {}).get(model, {}).get("transitions", 0),
            ]
            for model in models
        ]
        lines.append(
            format_table(
                [
                    "Model", "Failures", "Retries", "Backoff (s)",
                    "Breaker", "Transitions",
                ],
                res_rows,
                title="Resilience",
            )
        )
        summary = (
            f"faults injected: {res.get('faults_injected_total', 0)}"
        )
        by_kind = res.get("faults_injected", {})
        if by_kind:
            summary += (
                " ("
                + ", ".join(f"{kind}={n}" for kind, n in by_kind.items())
                + ")"
            )
        degraded_total = res.get("degraded_runs_total", 0)
        if degraded_total:
            targets = ", ".join(
                f"{target}={n}"
                for target, n in res.get("degraded_runs", {}).items()
            )
            summary += f"; degraded runs: {degraded_total} ({targets})"
        lines.append(summary)
    lines.append("")
    totals = report.totals
    lines.append(
        f"totals: {totals['events']} events, {totals['gen_calls']} gen calls, "
        f"{totals['prompt_tokens']} prompt / {totals['cached_tokens']} cached / "
        f"{totals['output_tokens']} output tokens, "
        f"cache hit ratio {totals['cache_hit_ratio'] * 100:.1f}%, "
        f"est. cost ${totals['cost_usd']:.6f}"
    )
    if totals.get("result_cache_hits"):
        lines.append(
            f"result cache: {totals['result_cache_hits']} hits, "
            f"{totals['result_cache_saved_seconds']:.2f}s simulated time saved"
        )
    if report.slowest_spans:
        lines.append("\nslowest spans:")
        for span in report.slowest_spans:
            lines.append(
                f"  {span['wall']:8.2f}s  {span['operator']}"
                f"  (start {span['start']:.2f}s, gen={span['gen_calls']})"
            )
    return "\n".join(lines)


def render_attribution_text(attribution) -> str:
    """Render the refinement-utility section of an attribution report.

    Empty string when no refinement edge has generations on both sides —
    traces without REFINE activity keep their exact historical output.
    """
    if not attribution.refinements:
        return ""
    lines = ["\nRefinement utility (per prompt version):"]
    for row in attribution.refinements:
        before, after, delta = row["before"], row["after"], row["delta"]
        sign = "+" if delta["mean_confidence"] >= 0 else ""
        lines.append(
            f"  {row['key']} v{row['from_version']} -> v{row['to_version']}"
            f" ({row['action']}): confidence {before['mean_confidence']:.3f}"
            f" -> {after['mean_confidence']:.3f}"
            f" ({sign}{delta['mean_confidence']:.3f}),"
            f" latency {before['mean_latency']:.2f}s"
            f" -> {after['mean_latency']:.2f}s,"
            f" cost ${before['cost_usd']:.6f} -> ${after['cost_usd']:.6f}"
            f" ({before['calls']} vs {after['calls']} calls)"
        )
    return "\n".join(lines)


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs import ObsCollector, build_attribution, build_report, to_prometheus
    from repro.runtime.tracing import import_events

    log = import_events(args.file)
    collector = ObsCollector()
    collector.replay(log)

    if args.format == "prometheus":
        print(to_prometheus(collector.registry), end="")
        return 0

    report = build_report(collector, top_k=args.top)
    if args.format == "json":
        print(report.to_json())
        return 0

    print(render_stats_text(report))
    attribution_text = render_attribution_text(build_attribution(log))
    if attribution_text:
        print(attribution_text)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import build_span_tree, render_span_tree
    from repro.runtime.tracing import import_events, render_timeline

    log = import_events(args.file)
    if args.timeline:
        print(render_timeline(log, include_lifecycle=True))
    else:
        print(render_span_tree(build_span_tree(log)))
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    import json

    from repro.eval.tables import format_table
    from repro.obs import Ledger

    ledger = Ledger(args.dir)
    if args.run_id is not None:
        run = ledger.load(args.run_id)
        if args.format == "json":
            payload = {"manifest": run.manifest}
            if (run.path / "report.json").exists():
                payload["report"] = run.report().to_dict()
            if (run.path / "attribution.json").exists():
                payload["attribution"] = run.attribution().to_dict()
            print(json.dumps(payload, indent=2))
            return 0
        print(f"run {run.run_id} [{run.status}] — {run.path}")
        pipeline = run.manifest.get("pipeline") or {}
        print(
            f"  runner: {run.manifest.get('runner', '?')}, "
            f"pipeline: {pipeline.get('name') or '?'}, "
            f"events: {run.manifest.get('event_count', '?')}"
        )
        if (run.path / "report.json").exists():
            print()
            print(render_stats_text(run.report()))
        if (run.path / "attribution.json").exists():
            attribution_text = render_attribution_text(run.attribution())
            if attribution_text:
                print(attribution_text)
        return 0

    run_ids = ledger.list()
    if not run_ids:
        print(f"no runs under {args.dir}")
        return 0
    rows = []
    records = []
    for run_id in run_ids:
        run = ledger.load(run_id)
        totals: dict = {}
        if (run.path / "report.json").exists():
            totals = run.report().totals
        pipeline = run.manifest.get("pipeline") or {}
        rows.append(
            [
                run.run_id,
                run.status,
                run.manifest.get("runner", "?"),
                pipeline.get("name") or "-",
                totals.get("gen_calls", "-"),
                totals.get("prompt_tokens", "-"),
                (
                    f"{totals['cost_usd']:.6f}"
                    if "cost_usd" in totals
                    else "-"
                ),
            ]
        )
        records.append(
            {
                "run_id": run.run_id,
                "status": run.status,
                "runner": run.manifest.get("runner"),
                "pipeline": pipeline.get("name"),
                "totals": totals,
            }
        )
    if args.format == "json":
        print(json.dumps({"runs": records}, indent=2))
    else:
        print(
            format_table(
                [
                    "Run", "Status", "Runner", "Pipeline",
                    "Gen calls", "Prompt tok", "Cost ($)",
                ],
                rows,
                title=f"Ledger runs ({args.dir})",
            )
        )
    return 0


#: report paths gated by ``spear diff --gate``: higher is a regression.
_GATE_METRICS = (
    ("totals", "cost_usd"),
    ("totals", "gen_calls"),
    ("totals", "prompt_tokens"),
    ("totals", "output_tokens"),
    ("totals", "errors"),
)


def _numeric_leaves(tree, prefix=""):
    """Flatten nested dicts to {dotted.path: number} (bools excluded)."""
    leaves: dict[str, float] = {}
    if isinstance(tree, dict):
        for key, value in tree.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(_numeric_leaves(value, path))
    elif isinstance(tree, (int, float)) and not isinstance(tree, bool):
        leaves[prefix] = float(tree)
    return leaves


def _load_run(path: Path):
    from repro.obs.ledger import LedgerRun

    return LedgerRun(path)


def _cmd_diff(args: argparse.Namespace) -> int:
    import json

    from repro.eval.tables import format_table

    run_a, run_b = _load_run(args.run_a), _load_run(args.run_b)
    report_a, report_b = run_a.report().to_dict(), run_b.report().to_dict()
    attr_a, attr_b = run_a.attribution().to_dict(), run_b.attribution().to_dict()
    # Slowest spans are a top-k sample, not a comparable aggregate.
    report_a.pop("slowest_spans", None)
    report_b.pop("slowest_spans", None)

    leaves_a = _numeric_leaves({"report": report_a, "attribution": attr_a})
    leaves_b = _numeric_leaves({"report": report_b, "attribution": attr_b})
    changed = []
    for path in sorted(set(leaves_a) | set(leaves_b)):
        a, b = leaves_a.get(path, 0.0), leaves_b.get(path, 0.0)
        if a == b:
            continue
        pct = ((b - a) / abs(a) * 100.0) if a else None
        changed.append((path, a, b, b - a, pct))

    gate_failures = []
    if args.gate:
        totals_a = report_a.get("totals", {})
        totals_b = report_b.get("totals", {})
        for section, key in _GATE_METRICS:
            a = float(report_a.get(section, {}).get(key, 0.0) or 0.0)
            b = float(report_b.get(section, {}).get(key, 0.0) or 0.0)
            if b <= a:
                continue
            pct = ((b - a) / a * 100.0) if a else float("inf")
            if pct > args.max_regress:
                gate_failures.append((f"{section}.{key}", a, b, pct))
        del totals_a, totals_b

    if args.format == "json":
        print(
            json.dumps(
                {
                    "run_a": str(args.run_a),
                    "run_b": str(args.run_b),
                    "changed": [
                        {
                            "metric": path,
                            "a": a,
                            "b": b,
                            "delta": delta,
                            "pct": pct,
                        }
                        for path, a, b, delta, pct in changed
                    ],
                    "gate": {
                        "enabled": args.gate,
                        "max_regress_pct": args.max_regress,
                        "failures": [
                            {"metric": metric, "a": a, "b": b, "pct": pct}
                            for metric, a, b, pct in gate_failures
                        ],
                    },
                },
                indent=2,
            )
        )
    else:
        print(f"diff {args.run_a} -> {args.run_b}")
        if not changed:
            print("no differences (zero delta)")
        else:
            rows = [
                [
                    path,
                    f"{a:g}",
                    f"{b:g}",
                    f"{delta:+g}",
                    f"{pct:+.2f}%" if pct is not None else "new",
                ]
                for path, a, b, delta, pct in changed
            ]
            print(
                format_table(
                    ["Metric", "A", "B", "Delta", "Pct"],
                    rows,
                    title=f"Changed metrics ({len(changed)})",
                )
            )
        if args.gate:
            if gate_failures:
                print(
                    f"\nGATE FAILED (max regress {args.max_regress:g}%):",
                    file=sys.stderr,
                )
                for metric, a, b, pct in gate_failures:
                    print(
                        f"  {metric}: {a:g} -> {b:g} (+{pct:.2f}%)",
                        file=sys.stderr,
                    )
            else:
                print(f"\ngate passed (max regress {args.max_regress:g}%)")
    return 2 if gate_failures else 0


def _render_top(run, offset: int, aggregates: dict) -> int:
    """Tail new complete lines from events.jsonl into ``aggregates``.

    Returns the new byte offset.  Parsing is plain ``json.loads`` (no
    type-tag rebuilding): the leaderboard needs only scalar fields, and a
    tailed file may legitimately end mid-line — incomplete trailing
    lines are left for the next cycle.
    """
    import json

    events_path = run.path / "events.jsonl"
    if not events_path.exists():
        return offset
    with events_path.open("r", encoding="utf-8") as handle:
        handle.seek(offset)
        chunk = handle.read()
    complete, _, _partial = chunk.rpartition("\n")
    if complete:
        offset += len(complete.encode("utf-8")) + 1
        for line in complete.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            aggregates["events"] += 1
            aggregates["at"] = max(aggregates["at"], float(record.get("at", 0.0)))
            kind = record.get("kind", "?")
            aggregates["kinds"][kind] = aggregates["kinds"].get(kind, 0) + 1
            payload = record.get("payload") or {}
            if kind == "generate":
                key = payload.get("prompt_key", "?")
                version = payload.get("prompt_version")
                name = f"{key}@v{version}" if version is not None else str(key)
                row = aggregates["prompts"].setdefault(
                    name, {"calls": 0, "wall": 0.0, "tokens": 0}
                )
                row["calls"] += 1
                latency = payload.get("latency")
                if isinstance(latency, (int, float)):
                    row["wall"] += float(latency)
                for field in ("prompt_tokens", "output_tokens"):
                    tokens = payload.get(field)
                    if isinstance(tokens, (int, float)):
                        row["tokens"] += int(tokens)
    return offset


def _print_top_snapshot(run, aggregates: dict) -> None:
    from repro.eval.tables import format_table

    status = run.status
    print(
        f"=== spear top — run {run.run_id} [{status}] "
        f"t={aggregates['at']:.2f}s  events={aggregates['events']} ==="
    )
    kinds = ", ".join(
        f"{kind}={count}"
        for kind, count in sorted(aggregates["kinds"].items())
        if not kind.startswith("operator_")
    )
    if kinds:
        print(f"events by kind: {kinds}")
    prompts = sorted(
        aggregates["prompts"].items(),
        key=lambda pair: (-pair[1]["wall"], pair[0]),
    )[:10]
    if prompts:
        rows = [
            [name, row["calls"], f"{row['wall']:.2f}", row["tokens"]]
            for name, row in prompts
        ]
        print(
            format_table(
                ["Prompt", "Calls", "Wall (s)", "Tokens"],
                rows,
                title="Prompt leaderboard (by wall time)",
            )
        )


def _cmd_top(args: argparse.Namespace) -> int:
    import json as _json
    import time as _time

    from repro.obs import Ledger
    from repro.obs.ledger import LedgerRun

    target = args.dir
    if (target / "manifest.json").exists():
        run = LedgerRun(target)
    else:
        latest = Ledger(target).latest()
        if latest is None:
            raise SpearError(f"{target}: no ledger runs to tail")
        run = latest

    aggregates: dict = {"events": 0, "at": 0.0, "kinds": {}, "prompts": {}}
    offset = 0
    while True:
        offset = _render_top(run, offset, aggregates)
        # Re-read the manifest: the writer flips status at finalization.
        run.manifest = _json.loads(
            (run.path / "manifest.json").read_text(encoding="utf-8")
        )
        _print_top_snapshot(run, aggregates)
        if args.once or run.status in ("completed", "failed"):
            return 0
        _time.sleep(args.interval)
        print()


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported lazily: the serve package pulls in the full runtime.
    import json as _json

    from repro.serve import TrafficConfig, build_demo_server, run_traffic

    config = TrafficConfig(
        tenants=args.tenants,
        queue_limit=args.queue_limit,
        overload=args.overload,
        workers=args.workers,
        corpus_size=args.corpus,
        seed=args.seed,
        scheduler=not args.no_scheduler,
    )
    server = build_demo_server(
        config,
        ledger_dir=str(args.ledger_dir) if args.ledger_dir else None,
    )
    metrics = run_traffic(server, config, pipeline=args.pipeline)
    if args.format == "json":
        print(_json.dumps(metrics, indent=2, sort_keys=True))
        return 0
    print(
        f"served {metrics['served']}/{metrics['submitted']} requests "
        f"across {metrics['tenants']} tenants "
        f"({metrics['workers']} workers, queue limit {metrics['queue_limit']})"
    )
    print(
        f"  shed {metrics['shed']} ({metrics['shed_rate'] * 100:.1f}%)  "
        f"errors {metrics['errors']}"
    )
    print(
        f"  latency p50 {metrics['latency_p50_s']}s  "
        f"p99 {metrics['latency_p99_s']}s (simulated)"
    )
    print(
        f"  queue wait p50 {metrics['queue_wait_p50_s']}s  "
        f"p99 {metrics['queue_wait_p99_s']}s (wall)"
    )
    print(
        f"  throughput {metrics['throughput_rps']} req/s over "
        f"{metrics['wall_elapsed_s']}s wall"
    )
    rows = []
    for name, session in sorted(metrics["sessions"].items()):
        rows.append(
            (
                name,
                session["completed"],
                session["shed"],
                round(session["clock"], 2),
            )
        )
    width = max(len(row[0]) for row in rows) if rows else 6
    print(f"  {'tenant'.ljust(width)}  served  shed  sim_clock_s")
    for name, completed, shed, clock in rows:
        print(f"  {name.ljust(width)}  {completed:>6}  {shed:>4}  {clock:>11}")
    return 0


def _cmd_fmt(args: argparse.Namespace) -> int:
    source = args.file.read_text(encoding="utf-8")
    formatted = format_program(parse(source))
    if args.write:
        args.file.write_text(formatted, encoding="utf-8")
        print(f"reformatted {args.file}")
    else:
        print(formatted, end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "fmt": _cmd_fmt,
        "check": _cmd_check,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "runs": _cmd_runs,
        "diff": _cmd_diff,
        "top": _cmd_top,
        "serve": _cmd_serve,
    }
    if args.command in ("check", "stats", "trace", "runs", "diff", "top"):
        # Checked/traced files are untrusted input: a rejected or
        # malformed file is a clean CLI error, not a traceback.
        try:
            return handlers[args.command](args)
        except SpearError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
