"""Command-line interface.

Subcommands::

    python -m repro experiments {table3|table4|figure1|all} [--n N] [--seed S]
    python -m repro run PIPELINE_FILE --pipeline NAME [--patient ID] [--show-trace]
    python -m repro fmt PIPELINE_FILE
    python -m repro check [FILES...] [--dl SOURCE] [--format {text,json}]
    python -m repro stats RUN_JSONL [--format {table,json,prometheus}] [--top N]
    python -m repro trace RUN_JSONL [--timeline]

``run`` executes a SPEAR-DL file against a fully wired state: the
simulated model grounded on the seeded synthetic corpora, the clinical
retrieval sources, and the validation agent.  ``stats`` and ``trace``
analyse an exported JSONL event trace offline (see
:func:`repro.runtime.tracing.export_events` and docs/observability.md).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.agents import ValidationAgent
from repro.core import ExecutionState
from repro.data import make_clinical_corpus, make_tweet_corpus
from repro.dl import compile_source, parse
from repro.dl.formatter import format_program
from repro.errors import SpearError
from repro.llm import SimulatedLLM
from repro.retrieval import clinical_sources
from repro.runtime.tracing import render_timeline

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPEAR reproduction: experiments, SPEAR-DL runner, formatter.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    experiments = commands.add_parser(
        "experiments", help="regenerate the paper's tables and figures"
    )
    experiments.add_argument(
        "which", choices=("table3", "table4", "figure1", "variance", "all")
    )
    experiments.add_argument("--n", type=int, default=1000, help="corpus size")
    experiments.add_argument("--seed", type=int, default=7)
    experiments.add_argument(
        "--profile", default="qwen2.5-7b-instruct", help="model profile name"
    )

    run = commands.add_parser("run", help="execute a pipeline from a SPEAR-DL file")
    run.add_argument("file", type=Path, help="SPEAR-DL source file")
    run.add_argument("--pipeline", required=True, help="pipeline name to run")
    run.add_argument(
        "--patient", default="p0001", help="patient id exposed as C['patient_id']"
    )
    run.add_argument("--seed", type=int, default=11)
    run.add_argument(
        "--show-trace", action="store_true", help="print the execution timeline"
    )

    fmt = commands.add_parser("fmt", help="reformat a SPEAR-DL file to canonical form")
    fmt.add_argument("file", type=Path)
    fmt.add_argument(
        "--write", action="store_true", help="rewrite the file in place"
    )

    check = commands.add_parser(
        "check", help="statically check SPEAR-DL files or Python pipeline modules"
    )
    check.add_argument(
        "files",
        type=Path,
        nargs="*",
        help="SPEAR-DL sources, or .py modules exposing *_SOURCE strings "
        "or module-level Pipeline objects",
    )
    check.add_argument(
        "--dl",
        action="append",
        default=[],
        metavar="SOURCE",
        help="inline SPEAR-DL program text (repeatable)",
    )
    check.add_argument(
        "--format",
        dest="format",
        choices=("text", "json"),
        default="text",
        help="output format (default: human-readable text)",
    )

    stats = commands.add_parser(
        "stats", help="aggregate metrics from an exported JSONL event trace"
    )
    stats.add_argument("file", type=Path, help="JSONL trace (export_events output)")
    stats.add_argument(
        "--format",
        dest="format",
        choices=("table", "json", "prometheus"),
        default="table",
        help="output format (default: human-readable tables)",
    )
    stats.add_argument(
        "--top", type=int, default=5, help="how many slowest spans to report"
    )

    trace = commands.add_parser(
        "trace", help="render the span tree of an exported JSONL event trace"
    )
    trace.add_argument("file", type=Path, help="JSONL trace (export_events output)")
    trace.add_argument(
        "--timeline",
        action="store_true",
        help="print the flat event timeline instead of the span tree",
    )
    return parser


def _cmd_experiments(args: argparse.Namespace) -> int:
    # Imported lazily: the experiment modules build corpora at import.
    from repro.experiments import fusion_models, fusion_selectivity
    from repro.experiments import refinement_strategies

    if args.which in ("table3", "all"):
        table = refinement_strategies.run_table3(
            n=args.n, seed=args.seed, profile=args.profile
        )
        from repro.eval.tables import format_table

        headers = ["Strategy", "Time (s)", "Speedup (x)", "F1", "F1 Gain (%)", "Cache Hit (%)"]
        print(format_table(headers, table.rows(), title="Table 3 (reproduced)"))
        print()
    if args.which in ("table4", "all"):
        fusion_selectivity.main()
        print()
    if args.which in ("figure1", "all"):
        fusion_models.main()
        print()
    if args.which == "variance":
        from repro.experiments import variance

        variance.main()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    source = args.file.read_text(encoding="utf-8")
    compiled = compile_source(source)

    clinical = make_clinical_corpus(30, seed=args.seed)
    tweets = make_tweet_corpus(200, seed=args.seed)
    llm = SimulatedLLM()
    llm.bind_clinical(clinical)
    llm.bind_tweets(tweets)

    state = ExecutionState(model=llm, views=compiled.views, clock=llm.clock)
    state.context.put("patient_id", args.patient, producer="cli")
    for name, source_fn in clinical_sources(clinical).items():
        state.register_source(name, source_fn)
    state.register_agent("validation_agent", ValidationAgent())

    state = compiled.pipeline(args.pipeline).apply(state)

    print(f"pipeline {args.pipeline!r} finished in "
          f"{state.clock.now:.2f}s simulated, "
          f"{int(state.metadata.get('gen_calls', 0))} generation calls\n")
    print("context outputs:")
    for key in state.context.keys():
        if key.endswith("__result"):
            continue
        value = str(state.context[key]).replace("\n", " ")
        if len(value) > 100:
            value = value[:97] + "..."
        print(f"  {key}: {value}")
    if args.show_trace:
        print("\nexecution timeline:")
        print(render_timeline(state.events))
    return 0


def _collect_py_targets(path: Path) -> list[tuple[str, object]]:
    """Checkable artefacts of a Python module: DL sources + pipelines.

    Imports the module in isolation and collects module-level string
    attributes named ``SOURCE``/``DL_SOURCE`` (or ending ``_SOURCE``) as
    SPEAR-DL programs, plus module-level :class:`Pipeline` objects.
    """
    import importlib.util

    from repro.core.pipeline import Pipeline

    spec = importlib.util.spec_from_file_location(
        f"_spear_check_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        raise SpearError(f"cannot import {path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)

    targets: list[tuple[str, object]] = []
    for attr in sorted(vars(module)):
        if attr.startswith("_"):
            continue
        value = getattr(module, attr)
        if isinstance(value, str) and (
            attr in ("SOURCE", "DL_SOURCE") or attr.endswith("_SOURCE")
        ):
            targets.append((f"{path}::{attr}", value))
        elif isinstance(value, Pipeline):
            targets.append((f"{path}::{attr}", value))
    return targets


def _cmd_check(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import check_pipeline, check_program
    from repro.core.pipeline import Pipeline

    targets: list[tuple[str, object]] = []
    for path in args.files:
        if path.suffix == ".py":
            targets.extend(_collect_py_targets(path))
        else:
            targets.append((str(path), path.read_text(encoding="utf-8")))
    for position, source in enumerate(args.dl):
        targets.append((f"<dl:{position}>", source))
    if not targets:
        print("error: nothing to check (no files, no --dl)", file=sys.stderr)
        return 2

    runs = []
    errors = warnings = infos = 0
    for target, artefact in targets:
        if isinstance(artefact, Pipeline):
            result = check_pipeline(artefact, name=artefact.name or target)
        else:
            filename = target if not target.startswith("<") else None
            result = check_program(artefact, filename=filename)
        runs.append((target, result))
        errors += len(result.errors)
        warnings += len(result.warnings)
        infos += len(result.infos)

    if args.format == "json":
        payload = {
            "runs": [
                {"target": target, **result.to_dict()}
                for target, result in runs
            ],
            "errors": errors,
            "warnings": warnings,
            "infos": infos,
        }
        print(json.dumps(payload, indent=2))
    else:
        for target, result in runs:
            status = "ok" if not len(result) else result.summary()
            print(f"== {target}: {status}")
            for diagnostic in result:
                print(f"  {diagnostic.render()}")
        print(
            f"checked {len(runs)} target(s): {errors} error(s), "
            f"{warnings} warning(s), {infos} info(s)"
        )
    return 1 if errors else 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.eval.tables import format_table
    from repro.obs import ObsCollector, build_report, to_prometheus
    from repro.runtime.tracing import import_events

    collector = ObsCollector()
    collector.replay(import_events(args.file))

    if args.format == "prometheus":
        print(to_prometheus(collector.registry), end="")
        return 0

    report = build_report(collector, top_k=args.top)
    if args.format == "json":
        print(report.to_json())
        return 0

    operator_rows = [
        [
            op,
            stats["invocations"],
            stats["errors"],
            round(stats["wall_seconds"]["total"], 2),
            round(stats["wall_seconds"]["p50"], 2),
            round(stats["wall_seconds"]["p95"], 2),
            round(stats["wall_seconds"]["p99"], 2),
        ]
        for op, stats in report.operators.items()
    ]
    print(
        format_table(
            ["Operator", "Calls", "Errors", "Wall (s)", "p50", "p95", "p99"],
            operator_rows,
            title="Per-operator rollup",
        )
    )
    print()
    generation_rows = [
        [
            prompt,
            stats["calls"],
            round(stats["latency_seconds"]["total"], 2),
            round(stats["latency_seconds"]["p95"], 2),
            stats["prompt_tokens"],
            stats["cached_tokens"],
            stats["output_tokens"],
            f"{stats['cache_hit_ratio'] * 100:.1f}",
            f"{stats['cost_usd']:.6f}",
        ]
        for prompt, stats in report.generation.items()
    ]
    print(
        format_table(
            [
                "Prompt", "Calls", "Latency (s)", "p95",
                "Prompt tok", "Cached tok", "Output tok",
                "Cache hit (%)", "Cost ($)",
            ],
            generation_rows,
            title="Per-prompt generation rollup",
        )
    )
    if report.batches:
        print()
        batch_rows = [
            [
                mode,
                stats["runs"],
                stats["items"],
                stats["failures"],
                stats["workers"],
                round(stats["elapsed_seconds"]["total"], 2),
                f"{stats['throughput']:.3f}",
            ]
            for mode, stats in report.batches.items()
        ]
        print(
            format_table(
                [
                    "Mode", "Runs", "Items", "Failures", "Workers",
                    "Elapsed (s)", "Items/s",
                ],
                batch_rows,
                title="Batch runs",
            )
        )
    result_cache = report.result_cache.get("by_operator", {})
    if result_cache:
        print()
        rc_rows = [
            [op, stats["hits"], round(stats["saved_seconds"], 2)]
            for op, stats in result_cache.items()
        ]
        print(
            format_table(
                ["Operator", "Hits", "Saved (s)"],
                rc_rows,
                title="Result cache",
            )
        )
    if report.resilience:
        print()
        res = report.resilience
        models = sorted(
            set(res.get("failures_by_model", {}))
            | set(res.get("retries_by_model", {}))
            | set(res.get("breakers", {}))
        )
        res_rows = [
            [
                model,
                res.get("failures_by_model", {}).get(model, 0),
                res.get("retries_by_model", {}).get(model, 0),
                round(
                    res.get("backoff_seconds", {})
                    .get(model, {})
                    .get("total", 0.0),
                    2,
                ),
                res.get("breakers", {}).get(model, {}).get("state", "closed"),
                res.get("breakers", {}).get(model, {}).get("transitions", 0),
            ]
            for model in models
        ]
        print(
            format_table(
                [
                    "Model", "Failures", "Retries", "Backoff (s)",
                    "Breaker", "Transitions",
                ],
                res_rows,
                title="Resilience",
            )
        )
        summary = (
            f"faults injected: {res.get('faults_injected_total', 0)}"
        )
        by_kind = res.get("faults_injected", {})
        if by_kind:
            summary += (
                " ("
                + ", ".join(f"{kind}={n}" for kind, n in by_kind.items())
                + ")"
            )
        degraded_total = res.get("degraded_runs_total", 0)
        if degraded_total:
            targets = ", ".join(
                f"{target}={n}"
                for target, n in res.get("degraded_runs", {}).items()
            )
            summary += f"; degraded runs: {degraded_total} ({targets})"
        print(summary)
    print()
    totals = report.totals
    print(
        f"totals: {totals['events']} events, {totals['gen_calls']} gen calls, "
        f"{totals['prompt_tokens']} prompt / {totals['cached_tokens']} cached / "
        f"{totals['output_tokens']} output tokens, "
        f"cache hit ratio {totals['cache_hit_ratio'] * 100:.1f}%, "
        f"est. cost ${totals['cost_usd']:.6f}"
    )
    if totals.get("result_cache_hits"):
        print(
            f"result cache: {totals['result_cache_hits']} hits, "
            f"{totals['result_cache_saved_seconds']:.2f}s simulated time saved"
        )
    if report.slowest_spans:
        print("\nslowest spans:")
        for span in report.slowest_spans:
            print(
                f"  {span['wall']:8.2f}s  {span['operator']}"
                f"  (start {span['start']:.2f}s, gen={span['gen_calls']})"
            )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import build_span_tree, render_span_tree
    from repro.runtime.tracing import import_events, render_timeline

    log = import_events(args.file)
    if args.timeline:
        print(render_timeline(log, include_lifecycle=True))
    else:
        print(render_span_tree(build_span_tree(log)))
    return 0


def _cmd_fmt(args: argparse.Namespace) -> int:
    source = args.file.read_text(encoding="utf-8")
    formatted = format_program(parse(source))
    if args.write:
        args.file.write_text(formatted, encoding="utf-8")
        print(f"reformatted {args.file}")
    else:
        print(formatted, end="")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "experiments": _cmd_experiments,
        "run": _cmd_run,
        "fmt": _cmd_fmt,
        "check": _cmd_check,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
    }
    if args.command in ("check", "stats", "trace"):
        # Checked/traced files are untrusted input: a rejected or
        # malformed file is a clean CLI error, not a traceback.
        try:
            return handlers[args.command](args)
        except SpearError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
