"""View-guided refinement: cost-based base-view selection (paper §5).

"When multiple views are available, SPEAR can employ cost-based selection
to identify the best starting point, e.g., the view that minimizes
refinement effort or token cost."

For a task described by required terms (criteria the final prompt must
express), each candidate view is scored by:

- **refinement effort** — the tokens that must be appended to cover the
  terms the view is missing;
- **token cost** — the view's own rendered length (what every GEN pays
  to prefill, discounted by its prefix cacheability).

The lowest total wins.  :func:`refine_missing_terms` then produces the
appended refinement so the chosen view actually covers the task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.views import ViewRegistry
from repro.errors import PlanningError
from repro.llm.tokenizer import Tokenizer

__all__ = ["ViewScore", "select_view", "refine_missing_terms"]

_TOKENIZER = Tokenizer()

#: tokens a refinement clause costs per missing term (clause scaffold).
_TOKENS_PER_MISSING_TERM = 9
#: weight of base length vs refinement effort; cached prefixes make view
#: length cheap relative to fresh refinement text.
_BASE_LENGTH_WEIGHT = 0.1


@dataclass(frozen=True)
class ViewScore:
    """The cost breakdown for one candidate view."""

    name: str
    missing_terms: tuple[str, ...]
    refinement_tokens: int
    base_tokens: int

    @property
    def total_cost(self) -> float:
        """Weighted cost the planner minimizes."""
        return self.refinement_tokens + _BASE_LENGTH_WEIGHT * self.base_tokens


def _missing_terms(text: str, required_terms: list[str]) -> tuple[str, ...]:
    lowered = text.lower()
    return tuple(term for term in required_terms if term.lower() not in lowered)


def select_view(
    registry: ViewRegistry,
    candidates: list[str],
    required_terms: list[str],
    *,
    params: Mapping[str, Any] | None = None,
) -> tuple[str, list[ViewScore]]:
    """Pick the cheapest starting view for a task.

    Returns the winner plus every candidate's score (sorted best first)
    for introspection.  Raises :class:`PlanningError` on an empty
    candidate list.
    """
    if not candidates:
        raise PlanningError("select_view needs at least one candidate view")
    scores: list[ViewScore] = []
    for name in candidates:
        text = registry.expand(name, params)
        missing = _missing_terms(text, required_terms)
        scores.append(
            ViewScore(
                name=name,
                missing_terms=missing,
                refinement_tokens=_TOKENS_PER_MISSING_TERM * len(missing),
                base_tokens=_TOKENIZER.count(text),
            )
        )
    scores.sort(key=lambda score: (score.total_cost, score.name))
    return scores[0].name, scores


def refine_missing_terms(score: ViewScore) -> str | None:
    """The refinement text that covers a scored view's missing terms.

    Returns None when the view already covers everything.
    """
    if not score.missing_terms:
        return None
    clauses = ", ".join(score.missing_terms)
    return f"Additionally, make sure to address: {clauses}."
