"""SELECT_VIEW: cost-based view selection as a runtime operator (paper §5).

"When multiple views are available, SPEAR can employ cost-based selection
to identify the best starting point."  :class:`SelectView` performs that
choice inside a pipeline: it scores the candidate views against the task's
required terms, instantiates the winner into P, appends the
covering refinement for any terms the winner still misses, and records
the decision in the event log and metadata.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.algebra import Operator
from repro.core.entry import RefAction
from repro.core.state import ExecutionState
from repro.optimizer.view_selection import refine_missing_terms, select_view
from repro.runtime.events import EventKind

__all__ = ["SelectView"]


class SelectView(Operator):
    """Choose the cheapest base view at runtime and instantiate it.

    Args:
        candidates: view names to score.
        required_terms: criteria the final prompt must express.
        key: prompt-store key to (re)create with the chosen view.
        params: parameter binding for expansion.
    """

    def __init__(
        self,
        candidates: list[str],
        required_terms: list[str],
        *,
        key: str,
        params: Mapping[str, Any] | None = None,
    ) -> None:
        self.candidates = list(candidates)
        self.required_terms = list(required_terms)
        self.key = key
        self.params = dict(params or {})
        self.label = f"SELECT_VIEW[{', '.join(candidates)}]"

    def _run(self, state: ExecutionState) -> ExecutionState:
        winner, scores = select_view(
            state.views, self.candidates, self.required_terms, params=self.params
        )
        entry = state.views.instantiate(winner, self.params)
        if self.key in state.prompts:
            state.prompts[self.key].record(
                RefAction.REPLACE, entry.text, function=f"f_select_view_{winner}"
            )
            state.prompts[self.key].view = winner
        else:
            state.prompts[self.key] = entry

        refinement = refine_missing_terms(scores[0])
        if refinement is not None:
            state.prompts[self.key].record(
                RefAction.APPEND,
                f"{state.prompts[self.key].text}\n{refinement}",
                function="f_cover_missing_terms",
            )

        state.metadata.set("selected_view", winner)
        state.events.emit(
            EventKind.PLAN,
            self.label,
            at=state.clock.now,
            winner=winner,
            scores={
                score.name: round(score.total_cost, 2) for score in scores
            },
            refined=refinement is not None,
        )
        return state
