"""Predictive refinement: act before failure, not after (paper §5).

"Instead of waiting for failures or low quality outputs to trigger
recovery, SPEAR uses predictive models, either trained or heuristic, to
anticipate risks such as low confidence ... and initiate targeted
refinements ahead of execution, minimizing costly retries."

Two predictors are provided:

- :class:`HeuristicRiskModel` — scores the *rendered* prompt's features
  through the same quality model the backend uses (the heuristic case);
- :class:`OnlineRiskModel` — learns a running mean confidence per prompt
  feature fingerprint from observed GEN outcomes (the trained case),
  falling back to the heuristic for unseen fingerprints.

:class:`PredictiveRefine` is the operator: before a GEN, if predicted risk
exceeds the threshold, apply the configured refinement immediately —
saving the failed call + retry that reactive CHECK-based repair would pay.
"""

from __future__ import annotations

from typing import Callable

from repro.core.algebra import Operator
from repro.core.state import ExecutionState
from repro.llm.features import extract_features
from repro.llm.profiles import ModelProfile
from repro.llm.quality import error_rate
from repro.runtime.events import EventKind

__all__ = ["HeuristicRiskModel", "OnlineRiskModel", "PredictiveRefine"]


class HeuristicRiskModel:
    """Risk = expected error rate of the rendered prompt under a profile."""

    def __init__(self, profile: ModelProfile, *, difficulty: float = 0.5) -> None:
        self.profile = profile
        self.difficulty = difficulty

    def predict(self, state: ExecutionState, prompt_key: str) -> float:
        """Predicted failure risk in [0, 1] for generating with this prompt."""
        rendered = state.render_prompt(prompt_key)
        features = extract_features(rendered)
        return error_rate(features, self.profile, difficulty=self.difficulty)


class OnlineRiskModel:
    """Learns risk from observed outcomes, keyed by feature fingerprint."""

    def __init__(self, fallback: HeuristicRiskModel) -> None:
        self.fallback = fallback
        self._sums: dict[int, float] = {}
        self._counts: dict[int, int] = {}

    def observe(self, state: ExecutionState, prompt_key: str, confidence: float) -> None:
        """Record one observed GEN outcome for this prompt's feature class."""
        rendered = state.render_prompt(prompt_key)
        fingerprint = extract_features(rendered).fingerprint()
        self._sums[fingerprint] = self._sums.get(fingerprint, 0.0) + confidence
        self._counts[fingerprint] = self._counts.get(fingerprint, 0) + 1

    def predict(self, state: ExecutionState, prompt_key: str) -> float:
        """Risk = 1 - mean observed confidence; heuristic when unseen."""
        rendered = state.render_prompt(prompt_key)
        fingerprint = extract_features(rendered).fingerprint()
        count = self._counts.get(fingerprint, 0)
        if count == 0:
            return self.fallback.predict(state, prompt_key)
        return 1.0 - self._sums[fingerprint] / count

    def observations(self) -> int:
        """Total outcomes observed so far."""
        return sum(self._counts.values())


class PredictiveRefine(Operator):
    """Apply a refinement *before* generation when predicted risk is high."""

    def __init__(
        self,
        prompt_key: str,
        risk_model: HeuristicRiskModel | OnlineRiskModel,
        refinement: Operator | Callable[[], Operator],
        *,
        threshold: float = 0.2,
    ) -> None:
        self.prompt_key = prompt_key
        self.risk_model = risk_model
        self._refinement = refinement
        self.threshold = threshold
        self.label = f'PREDICT["{prompt_key}", risk>{threshold}]'

    def _run(self, state: ExecutionState) -> ExecutionState:
        risk = self.risk_model.predict(state, self.prompt_key)
        state.metadata.set("predicted_risk", risk)
        state.events.emit(
            EventKind.PLAN,
            self.label,
            at=state.clock.now,
            risk=risk,
            threshold=self.threshold,
            refined=risk > self.threshold,
        )
        if risk > self.threshold:
            refinement = (
                self._refinement()
                if not isinstance(self._refinement, Operator)
                else self._refinement
            )
            state = refinement.apply(state)
            state.metadata.increment("predictive_refinements")
        return state
