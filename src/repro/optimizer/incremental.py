"""Incremental re-execution analysis: what must re-run after a refinement.

With the operator-level result cache in place (paper §5), refining one
prompt does not force a full pipeline re-run: operators whose declared
inputs (:meth:`Operator.footprint <repro.core.algebra.Operator.footprint>`)
do not transitively depend on the refined key keep hitting the cache, and
only the dependent *suffix* executes live.  This module provides the
static counterpart the planner needs: given a pipeline, the current
state, and a candidate refinement target, which steps would re-run and
what would the re-run cost?

The analysis is a taint propagation over declared footprints:

- a step is *dirty* when it reads the refined prompt key, or reads a
  context slot written by an earlier dirty step;
- dirty steps contribute their context writes to the taint set;
- steps without a footprint (REF, CHECK, MERGE, glue) are treated as
  always re-running — they are not cacheable — but taint only flows
  through their *prompt* effects, which the refined-key seed already
  covers, so they do not blindly poison downstream reads.

This mirrors how the runtime actually behaves: cacheable clean steps hit,
everything else executes (cheaply, for non-GEN steps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.pipeline import Pipeline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.algebra import Operator
    from repro.core.state import ExecutionState
    from repro.optimizer.cost_model import CostModel

__all__ = ["StepImpact", "IncrementalEstimate", "dependent_suffix", "estimate_rerun"]

#: default decode-length expectation when a GEN does not cap max_tokens.
_DEFAULT_OUTPUT_TOKENS = 48


@dataclass(frozen=True)
class StepImpact:
    """One pipeline step's fate after a hypothetical refinement."""

    index: int
    label: str
    #: "rerun" (dirty or uncacheable) or "cached" (clean and cacheable).
    fate: str
    #: why the step re-runs: "prompt", "context", "uncacheable" — or ""
    #: for cached steps.
    reason: str = ""


@dataclass(frozen=True)
class IncrementalEstimate:
    """Estimated cost of re-running a pipeline after refining one key."""

    prompt_key: str
    steps: tuple[StepImpact, ...]
    rerun_seconds: float
    cached_seconds: float
    rerun_tokens: int

    @property
    def seconds(self) -> float:
        """Total estimated re-run time (live suffix + cache hits)."""
        return self.rerun_seconds + self.cached_seconds

    @property
    def rerun_steps(self) -> tuple[StepImpact, ...]:
        return tuple(step for step in self.steps if step.fate == "rerun")

    @property
    def cached_steps(self) -> tuple[StepImpact, ...]:
        return tuple(step for step in self.steps if step.fate == "cached")


def _flatten(operators: "Iterable[Operator]") -> "list[Operator]":
    flat: "list[Operator]" = []
    for operator in operators:
        if isinstance(operator, Pipeline):
            flat.extend(_flatten(operator.operators))
        else:
            flat.append(operator)
    return flat


def dependent_suffix(
    pipeline: Pipeline,
    state: "ExecutionState",
    prompt_key: str,
) -> tuple[StepImpact, ...]:
    """Classify each step as re-running or cache-served after refining
    ``prompt_key`` — the taint propagation described in the module doc."""
    tainted_context: set[str] = set()
    impacts: list[StepImpact] = []
    for index, operator in enumerate(_flatten(pipeline.operators)):
        footprint = operator.footprint(state)
        if footprint is None:
            impacts.append(
                StepImpact(index, operator.label, "rerun", "uncacheable")
            )
            continue
        if prompt_key in footprint.prompt_keys:
            reason = "prompt"
        elif any(root in tainted_context for root, _ in footprint.context_reads):
            reason = "context"
        else:
            impacts.append(StepImpact(index, operator.label, "cached"))
            continue
        tainted_context.update(footprint.context_writes)
        impacts.append(StepImpact(index, operator.label, "rerun", reason))
    return tuple(impacts)


def estimate_rerun(
    pipeline: Pipeline,
    state: "ExecutionState",
    prompt_key: str,
    cost_model: "CostModel",
) -> IncrementalEstimate:
    """Estimate the re-run cost of ``pipeline`` after refining ``prompt_key``.

    GEN steps in the dirty suffix are charged a full
    :meth:`~repro.optimizer.cost_model.CostModel.call` over their prompt
    as currently rendered; cache-served steps are charged
    :meth:`~repro.optimizer.cost_model.CostModel.cached_call`; other
    re-running steps (REF/CHECK/glue) are free in the latency model.
    """
    from repro.core.operators import GEN

    operators = _flatten(pipeline.operators)
    impacts = dependent_suffix(pipeline, state, prompt_key)
    rerun_seconds = 0.0
    cached_seconds = 0.0
    rerun_tokens = 0
    for impact in impacts:
        operator = operators[impact.index]
        if impact.fate == "cached":
            cached_seconds += cost_model.cached_call().seconds
            continue
        if not isinstance(operator, GEN):
            continue
        if operator.prompt_key not in state.prompts:
            continue
        rendered = state.render_prompt(operator.prompt_key, extra=operator.extra)
        estimate = cost_model.call(
            rendered,
            expected_output_tokens=(
                operator.max_tokens
                if operator.max_tokens is not None
                else _DEFAULT_OUTPUT_TOKENS
            ),
        )
        rerun_seconds += estimate.seconds
        rerun_tokens += estimate.prompt_tokens + estimate.output_tokens
    return IncrementalEstimate(
        prompt_key=prompt_key,
        steps=impacts,
        rerun_seconds=rerun_seconds,
        cached_seconds=cached_seconds,
        rerun_tokens=rerun_tokens,
    )
