"""Cost-based refinement planning (paper §5).

"Similar to physical operator selection in traditional query optimizers,
SPEAR performs cost-based planning over refinements": the ref_log records
what each refiner cost and what it bought (confidence deltas, captured by
GEN); the planner ranks candidate refiners by utility-per-cost, skips
low-impact ones, and applies only those that fit the task's budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.algebra import Operator
from repro.core.meta import analyze_refiners
from repro.core.state import ExecutionState
from repro.errors import PlanningError
from repro.llm.tokenizer import Tokenizer
from repro.runtime.events import EventKind

__all__ = ["CandidateRefiner", "RefinementPlan", "RefinementPlanner"]

_TOKENIZER = Tokenizer()


@dataclass(frozen=True)
class CandidateRefiner:
    """One refiner the planner may choose to apply.

    ``build`` constructs the operator (usually a REF); ``est_cost_tokens``
    is the prompt-token growth the refinement causes (what each future GEN
    pays for); ``prior_gain`` seeds utility before any history exists.
    """

    name: str
    build: Callable[[], Operator]
    est_cost_tokens: int
    prior_gain: float = 0.05

    @staticmethod
    def from_text(name: str, build: Callable[[], Operator], text: str) -> "CandidateRefiner":
        """Estimate the token cost from the refinement text itself."""
        return CandidateRefiner(
            name=name, build=build, est_cost_tokens=_TOKENIZER.count(text)
        )


@dataclass(frozen=True)
class PlannedStep:
    """One step of a refinement plan."""

    refiner: CandidateRefiner
    expected_gain: float
    utility: float


@dataclass(frozen=True)
class RefinementPlan:
    """An ordered, budgeted selection of refiners."""

    steps: tuple[PlannedStep, ...]
    skipped: tuple[str, ...]
    budget_tokens: int

    @property
    def total_cost_tokens(self) -> int:
        """Prompt-token growth if every planned step is applied."""
        return sum(step.refiner.est_cost_tokens for step in self.steps)

    def apply(self, state: ExecutionState) -> ExecutionState:
        """Execute the planned refiners in order."""
        for step in self.steps:
            state = step.refiner.build().apply(state)
        return state


class RefinementPlanner:
    """Greedy utility-per-cost refiner selection under a token budget."""

    def __init__(self, *, min_expected_gain: float = 0.0) -> None:
        #: refiners whose expected gain is at or below this are skipped
        #: outright ("skip low-impact updates", §5).
        self.min_expected_gain = min_expected_gain

    def _expected_gain(
        self, state: ExecutionState, candidate: CandidateRefiner
    ) -> float:
        stats = analyze_refiners(state.prompts).get(candidate.name)
        if stats is None or stats.applications == 0:
            return candidate.prior_gain
        # Blend history with the prior — a couple of lucky applications
        # shouldn't dominate, mirroring a Bayesian shrinkage.
        weight = stats.applications / (stats.applications + 2)
        return (
            weight * stats.mean_confidence_delta
            + (1 - weight) * candidate.prior_gain
        )

    def plan(
        self,
        state: ExecutionState,
        candidates: list[CandidateRefiner],
        *,
        budget_tokens: int,
    ) -> RefinementPlan:
        """Rank candidates by utility and pack them into the budget."""
        if budget_tokens < 0:
            raise PlanningError(f"budget_tokens must be >= 0: {budget_tokens}")
        scored: list[PlannedStep] = []
        skipped: list[str] = []
        for candidate in candidates:
            gain = self._expected_gain(state, candidate)
            if gain <= self.min_expected_gain:
                skipped.append(candidate.name)
                continue
            cost = max(candidate.est_cost_tokens, 1)
            scored.append(
                PlannedStep(
                    refiner=candidate,
                    expected_gain=gain,
                    utility=gain / cost,
                )
            )
        scored.sort(key=lambda step: -step.utility)

        chosen: list[PlannedStep] = []
        remaining = budget_tokens
        for step in scored:
            if step.refiner.est_cost_tokens <= remaining:
                chosen.append(step)
                remaining -= step.refiner.est_cost_tokens
            else:
                skipped.append(step.refiner.name)

        plan = RefinementPlan(
            steps=tuple(chosen),
            skipped=tuple(skipped),
            budget_tokens=budget_tokens,
        )
        state.events.emit(
            EventKind.PLAN,
            "RefinementPlanner",
            at=state.clock.now,
            chosen=[step.refiner.name for step in plan.steps],
            skipped=list(plan.skipped),
            budget_tokens=budget_tokens,
            total_cost_tokens=plan.total_cost_tokens,
        )
        return plan
