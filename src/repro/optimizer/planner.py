"""Cost-based refinement planning (paper §5).

"Similar to physical operator selection in traditional query optimizers,
SPEAR performs cost-based planning over refinements": the ref_log records
what each refiner cost and what it bought (confidence deltas, captured by
GEN); the planner ranks candidate refiners by utility-per-cost, skips
low-impact ones, and applies only those that fit the task's budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.core.algebra import Operator
from repro.core.meta import analyze_refiners
from repro.core.state import ExecutionState
from repro.errors import PlanningError
from repro.llm.tokenizer import Tokenizer
from repro.runtime.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import Pipeline
    from repro.optimizer.cost_model import CostModel

__all__ = ["CandidateRefiner", "RefinementPlan", "RefinementPlanner"]

_TOKENIZER = Tokenizer()


@dataclass(frozen=True)
class CandidateRefiner:
    """One refiner the planner may choose to apply.

    ``build`` constructs the operator (usually a REF); ``est_cost_tokens``
    is the prompt-token growth the refinement causes (what each future GEN
    pays for); ``prior_gain`` seeds utility before any history exists.
    """

    name: str
    build: Callable[[], Operator]
    est_cost_tokens: int
    prior_gain: float = 0.05

    @staticmethod
    def from_text(name: str, build: Callable[[], Operator], text: str) -> "CandidateRefiner":
        """Estimate the token cost from the refinement text itself."""
        return CandidateRefiner(
            name=name, build=build, est_cost_tokens=_TOKENIZER.count(text)
        )


@dataclass(frozen=True)
class PlannedStep:
    """One step of a refinement plan."""

    refiner: CandidateRefiner
    expected_gain: float
    utility: float


@dataclass(frozen=True)
class RefinementPlan:
    """An ordered, budgeted selection of refiners."""

    steps: tuple[PlannedStep, ...]
    skipped: tuple[str, ...]
    budget_tokens: int

    @property
    def total_cost_tokens(self) -> int:
        """Prompt-token growth if every planned step is applied."""
        return sum(step.refiner.est_cost_tokens for step in self.steps)

    def apply(self, state: ExecutionState) -> ExecutionState:
        """Execute the planned refiners in order."""
        for step in self.steps:
            state = step.refiner.build().apply(state)
        return state


class RefinementPlanner:
    """Greedy utility-per-cost refiner selection under a token budget."""

    def __init__(self, *, min_expected_gain: float = 0.0) -> None:
        #: refiners whose expected gain is at or below this are skipped
        #: outright ("skip low-impact updates", §5).
        self.min_expected_gain = min_expected_gain

    def _expected_gain(
        self, state: ExecutionState, candidate: CandidateRefiner
    ) -> float:
        stats = analyze_refiners(state.prompts).get(candidate.name)
        if stats is None or stats.applications == 0:
            return candidate.prior_gain
        # Blend history with the prior — a couple of lucky applications
        # shouldn't dominate, mirroring a Bayesian shrinkage.
        weight = stats.applications / (stats.applications + 2)
        return (
            weight * stats.mean_confidence_delta
            + (1 - weight) * candidate.prior_gain
        )

    def plan(
        self,
        state: ExecutionState,
        candidates: list[CandidateRefiner],
        *,
        budget_tokens: int,
    ) -> RefinementPlan:
        """Rank candidates by utility and pack them into the budget."""
        if budget_tokens < 0:
            raise PlanningError(f"budget_tokens must be >= 0: {budget_tokens}")
        scored: list[PlannedStep] = []
        skipped: list[str] = []
        for candidate in candidates:
            gain = self._expected_gain(state, candidate)
            if gain <= self.min_expected_gain:
                skipped.append(candidate.name)
                continue
            cost = max(candidate.est_cost_tokens, 1)
            scored.append(
                PlannedStep(
                    refiner=candidate,
                    expected_gain=gain,
                    utility=gain / cost,
                )
            )
        scored.sort(key=lambda step: -step.utility)

        chosen: list[PlannedStep] = []
        remaining = budget_tokens
        for step in scored:
            if step.refiner.est_cost_tokens <= remaining:
                chosen.append(step)
                remaining -= step.refiner.est_cost_tokens
            else:
                skipped.append(step.refiner.name)

        plan = RefinementPlan(
            steps=tuple(chosen),
            skipped=tuple(skipped),
            budget_tokens=budget_tokens,
        )
        state.events.emit(
            EventKind.PLAN,
            "RefinementPlanner",
            at=state.clock.now,
            chosen=[step.refiner.name for step in plan.steps],
            skipped=list(plan.skipped),
            budget_tokens=budget_tokens,
            total_cost_tokens=plan.total_cost_tokens,
        )
        return plan

    def plan_incremental(
        self,
        state: ExecutionState,
        candidates: list[CandidateRefiner],
        *,
        pipeline: "Pipeline",
        cost_model: "CostModel",
        budget_tokens: int,
    ) -> RefinementPlan:
        """Like :meth:`plan`, but cost in re-execution terms.

        With the operator-level result cache, applying a refiner does not
        force a full pipeline re-run — only the suffix that transitively
        depends on the refined key.  Each candidate's cost is therefore
        its prompt-token growth *plus* the tokens of the dependent suffix
        it would force to re-run (:func:`~repro.optimizer.incremental.estimate_rerun`);
        cache-served steps are free.  A refiner targeting a prompt late in
        the pipeline thus wins over an equally promising one targeting the
        first prompt, because it invalidates less.

        Candidates whose built operator exposes no ``key`` attribute (not
        a REF) are costed as full re-runs of every step.
        """
        from repro.optimizer.incremental import estimate_rerun

        if budget_tokens < 0:
            raise PlanningError(f"budget_tokens must be >= 0: {budget_tokens}")
        scored: list[PlannedStep] = []
        skipped: list[str] = []
        rerun_detail: dict[str, dict[str, Any]] = {}
        for candidate in candidates:
            gain = self._expected_gain(state, candidate)
            if gain <= self.min_expected_gain:
                skipped.append(candidate.name)
                continue
            target_key = getattr(candidate.build(), "key", None)
            if target_key is not None:
                estimate = estimate_rerun(
                    pipeline, state, target_key, cost_model
                )
                rerun_tokens = estimate.rerun_tokens
                rerun_detail[candidate.name] = {
                    "target_key": target_key,
                    "rerun_steps": len(estimate.rerun_steps),
                    "cached_steps": len(estimate.cached_steps),
                    "rerun_seconds": estimate.rerun_seconds,
                }
            else:
                # Unknown target: assume everything re-runs.
                full = sum(
                    estimate_rerun(pipeline, state, key, cost_model).rerun_tokens
                    for key in state.prompts.keys()
                )
                rerun_tokens = full
            cost = max(candidate.est_cost_tokens + rerun_tokens, 1)
            scored.append(
                PlannedStep(
                    refiner=candidate,
                    expected_gain=gain,
                    utility=gain / cost,
                )
            )
        scored.sort(key=lambda step: -step.utility)

        chosen: list[PlannedStep] = []
        remaining = budget_tokens
        for step in scored:
            if step.refiner.est_cost_tokens <= remaining:
                chosen.append(step)
                remaining -= step.refiner.est_cost_tokens
            else:
                skipped.append(step.refiner.name)

        plan = RefinementPlan(
            steps=tuple(chosen),
            skipped=tuple(skipped),
            budget_tokens=budget_tokens,
        )
        state.events.emit(
            EventKind.PLAN,
            "RefinementPlanner",
            at=state.clock.now,
            mode="incremental",
            chosen=[step.refiner.name for step in plan.steps],
            skipped=list(plan.skipped),
            budget_tokens=budget_tokens,
            total_cost_tokens=plan.total_cost_tokens,
            rerun_detail=rerun_detail,
        )
        return plan
