"""Optimization strategies: fusion, cost-based planning, prediction, views."""

from repro.optimizer.cost_model import CallEstimate, CostModel
from repro.optimizer.gen_fusion import FusedGen, fuse_gens, shared_prefix
from repro.optimizer.fusion import (
    FusionDecision,
    FusionPlanner,
    LlmStage,
    build_fused_instruction,
    fuse_refs,
    ref_fusion_compatibility,
)
from repro.optimizer.incremental import (
    IncrementalEstimate,
    StepImpact,
    dependent_suffix,
    estimate_rerun,
)
from repro.optimizer.planner import (
    CandidateRefiner,
    RefinementPlan,
    RefinementPlanner,
)
from repro.optimizer.predictive import (
    HeuristicRiskModel,
    OnlineRiskModel,
    PredictiveRefine,
)
from repro.optimizer.select_view_op import SelectView
from repro.optimizer.view_selection import ViewScore, refine_missing_terms, select_view

__all__ = [
    "FusedGen",
    "fuse_gens",
    "shared_prefix",
    "CallEstimate",
    "CostModel",
    "FusionDecision",
    "FusionPlanner",
    "LlmStage",
    "build_fused_instruction",
    "fuse_refs",
    "ref_fusion_compatibility",
    "IncrementalEstimate",
    "StepImpact",
    "dependent_suffix",
    "estimate_rerun",
    "CandidateRefiner",
    "RefinementPlan",
    "RefinementPlanner",
    "HeuristicRiskModel",
    "OnlineRiskModel",
    "PredictiveRefine",
    "SelectView",
    "ViewScore",
    "refine_missing_terms",
    "select_view",
]
