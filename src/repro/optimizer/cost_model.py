"""Cost model: estimating GEN-call and pipeline-stage costs.

The optimizer's decisions (fuse or not, which refiner, which view) all
reduce to comparing estimated call costs.  A call's cost is the latency
model of :mod:`repro.llm.latency` evaluated at *estimated* token counts:
prompt tokens from the text, cached tokens from an expected cache-hit
fraction, output tokens from the stage's expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.llm.latency import estimate_latency
from repro.llm.profiles import ModelProfile
from repro.llm.tokenizer import Tokenizer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.costs import PipelineCostSummary
    from repro.core.pipeline import Pipeline
    from repro.resilience.policies import RetryPolicy

__all__ = ["CallEstimate", "CostModel"]

_SHARED_TOKENIZER = Tokenizer()


@dataclass(frozen=True)
class CallEstimate:
    """Estimated cost of one generation call."""

    seconds: float
    prompt_tokens: int
    cached_tokens: int
    output_tokens: int


class CostModel:
    """Estimates call costs under a model profile."""

    def __init__(
        self,
        profile: ModelProfile,
        tokenizer: Tokenizer | None = None,
        *,
        cache_hit_seconds: float = 0.001,
    ) -> None:
        self.profile = profile
        self.tokenizer = tokenizer if tokenizer is not None else _SHARED_TOKENIZER
        #: what a step served from the operator-level result cache costs —
        #: mirrors :attr:`repro.runtime.result_cache.ResultCache.hit_cost`.
        self.cache_hit_seconds = cache_hit_seconds

    def cached_call(self) -> CallEstimate:
        """Estimate a call served from the operator-level result cache.

        No tokens move: the memoized ``(C, M)`` delta is spliced in and
        the only charge is the (near-zero) cache lookup itself.
        """
        return CallEstimate(
            seconds=self.cache_hit_seconds,
            prompt_tokens=0,
            cached_tokens=0,
            output_tokens=0,
        )

    def call(
        self,
        prompt_text: str,
        *,
        expected_output_tokens: int,
        expected_cache_fraction: float = 0.0,
    ) -> CallEstimate:
        """Estimate one call over ``prompt_text``.

        ``expected_cache_fraction`` is the fraction of prompt tokens
        expected to be served from the prefix cache (e.g. ~the shared
        scaffold fraction for batched view calls; 0 for cold prompts).
        """
        if not 0.0 <= expected_cache_fraction <= 1.0:
            raise ValueError(
                f"expected_cache_fraction must be in [0, 1]: {expected_cache_fraction}"
            )
        prompt_tokens = self.tokenizer.count(prompt_text)
        cached_tokens = int(prompt_tokens * expected_cache_fraction)
        breakdown = estimate_latency(
            self.profile,
            prompt_tokens=prompt_tokens,
            cached_tokens=cached_tokens,
            output_tokens=expected_output_tokens,
        )
        return CallEstimate(
            seconds=breakdown.total,
            prompt_tokens=prompt_tokens,
            cached_tokens=cached_tokens,
            output_tokens=expected_output_tokens,
        )

    def resilient_call(
        self,
        prompt_text: str,
        *,
        expected_output_tokens: int,
        expected_cache_fraction: float = 0.0,
        failure_rate: float = 0.0,
        policy: "RetryPolicy | None" = None,
    ) -> CallEstimate:
        """Estimate a call under a fault rate and a retry policy.

        A per-attempt failure probability ``p`` with up to ``k`` attempts
        (``policy.max_attempts``; 1 when no policy) yields an expected
        attempt count of ``sum_{i=0}^{k-1} p**i`` — every failed attempt
        is paid for in full and retried.  Attempt ``i``'s backoff delay
        (jitter-free midpoint) is incurred with probability ``p**(i+1)``:
        only runs whose first ``i+1`` attempts all failed wait for it.
        Token expectations scale by the expected attempt count, so the
        optimizer prices retried traffic, not just retried time.
        """
        if not 0.0 <= failure_rate < 1.0:
            raise ValueError(
                f"failure_rate must be in [0, 1): {failure_rate}"
            )
        base = self.call(
            prompt_text,
            expected_output_tokens=expected_output_tokens,
            expected_cache_fraction=expected_cache_fraction,
        )
        attempts = policy.max_attempts if policy is not None else 1
        p = failure_rate
        expected_attempts = sum(p**i for i in range(attempts))
        expected_backoff = 0.0
        if policy is not None:
            expected_backoff = sum(
                p ** (i + 1) * policy.delay_for(i) for i in range(attempts - 1)
            )
        return CallEstimate(
            seconds=base.seconds * expected_attempts + expected_backoff,
            prompt_tokens=int(round(base.prompt_tokens * expected_attempts)),
            cached_tokens=int(round(base.cached_tokens * expected_attempts)),
            output_tokens=int(round(base.output_tokens * expected_attempts)),
        )

    def summarize_pipeline(
        self, pipeline: "Pipeline", **env: object
    ) -> "PipelineCostSummary":
        """Whole-pipeline lower/upper cost bounds under this model.

        Delegates to the static analyzer's
        :func:`~repro.analysis.costs.estimate_costs` so the optimizer
        and `spear check --costs` price pipelines with one shared
        engine: reachable generations only, per-text min/max token
        bounds, RETRY attempt multipliers.  ``env`` takes
        :func:`~repro.analysis.check.check_pipeline`'s keyword
        environment (``prompts=``, ``runtime=``, ...).
        """
        # Imported here: repro.analysis.costs builds its default model
        # from this module, so a top-level import would be circular.
        from repro.analysis.costs import estimate_costs
        from repro.analysis.dataflow import AnalysisEnv, build_dataflow

        analysis_env = AnalysisEnv(
            prompts=env.get("prompts") or {},
            context=tuple(env.get("context") or ()),
            runtime=env.get("runtime"),
        )
        graph = build_dataflow(
            pipeline, analysis_env, name=env.get("name") or pipeline.name
        )
        return estimate_costs(graph, analysis_env, model=self)

    def per_item(
        self,
        instruction_text: str,
        item_text: str,
        *,
        expected_output_tokens: int,
        instruction_cached: bool = True,
    ) -> CallEstimate:
        """Estimate one call of a batched stage over one item.

        In batched stages the instruction scaffold repeats across items and
        is prefix-cached after warmup (``instruction_cached=True``); the
        item text is always cold.
        """
        prompt_tokens = self.tokenizer.count(instruction_text) + self.tokenizer.count(
            item_text
        )
        cached_tokens = (
            self.tokenizer.count(instruction_text) if instruction_cached else 0
        )
        breakdown = estimate_latency(
            self.profile,
            prompt_tokens=prompt_tokens,
            cached_tokens=cached_tokens,
            output_tokens=expected_output_tokens,
        )
        return CallEstimate(
            seconds=breakdown.total,
            prompt_tokens=prompt_tokens,
            cached_tokens=cached_tokens,
            output_tokens=expected_output_tokens,
        )
