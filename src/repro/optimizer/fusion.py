"""Operator fusion (paper §5, evaluated in §7 / Table 4 / Figure 1).

Two fusion levels are implemented:

1. **LLM-stage fusion** — adjacent GEN stages over the same items (the
   Map→Filter / Filter→Map pipelines of §7) are combined into a single
   prompt.  :class:`FusionPlanner` estimates sequential vs fused per-item
   cost — *selectivity-aware*, since a sequential Filter→Map pipeline
   skips Map calls for filtered-out items (predicate pushdown) — and
   decides whether fusing pays.

2. **Prompt-operator fusion** — adjacent REF[APPEND] edits to the same
   prompt key are coalesced into one edit (:func:`fuse_refs`), reducing
   version churn and event volume without changing the final text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.entry import RefAction
from repro.core.operators import REF
from repro.core.pipeline import Pipeline
from repro.errors import FusionError
from repro.llm.profiles import ModelProfile
from repro.optimizer.cost_model import CostModel

__all__ = [
    "LlmStage",
    "FusionDecision",
    "FusionPlanner",
    "build_fused_instruction",
    "fuse_refs",
    "ref_fusion_compatibility",
]


@dataclass(frozen=True)
class LlmStage:
    """One batched LLM stage of a Map/Filter pipeline."""

    kind: str  # "map" | "filter"
    instruction: str
    #: expected decode length per item for this stage alone.
    expected_output_tokens: int

    def __post_init__(self) -> None:
        if self.kind not in ("map", "filter"):
            raise FusionError(f"stage kind must be 'map' or 'filter': {self.kind!r}")


@dataclass(frozen=True)
class FusionDecision:
    """The planner's verdict for one stage pair."""

    fuse: bool
    order: str  # "map_filter" | "filter_map"
    est_sequential_s: float
    est_fused_s: float

    @property
    def est_gain(self) -> float:
        """Estimated relative time saved by fusing (negative = slower)."""
        if self.est_sequential_s == 0:
            return 0.0
        return 1.0 - self.est_fused_s / self.est_sequential_s


def build_fused_instruction(first: LlmStage, second: LlmStage) -> str:
    """Combine two stage instructions into one fused prompt scaffold.

    The fused prompt asks for both stage outputs in a structured block;
    for filter-first fusion the map output is conditional ("Summary: N/A"
    for dropped items), matching how the simulated model behaves.
    """
    if (first.kind, second.kind) == ("map", "filter"):
        return (
            "Perform both steps on the tweet below.\n"
            f"Step 1 ({first.kind}): {first.instruction}\n"
            f"Step 2 ({second.kind}): {second.instruction}\n"
            "Respond with:\nLabel: yes or no\nSummary: <the cleaned summary>"
        )
    if (first.kind, second.kind) == ("filter", "map"):
        return (
            "Perform both steps on the tweet below.\n"
            f"Step 1 ({first.kind}): {first.instruction}\n"
            f"Step 2 ({second.kind}): {second.instruction} "
            "Only produce the summary when the label is yes; otherwise write N/A.\n"
            "Respond with:\nLabel: yes or no\nSummary: <summary or N/A>"
        )
    raise FusionError(
        f"unsupported fusion pair: {first.kind} -> {second.kind}"
    )


#: Decode tokens of the structured markers a fused response always emits
#: ("Label:" / "Summary:" lines) beyond the stage payloads...
FUSED_MARKER_TOKENS = 2
#: ...plus the "Summary: N/A" stub filter-first fusion emits for dropped
#: items.
FUSED_SKIP_STUB_TOKENS = 4


class FusionPlanner:
    """Selectivity-aware cost comparison of sequential vs fused stage pairs."""

    def __init__(self, profile: ModelProfile, *, sample_item: str = "x" * 120) -> None:
        self.profile = profile
        self.cost_model = CostModel(profile)
        #: representative item text used for token estimation.
        self.sample_item = sample_item

    def _sequential_cost(
        self, first: LlmStage, second: LlmStage, selectivity: float
    ) -> float:
        first_call = self.cost_model.per_item(
            first.instruction,
            self.sample_item,
            expected_output_tokens=first.expected_output_tokens,
        )
        # In a Filter→Map pipeline only passing items reach the second
        # stage (predicate pushdown); in Map→Filter every item does.
        second_fraction = selectivity if first.kind == "filter" else 1.0
        # The second stage of Map→Filter consumes the first stage's output
        # (the summary), not the raw item — a cold prefill either way.
        second_item = (
            " ".join(["y"] * first.expected_output_tokens)
            if first.kind == "map"
            else self.sample_item
        )
        second_call = self.cost_model.per_item(
            second.instruction,
            second_item,
            expected_output_tokens=second.expected_output_tokens,
        )
        return first_call.seconds + second_fraction * second_call.seconds

    def _fused_cost(
        self, first: LlmStage, second: LlmStage, selectivity: float
    ) -> float:
        fused_instruction = build_fused_instruction(first, second)
        map_stage = first if first.kind == "map" else second
        filter_stage = second if first.kind == "map" else first
        if first.kind == "filter":
            # Summary produced only for kept items; dropped items still emit
            # the "Summary: N/A" stub.
            output_tokens = (
                FUSED_MARKER_TOKENS
                + filter_stage.expected_output_tokens
                + int(
                    selectivity * map_stage.expected_output_tokens
                    + (1 - selectivity) * FUSED_SKIP_STUB_TOKENS
                )
            )
        else:
            output_tokens = (
                FUSED_MARKER_TOKENS
                + filter_stage.expected_output_tokens
                + map_stage.expected_output_tokens
            )
        call = self.cost_model.per_item(
            fused_instruction,
            self.sample_item,
            expected_output_tokens=output_tokens,
        )
        return call.seconds

    def decide(
        self, first: LlmStage, second: LlmStage, *, selectivity: float
    ) -> FusionDecision:
        """Compare per-item costs and decide whether to fuse.

        ``selectivity`` is the filter's pass fraction in [0, 1] — the key
        input: filter-first pipelines beat fusion at low selectivity
        because pushdown skips expensive Map calls (paper Table 4).
        """
        if not 0.0 <= selectivity <= 1.0:
            raise FusionError(f"selectivity must be in [0, 1]: {selectivity}")
        order = "map_filter" if first.kind == "map" else "filter_map"
        sequential = self._sequential_cost(first, second, selectivity)
        fused = self._fused_cost(first, second, selectivity)
        return FusionDecision(
            fuse=fused < sequential,
            order=order,
            est_sequential_s=sequential,
            est_fused_s=fused,
        )


def ref_fusion_compatibility(previous: object, operator: object) -> str:
    """Classify an adjacent operator pair for REF fusion.

    The single source of truth shared by :func:`fuse_refs` (which fuses
    only ``"fusable"`` pairs) and the static checker's fusion-safety
    analyzers (which flag the incompatible verdicts) — so the planner can
    never fuse a pair the checker reports as unsafe.

    Verdicts:

    - ``"fusable"`` — literal APPENDs on one key, same mode + condition;
    - ``"dynamic"`` — same-key APPENDs but a refiner is a callable, so
      the texts cannot be coalesced statically;
    - ``"incompatible-mode"`` — same-key literal APPENDs whose refinement
      modes differ (fusing would mis-record provenance);
    - ``"incompatible-condition"`` — same-key literal APPENDs recording
      different triggering conditions;
    - ``"unrelated"`` — anything else (different keys/actions/types).
    """
    if not (
        isinstance(previous, REF)
        and isinstance(operator, REF)
        and previous.action is RefAction.APPEND
        and operator.action is RefAction.APPEND
        and previous.key == operator.key
    ):
        return "unrelated"
    if not (isinstance(previous.f, str) and isinstance(operator.f, str)):
        return "dynamic"
    if previous.mode != operator.mode:
        return "incompatible-mode"
    if previous.condition != operator.condition:
        return "incompatible-condition"
    return "fusable"


def fuse_refs(pipeline: Pipeline) -> Pipeline:
    """Coalesce adjacent literal REF[APPEND]s on the same key.

    Pure prompt-level fusion: ``REF[APPEND, a] >> REF[APPEND, b]`` on one
    key becomes a single ``REF[APPEND, a + "\\n" + b]`` — the final prompt
    text is identical, but version churn and event volume halve.  Only
    literal (string) refinements with matching mode *and* condition are
    fused (see :func:`ref_fusion_compatibility`); anything else is left
    untouched.
    """
    fused: list = []
    for operator in pipeline:
        previous = fused[-1] if fused else None
        can_fuse = ref_fusion_compatibility(previous, operator) == "fusable"
        if can_fuse:
            fused[-1] = REF(
                RefAction.APPEND,
                f"{previous.f}\n{operator.f}",
                key=operator.key,
                mode=operator.mode,
                condition=previous.condition,
                function_name=f"{previous.function_name}+{operator.function_name}",
            )
        else:
            fused.append(operator)
    return Pipeline(fused, name=pipeline.name)
