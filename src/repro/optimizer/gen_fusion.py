"""GEN fusion: combining adjacent generations into one call (paper §5).

"When GENs share context, such as generating multiple sections from the
same view, they can be fused into a single prompt to reduce token
duplication and improve coherence.  However, when GEN logic is applied
independently across inputs, fusion may degrade accuracy...  SPEAR
selectively applies GEN fusion based on prompt dependencies and reuse
potential."

Two pieces implement that here:

- :class:`FusedGen` — the fused operator: renders several prompts, factors
  out their longest common prefix (the shared view scaffold) so it is sent
  once, makes a single model call, and splits the sectioned output back
  into each GEN's context label;
- :func:`fuse_gens` — the selective rewrite: adjacent GENs in a pipeline
  are fused only when their prompt entries derive from the *same view*
  (the dependency signal the paper names); independent GENs are left
  sequential.
"""

from __future__ import annotations

from repro.core.algebra import Operator
from repro.core.operators import GEN
from repro.core.pipeline import Pipeline
from repro.core.state import ExecutionState
from repro.errors import FusionError, OperatorError
from repro.llm.tasks import SECTION_MARKER
from repro.runtime.events import EventKind

__all__ = ["FusedGen", "fuse_gens", "shared_prefix"]


def shared_prefix(texts: list[str]) -> str:
    """The longest common line-prefix of ``texts`` (whole lines only)."""
    if not texts:
        return ""
    split = [text.splitlines() for text in texts]
    prefix_lines = []
    for lines in zip(*split):
        first = lines[0]
        if all(line == first for line in lines[1:]):
            prefix_lines.append(first)
        else:
            break
    return "\n".join(prefix_lines)


class FusedGen(Operator):
    """Execute several GENs as one sectioned model call.

    ``specs`` is an ordered list of ``(label, prompt_key)`` pairs.  The
    rendered prompts' shared line-prefix is emitted once; each prompt's
    remainder becomes a ``### Section k`` block.  The model answers every
    section in a single invocation (one overhead, one prefill of the
    shared scaffold), and the output is split back so ``C[label_k]``
    holds exactly what the k-th GEN would have produced.
    """

    def __init__(self, specs: list[tuple[str, str]], *, max_tokens: int | None = None) -> None:
        if len(specs) < 2:
            raise OperatorError("FusedGen needs at least two (label, prompt) pairs")
        self.specs = list(specs)
        self.max_tokens = max_tokens
        labels = ", ".join(label for label, __ in specs)
        self.label = f"FUSED_GEN[{labels}]"

    def _run(self, state: ExecutionState) -> ExecutionState:
        if state.model is None:
            raise OperatorError("FUSED_GEN requires a model on the execution state")
        rendered = [
            state.render_prompt(prompt_key) for __, prompt_key in self.specs
        ]
        prefix = shared_prefix(rendered)
        sections = []
        for index, text in enumerate(rendered):
            remainder = text[len(prefix):].lstrip("\n") if prefix else text
            sections.append(f"{SECTION_MARKER} {index + 1}:\n{remainder}")
        combined = "\n".join(([prefix] if prefix else []) + sections)

        result = state.model.generate(combined, max_tokens=self.max_tokens)
        parts = result.extras.get("sections")
        if parts is None or len(parts) != len(self.specs):
            raise FusionError(
                f"fused generation returned {0 if parts is None else len(parts)} "
                f"sections for {len(self.specs)} prompts"
            )

        for (label, __), text in zip(self.specs, parts):
            state.context.put(label, text, producer=self.label)
        state.context.put(
            f"{self.specs[0][0]}__result", result, producer=self.label
        )
        state.metadata.update(
            {
                "confidence": result.confidence,
                "latency": result.latency.total,
                "prompt_tokens": result.prompt_tokens,
                "cached_tokens": result.cached_tokens,
                "output_tokens": result.output_tokens,
                "cache_hit_rate": result.cache_hit_rate,
            }
        )
        state.metadata.increment("gen_calls")
        state.events.emit(
            EventKind.GENERATE,
            self.label,
            at=state.clock.now,
            fused=len(self.specs),
            shared_prefix_chars=len(prefix),
            latency=result.latency.total,
        )
        return state


def fuse_gens(pipeline: Pipeline, state: ExecutionState) -> Pipeline:
    """Selectively fuse adjacent same-view GENs in ``pipeline``.

    Two consecutive GENs fuse when both prompt keys exist in ``state``'s
    prompt store and record the same originating view — the "share
    context" dependency signal of §5.  Everything else is preserved
    verbatim, so independent GENs keep their retry/evaluation granularity.
    """
    rewritten: list[Operator] = []
    pending: list[GEN] = []

    def flush() -> None:
        if len(pending) >= 2:
            rewritten.append(
                FusedGen([(gen.label_key, gen.prompt_key) for gen in pending])
            )
        else:
            rewritten.extend(pending)
        pending.clear()

    def view_of(gen: GEN) -> str | None:
        entry = state.prompts.get(gen.prompt_key)
        return entry.view if entry is not None else None

    for operator in pipeline:
        if isinstance(operator, GEN) and not operator.extra and view_of(operator):
            if pending and view_of(pending[-1]) != view_of(operator):
                flush()
            pending.append(operator)
        else:
            flush()
            rewritten.append(operator)
    flush()
    return Pipeline(rewritten, name=pipeline.name)
