"""Exception hierarchy for the SPEAR reproduction.

Every error raised by this package derives from :class:`SpearError`, so
callers embedding SPEAR in a larger system can catch one base class.
"""

from __future__ import annotations


class SpearError(Exception):
    """Base class for all SPEAR errors."""


class PromptStoreError(SpearError):
    """Problems with the prompt store P (missing keys, bad versions)."""


class UnknownPromptError(PromptStoreError):
    """A prompt key was requested that does not exist in P."""

    def __init__(self, key: str) -> None:
        super().__init__(f"unknown prompt key: {key!r}")
        self.key = key


class UnknownVersionError(PromptStoreError):
    """A prompt version was requested that the entry never had."""

    def __init__(self, key: str, version: int) -> None:
        super().__init__(f"prompt {key!r} has no version {version}")
        self.key = key
        self.version = version


class ContextError(SpearError):
    """Problems with the runtime context C."""


class UnknownContextKeyError(ContextError):
    """A context key was requested that does not exist in C."""

    def __init__(self, key: str, *, available: "list[str] | None" = None) -> None:
        message = f"unknown context key: {key!r}"
        if available is not None:
            listing = ", ".join(repr(name) for name in sorted(available))
            message += f"; available labels: [{listing}]" if listing else (
                "; the context is empty"
            )
        super().__init__(message)
        self.key = key
        self.available = sorted(available) if available is not None else None


class MetadataError(SpearError):
    """Problems with the metadata store M."""


class OperatorError(SpearError):
    """An operator could not be constructed or applied."""


class ViewError(SpearError):
    """Problems with view definition, lookup, or expansion."""


class UnknownViewError(ViewError):
    """A view name was requested that is not registered."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown view: {name!r}")
        self.name = name


class ViewParameterError(ViewError):
    """A view was instantiated with missing or unexpected parameters."""


class RefinementError(SpearError):
    """A refinement function failed or was mis-specified."""


class DelegationError(SpearError):
    """A DELEGATE target agent is unknown or failed."""


class RetrievalError(SpearError):
    """A RET source is unknown or retrieval failed."""


class ModelError(SpearError):
    """The simulated LLM backend rejected a request."""

    #: whether retrying the same call may succeed.  Resilience policies
    #: consult this instead of hard-coding a type list, so user-defined
    #: error subclasses can opt in.
    retryable: bool = False
    #: True when the error was injected by a :class:`repro.resilience.FaultPlan`
    #: (vs. a genuine backend rejection); lets observability distinguish
    #: simulated chaos from real failures.
    injected: bool = False
    #: which fault channel produced this error (``"transient"``,
    #: ``"rate_limit"``, ``"timeout"``, ``"malformed"``) or None.
    fault_kind: "str | None" = None


class TokenBudgetExceededError(ModelError):
    """A generation request exceeded the configured token budget."""

    def __init__(self, requested: int, budget: int) -> None:
        super().__init__(
            f"request of {requested} tokens exceeds budget of {budget}"
        )
        self.requested = requested
        self.budget = budget


class TransientModelError(ModelError):
    """The backend failed in a way that a retry may fix.

    The base of the retryable taxonomy: network blips, 5xx-style engine
    hiccups, scheduler preemptions.  Deterministic fault injection raises
    these with ``injected=True``.
    """

    retryable = True
    fault_kind = "transient"

    def __init__(
        self,
        message: str = "transient backend failure",
        *,
        injected: bool = False,
        attempt: int | None = None,
    ) -> None:
        super().__init__(message)
        self.injected = injected
        self.attempt = attempt


class RateLimitError(TransientModelError):
    """The backend shed load; retry after ``retry_after`` simulated seconds."""

    fault_kind = "rate_limit"

    def __init__(
        self,
        message: str = "rate limited",
        *,
        retry_after: float = 0.0,
        injected: bool = False,
        attempt: int | None = None,
    ) -> None:
        super().__init__(message, injected=injected, attempt=attempt)
        self.retry_after = retry_after


class TimeoutError(TransientModelError, TimeoutError):  # noqa: A001 - paper taxonomy name
    """A call exceeded its (virtual-clock) deadline.

    Also subclasses the builtin ``TimeoutError`` so generic handlers
    written against the standard library still catch it.
    """

    fault_kind = "timeout"

    def __init__(
        self,
        message: str = "generation timed out",
        *,
        elapsed: float = 0.0,
        deadline: float | None = None,
        injected: bool = False,
        attempt: int | None = None,
    ) -> None:
        super().__init__(message, injected=injected, attempt=attempt)
        self.elapsed = elapsed
        self.deadline = deadline


class MalformedOutputError(TransientModelError):
    """The backend returned a truncated or unparseable generation.

    Carries the partial text so degraded consumers can still inspect it;
    retryable because a fresh attempt usually completes.
    """

    fault_kind = "malformed"

    def __init__(
        self,
        message: str = "malformed generation",
        *,
        partial_text: str = "",
        injected: bool = False,
        attempt: int | None = None,
    ) -> None:
        super().__init__(message, injected=injected, attempt=attempt)
        self.partial_text = partial_text


class CircuitOpenError(TransientModelError):
    """A circuit breaker rejected the call before it reached the backend.

    Retryable by design: backoff advances the virtual clock toward the
    breaker's cooldown, after which a half-open probe is admitted.
    """

    fault_kind = "circuit_open"

    def __init__(self, model: str, *, until: float | None = None) -> None:
        suffix = f" (cooldown until t={until:.2f}s)" if until is not None else ""
        super().__init__(f"circuit open for model {model!r}{suffix}")
        self.model = model
        self.until = until


class PlanningError(SpearError):
    """The optimizer could not produce a plan."""


class FusionError(PlanningError):
    """Operator fusion was requested for an unfusable pair."""


class DslError(SpearError):
    """Base class for SPEAR-DL language errors."""


class DslSyntaxError(DslError):
    """SPEAR-DL source failed to lex or parse."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"line {line}, column {column}: {message}")
        self.line = line
        self.column = column


class DslCompileError(DslError):
    """SPEAR-DL parsed but referenced unknown operators, views, etc.

    Optionally carries a source position (``line``/``column`` are 0 when
    unknown, ``file`` is None) so tools can report ``file:line:col``.
    """

    def __init__(
        self,
        message: str,
        *,
        line: int = 0,
        column: int = 0,
        file: "str | None" = None,
    ) -> None:
        super().__init__(message)
        self.line = line
        self.column = column
        self.file = file


class SpearValidationError(SpearError):
    """Static validation found errors; execution was refused.

    Raised by strict mode (``RuntimeOptions(strict=True)``) *before* the
    first model call.  Carries the error-severity diagnostics; rendering
    is duck-typed (any object with ``.render()``/``.code``) so this
    module stays independent of :mod:`repro.analysis`.
    """

    def __init__(self, diagnostics: "list | None" = None) -> None:
        self.diagnostics = list(diagnostics or [])
        lines = [
            getattr(diagnostic, "render", lambda: str(diagnostic))()
            for diagnostic in self.diagnostics
        ]
        count = len(self.diagnostics)
        header = (
            f"static validation failed with {count} error(s):"
            if count
            else "static validation failed"
        )
        super().__init__("\n".join([header, *lines]))

    @property
    def codes(self) -> "list[str]":
        """The distinct diagnostic codes present, sorted."""
        return sorted({
            getattr(diagnostic, "code", "") for diagnostic in self.diagnostics
        })


class ReplayError(SpearError):
    """A refinement replay log was inconsistent with the store."""


class ObservabilityError(SpearError):
    """A metric, span, or exporter in repro.obs was misused."""
