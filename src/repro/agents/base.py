"""Agent abstraction for the DELEGATE operator.

Paper §3.3: ``DELEGATE[agent, payload]`` "offloads subtasks to an external
agent (e.g., a coder, retriever, or downstream service)".  Agents receive
the execution state (read/write access to C and M, like any participant in
the pipeline) plus the payload, and return a result that DELEGATE stores
in C.
"""

from __future__ import annotations

from typing import Any

__all__ = ["Agent"]


class Agent:
    """Base class for delegation targets."""

    #: agents self-identify; registries key on this when no explicit name
    #: is given.
    name: str = "agent"

    def handle(self, state: Any, payload: Any) -> Any:
        """Process ``payload`` in the context of ``state``; return a result."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
