"""Agent registry: named lookup for DELEGATE targets."""

from __future__ import annotations

from repro.agents.base import Agent
from repro.errors import DelegationError

__all__ = ["AgentRegistry"]


class AgentRegistry:
    """A simple name → agent map with validation."""

    def __init__(self) -> None:
        self._agents: dict[str, Agent] = {}

    def register(self, agent: Agent, *, name: str | None = None) -> None:
        """Register ``agent`` under ``name`` (default: the agent's own name)."""
        if not isinstance(agent, Agent):
            raise DelegationError(
                f"only Agent instances can be registered, got {type(agent).__name__}"
            )
        self._agents[name or agent.name] = agent

    def get(self, name: str) -> Agent:
        """Look up an agent; raises :class:`DelegationError` when unknown."""
        try:
            return self._agents[name]
        except KeyError:
            raise DelegationError(
                f"unknown agent {name!r}; registered: {sorted(self._agents)}"
            ) from None

    def names(self) -> list[str]:
        """All registered agent names, sorted."""
        return sorted(self._agents)

    def install(self, state) -> None:
        """Register every agent onto an execution state."""
        for name, agent in self._agents.items():
            state.register_agent(name, agent)

    def __contains__(self, name: object) -> bool:
        return name in self._agents

    def __len__(self) -> int:
        return len(self._agents)
