"""Delegation agents for the DELEGATE operator."""

from repro.agents.base import Agent
from repro.agents.registry import AgentRegistry
from repro.agents.retrieval_agent import RetrieverAgent
from repro.agents.validation import EchoAgent, ValidationAgent

__all__ = ["Agent", "AgentRegistry", "EchoAgent", "RetrieverAgent", "ValidationAgent"]
