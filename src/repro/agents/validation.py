"""Validation agent: the paper's "Delegated Evidence Check" (Table 1).

``DELEGATE["validation_agent", C["answer_1"]] → C["evidence_score"]``:
an external validator scores a generated answer for evidence alignment —
how well each claim in the answer is supported by the retrieved context.

The scorer is deliberately simple and fully inspectable: it extracts the
factual fragments of the answer (dosages, timings, indications, drug
status) and checks each against the context text, returning the supported
fraction plus a per-claim breakdown.
"""

from __future__ import annotations

import re
from typing import Any

from repro.agents.base import Agent

__all__ = ["ValidationAgent", "EchoAgent"]

_DOSAGE_RE = re.compile(r"\b\d+(?:\.\d+)?\s*mg(?:/kg)?\b", re.IGNORECASE)
_TIMING_RE = re.compile(
    r"(?:within the last|more than)\s+\d+\s+hours(?:\s+ago)?", re.IGNORECASE
)
_INDICATION_TERMS = (
    "dvt prophylaxis",
    "pe treatment",
    "atrial fibrillation bridging",
    "post-operative anticoagulation",
)


class ValidationAgent(Agent):
    """Scores answers for evidence alignment against context in C.

    The agent reads every string value in C under the configured context
    keys (default: all string values) as the evidence pool, extracts
    claims from the payload answer, and reports:

    - ``evidence_score`` — supported claims / total claims (1.0 when the
      answer makes no checkable claims);
    - per-claim support details in ``claims``.

    DELEGATE stores the whole report; pipelines typically route
    ``report["evidence_score"]`` into M for CHECK conditions.
    """

    name = "validation_agent"

    def __init__(self, evidence_keys: list[str] | None = None) -> None:
        self.evidence_keys = evidence_keys

    def _evidence_text(self, state: Any) -> str:
        keys = self.evidence_keys
        if keys is None:
            keys = [
                key
                for key in state.context.keys()
                if isinstance(state.context[key], str)
            ]
        return "\n".join(
            str(state.context[key]) for key in keys if key in state.context
        ).lower()

    @staticmethod
    def _extract_claims(answer: str) -> list[tuple[str, str]]:
        """(kind, claim-text) pairs found in the answer."""
        claims: list[tuple[str, str]] = []
        for match in _DOSAGE_RE.findall(answer):
            claims.append(("dosage", match.lower()))
        for match in _TIMING_RE.findall(answer):
            claims.append(("timing", match.lower()))
        lowered = answer.lower()
        for term in _INDICATION_TERMS:
            if term in lowered:
                claims.append(("indication", term))
        if "received enoxaparin" in lowered or "administered enoxaparin" in lowered:
            claims.append(("administered", "enoxaparin"))
        if "no enoxaparin" in lowered:
            claims.append(("not_administered", "no enoxaparin"))
        return claims

    def handle(self, state: Any, payload: Any) -> dict[str, Any]:
        """Score ``payload`` (an answer string) against the state's context."""
        answer = str(payload)
        evidence = self._evidence_text(state)
        claims = self._extract_claims(answer)
        results = []
        supported = 0
        for kind, claim in claims:
            if kind == "not_administered":
                hit = "enoxaparin" not in evidence
            else:
                hit = claim in evidence
            supported += int(hit)
            results.append({"kind": kind, "claim": claim, "supported": hit})
        score = supported / len(claims) if claims else 1.0
        # Make the score available to CHECK conditions immediately.
        state.metadata.set("evidence_score", score)
        return {"evidence_score": score, "claims": results}


class EchoAgent(Agent):
    """Trivial agent returning its payload — used by tests and examples."""

    name = "echo"

    def handle(self, state: Any, payload: Any) -> Any:
        return payload
