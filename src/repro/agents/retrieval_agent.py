"""Retriever agent: delegation-based retrieval (paper §3.3).

DELEGATE's examples include "a coder, retriever, or downstream service".
:class:`RetrieverAgent` wraps the BM25 retrieval stack as a delegation
target: the payload is a natural-language request (often a refinable
prompt from P), and the agent returns ranked snippets plus its own
relevance signal, which it writes into M for CHECK conditions — e.g.
"if the retriever's top score is weak, refine the retrieval prompt".
"""

from __future__ import annotations

from typing import Any

from repro.agents.base import Agent
from repro.retrieval.index import InvertedIndex

__all__ = ["RetrieverAgent"]


class RetrieverAgent(Agent):
    """Answers retrieval requests over an inverted index."""

    name = "retriever"

    def __init__(self, index: InvertedIndex, *, top_k: int = 3) -> None:
        self.index = index
        self.top_k = top_k

    def handle(self, state: Any, payload: Any) -> dict[str, Any]:
        """Search for ``payload`` (a query string); returns ranked snippets.

        The result carries ``snippets`` (texts, best first), per-snippet
        ``scores``, and ``top_score``; ``retrieval_score`` is also written
        to M so pipelines can CHECK it.
        """
        query = str(payload)
        ranked = self.index.search(query, top_k=self.top_k)
        snippets = [document.text for document, __ in ranked]
        scores = [round(score, 4) for __, score in ranked]
        top_score = scores[0] if scores else 0.0
        state.metadata.set("retrieval_score", top_score)
        return {
            "query": query,
            "snippets": snippets,
            "scores": scores,
            "top_score": top_score,
        }
