"""Deterministic fault injection for the simulated backend.

A :class:`FaultPlan` decides, per generation call, whether the call
fails and how.  The decision is a pure function of ``(seed, profile,
prompt digest, attempt index)`` — a stable hash drives a uniform draw
that is compared against the configured per-channel rates — so two runs
with the same seed inject *exactly* the same faults, regardless of
thread timing or lane assignment.  Retrying a prompt advances its
attempt index (tracked per ``(profile, prompt digest)`` under a lock),
so each retry gets a fresh, still-deterministic draw.

Fault channels (mutually exclusive per call, drawn from one uniform
sample against cumulative rates):

- ``transient``  — generic retryable backend failure; charges only the
  call overhead before raising :class:`~repro.errors.TransientModelError`.
- ``rate_limit`` — load shedding; raises
  :class:`~repro.errors.RateLimitError` carrying ``retry_after``.
- ``timeout``    — the call burns an inflated latency before raising
  :class:`~repro.errors.TimeoutError`.
- ``malformed``  — the task runs but the generation is truncated;
  raises :class:`~repro.errors.MalformedOutputError` with the partial text.

A separate ``latency_spike`` channel (drawn independently, first
attempt only — modelling slow-start/cold-path behaviour) does not fail
the call: it multiplies the modelled latency by ``spike_factor``.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

__all__ = ["FaultSpec", "FaultDecision", "FaultPlan", "unit_draw"]

#: the failure channels a plan can inject, in cumulative-draw order.
FAULT_CHANNELS = ("transient", "rate_limit", "timeout", "malformed")


def unit_draw(*parts: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` from a stable hash.

    Used for fault decisions and retry jitter alike: no RNG object, no
    shared mutable state — identical inputs give identical draws on any
    platform or thread.
    """
    digest = hashlib.sha256(
        ":".join(str(part) for part in parts).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class FaultSpec:
    """Per-model fault rates and shape parameters.

    Rates are per-call probabilities; the four failure channels must sum
    to at most 1.  All default to 0, so ``FaultSpec()`` injects nothing.
    """

    transient_rate: float = 0.0
    rate_limit_rate: float = 0.0
    timeout_rate: float = 0.0
    malformed_rate: float = 0.0
    #: probability of a slow-start latency spike on a call's first attempt.
    spike_rate: float = 0.0
    #: latency multiplier applied when a spike fires.
    spike_factor: float = 3.0
    #: ``retry_after`` hint carried by injected rate-limit errors (seconds).
    retry_after_s: float = 1.0
    #: how much of the full modelled latency a timed-out call burns.
    timeout_charge_factor: float = 2.0
    #: fraction of the output tokens a malformed generation keeps.
    truncation_fraction: float = 0.35

    def __post_init__(self) -> None:
        for name in (
            "transient_rate", "rate_limit_rate", "timeout_rate",
            "malformed_rate", "spike_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]: {value}")
        if self.failure_rate > 1.0:
            raise ValueError(
                f"failure-channel rates sum to {self.failure_rate} > 1"
            )
        if not 0.0 < self.truncation_fraction <= 1.0:
            raise ValueError(
                f"truncation_fraction must be in (0, 1]: {self.truncation_fraction}"
            )

    @property
    def failure_rate(self) -> float:
        """Total per-call probability of any failure channel firing."""
        return (
            self.transient_rate
            + self.rate_limit_rate
            + self.timeout_rate
            + self.malformed_rate
        )


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one call."""

    #: failure channel, or None for a clean call.
    kind: str | None
    #: 0-based attempt index of this call for its (profile, prompt) pair.
    attempt: int
    #: latency multiplier (1.0 = no spike).
    spike_factor: float = 1.0
    #: the spec the decision was drawn from (shape parameters).
    spec: FaultSpec = field(default_factory=FaultSpec)


class FaultPlan:
    """Seeded, deterministic per-call fault decisions.

    Args:
        seed: drives every draw; same seed → same injected faults.
        default: the :class:`FaultSpec` applied to every model.
        per_model: optional profile-name → spec overrides.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        default: FaultSpec | None = None,
        per_model: dict[str, FaultSpec] | None = None,
    ) -> None:
        self.seed = seed
        self.default = default if default is not None else FaultSpec()
        self.per_model = dict(per_model or {})
        self._lock = threading.Lock()
        self._attempts: dict[tuple[str, str], int] = {}
        self._injected: dict[str, int] = {}
        self._decisions = 0

    def spec_for(self, model: str) -> FaultSpec:
        """The effective spec for one model profile."""
        return self.per_model.get(model, self.default)

    def decide(self, model: str, prompt: str) -> FaultDecision:
        """Decide the fate of the next call of ``prompt`` on ``model``.

        Increments the (model, prompt)-scoped attempt counter, so a
        retry of the same prompt draws independently from its previous
        attempt — while staying a pure function of (seed, model, prompt,
        attempt index).
        """
        spec = self.spec_for(model)
        digest = hashlib.sha256(prompt.encode("utf-8")).hexdigest()[:24]
        with self._lock:
            key = (model, digest)
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            self._decisions += 1

        kind: str | None = None
        draw = unit_draw(self.seed, "fault", model, digest, attempt)
        cumulative = 0.0
        for channel in FAULT_CHANNELS:
            cumulative += getattr(spec, f"{channel}_rate")
            if draw < cumulative:
                kind = channel
                break

        spike = 1.0
        if (
            kind is None
            and attempt == 0
            and spec.spike_rate > 0.0
            and unit_draw(self.seed, "spike", model, digest) < spec.spike_rate
        ):
            spike = spec.spike_factor

        if kind is not None or spike != 1.0:
            with self._lock:
                label = kind if kind is not None else "latency_spike"
                self._injected[label] = self._injected.get(label, 0) + 1
        return FaultDecision(
            kind=kind, attempt=attempt, spike_factor=spike, spec=spec
        )

    def reset(self) -> None:
        """Forget attempt counters and injection tallies (fresh run)."""
        with self._lock:
            self._attempts.clear()
            self._injected.clear()
            self._decisions = 0

    def snapshot(self) -> dict[str, object]:
        """Point-in-time injection accounting for gauges and reports."""
        with self._lock:
            injected = dict(sorted(self._injected.items()))
            return {
                "seed": self.seed,
                "decisions": self._decisions,
                "injected": injected,
                "injected_total": sum(injected.values()),
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, "
            f"failure_rate={self.default.failure_rate:.3f})"
        )
