"""Fault injection and resilience policies (retry, breakers, fallback).

The package has two halves:

- :mod:`repro.resilience.faults` — a seeded, deterministic
  :class:`FaultPlan` that makes the simulated backend *fail* the way
  real LLM serving fails (transient errors, rate limits, timeouts,
  truncated generations, slow-start latency spikes), raising the typed
  taxonomy under :class:`~repro.errors.SpearError`;
- :mod:`repro.resilience.policies` / :mod:`repro.resilience.runtime` —
  the declarative policies (:class:`RetryPolicy`, :class:`BreakerPolicy`
  + :class:`CircuitBreaker`, :class:`FallbackChain`) and the
  :class:`ResilienceRuntime` that wires them around every GEN call.

Everything runs on the virtual clock and the seeded stable hash, so a
faulty run is exactly reproducible — and with injection disabled, a
resilience-equipped run is byte-identical to a vanilla one.
"""

from repro.resilience.faults import FaultDecision, FaultPlan, FaultSpec, unit_draw
from repro.resilience.policies import (
    BreakerPolicy,
    CircuitBreaker,
    FallbackChain,
    ModelFallback,
    RetryPolicy,
    ShedPolicy,
    StaticFallback,
)
from repro.resilience.runtime import ResilienceRuntime

__all__ = [
    "FaultSpec",
    "FaultDecision",
    "FaultPlan",
    "unit_draw",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "ModelFallback",
    "StaticFallback",
    "FallbackChain",
    "ShedPolicy",
    "ResilienceRuntime",
]
