"""Resilience policies: declarative, loggable, replayable control data.

Following the paper's stance that adaptation signals belong in inspectable
first-class state (§3.1) — and "Structured Prompt Language"'s argument for
declarative control policies over ad-hoc try/except — the retry, breaker,
and fallback behaviours are plain dataclasses.  They carry no clocks and
no RNG: time comes from the caller's virtual clock, jitter from the
seeded stable hash of :func:`repro.resilience.faults.unit_draw`, so a
policy's effect is fully determined by its inputs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SpearError

__all__ = [
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "ModelFallback",
    "StaticFallback",
    "FallbackChain",
    "ShedPolicy",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter, on the virtual clock.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    call plus up to two retries.  The delay before retry ``n`` (0-based)
    is ``base_delay_s * multiplier**n`` capped at ``max_delay_s``, spread
    by ``±jitter`` (a fraction) using a seeded stable-hash draw, and never
    less than a rate-limit error's ``retry_after`` hint.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.1
    #: per-attempt deadline in simulated seconds; None disables the check.
    attempt_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1: {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {self.jitter}")

    def retryable(self, error: BaseException) -> bool:
        """Whether ``error`` is worth retrying under this policy."""
        return bool(getattr(error, "retryable", False))

    def delay_for(
        self,
        attempt: int,
        *,
        draw: float = 0.5,
        retry_after: float | None = None,
    ) -> float:
        """Backoff before retrying after failed attempt ``attempt`` (0-based).

        ``draw`` is a uniform sample in [0, 1) supplying the jitter
        deterministically (callers derive it from the seeded hash).
        """
        base = min(
            self.base_delay_s * (self.multiplier ** attempt), self.max_delay_s
        )
        jittered = base * (1.0 + self.jitter * (2.0 * draw - 1.0))
        if retry_after is not None:
            jittered = max(jittered, retry_after)
        return max(jittered, 0.0)


@dataclass(frozen=True)
class BreakerPolicy:
    """Parameters of a per-model circuit breaker."""

    #: consecutive failures that trip the breaker open.
    failure_threshold: int = 5
    #: simulated seconds the breaker stays open before probing.
    cooldown_s: float = 30.0
    #: calls admitted in half-open state before a verdict.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0: {self.cooldown_s}")
        if self.half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1: {self.half_open_probes}"
            )


@dataclass(frozen=True)
class ShedPolicy:
    """Admission control for the multi-tenant serving layer.

    A tenant whose pending-request queue is full is *shed*: the submit
    call fails fast with :class:`~repro.errors.RateLimitError` carrying
    ``retry_after_s``, instead of queueing unboundedly (the serving
    analogue of the breaker's fail-fast stance).  ``breaker`` optionally
    wraps admission in a :class:`CircuitBreaker` so a tenant that keeps
    hitting the limit is shed outright for ``cooldown_s`` without even
    checking the queue.
    """

    #: pending requests a tenant may hold before submissions shed.
    queue_limit: int = 16
    #: hint returned to shed callers (simulated seconds).
    retry_after_s: float = 1.0
    #: optional breaker-style shedding on repeated overload; None means
    #: every submit checks only the queue depth.
    breaker: "BreakerPolicy | None" = None

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1: {self.queue_limit}")
        if self.retry_after_s < 0:
            raise ValueError(
                f"retry_after_s must be >= 0: {self.retry_after_s}"
            )


class CircuitBreaker:
    """Closed → open → half-open breaker on the virtual clock.

    Thread-safe: parallel lanes share one breaker per model profile, so
    a model melting down in one lane stops the others from hammering it.
    All time comes from the caller (``now``), never the wall clock.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, policy: BreakerPolicy | None = None) -> None:
        self.policy = policy if policy is not None else BreakerPolicy()
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probes_in_flight = 0
        self.transitions = 0

    def _state_locked(self, now: float) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if now >= self._opened_at + self.policy.cooldown_s:
            return self.HALF_OPEN
        return self.OPEN

    def state(self, now: float) -> str:
        """The breaker state as of virtual time ``now``."""
        with self._lock:
            return self._state_locked(now)

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at time ``now``.

        In half-open state at most ``half_open_probes`` concurrent calls
        are admitted; their outcomes close or re-open the circuit.
        """
        with self._lock:
            state = self._state_locked(now)
            if state == self.CLOSED:
                return True
            if state == self.OPEN:
                return False
            if self._probes_in_flight >= self.policy.half_open_probes:
                return False
            self._probes_in_flight += 1
            return True

    def record_success(self, now: float) -> str:
        """Fold in a successful call; returns the resulting state."""
        with self._lock:
            was_open = self._opened_at is not None
            self._failures = 0
            self._opened_at = None
            self._probes_in_flight = 0
            if was_open:
                self.transitions += 1
            return self.CLOSED

    def record_failure(self, now: float) -> str:
        """Fold in a failed call; returns the resulting state."""
        with self._lock:
            state = self._state_locked(now)
            if state == self.HALF_OPEN:
                # The probe failed: re-open and restart the cooldown.
                self._opened_at = now
                self._probes_in_flight = 0
                self.transitions += 1
                return self.OPEN
            self._failures += 1
            if (
                self._opened_at is None
                and self._failures >= self.policy.failure_threshold
            ):
                self._opened_at = now
                self.transitions += 1
                return self.OPEN
            return self._state_locked(now)

    def snapshot(self, now: float) -> dict[str, Any]:
        """Point-in-time breaker accounting."""
        with self._lock:
            return {
                "state": self._state_locked(now),
                "consecutive_failures": self._failures,
                "opened_at": self._opened_at,
                "transitions": self.transitions,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker(failures={self._failures}, opened_at={self._opened_at})"


@dataclass(frozen=True)
class ModelFallback:
    """Degrade to a cheaper model profile (e.g. ``"gpt-4o-mini"``).

    The fallback backend is built lazily by the resilience runtime,
    grounded on the same corpora as the primary, and — modelling a
    separate, lightly-loaded tier — does not share the primary's fault
    plan.
    """

    profile: str


@dataclass(frozen=True)
class StaticFallback:
    """Degrade to a precomputed answer (a cached or VIEW-summarized text).

    ``text`` is either the literal degraded answer or a callable
    ``(state, prompt) -> str`` (e.g. reading a summary out of C).
    """

    text: "str | Callable[[Any, str], str]"
    confidence: float = 0.2
    #: simulated seconds serving the canned answer costs.
    latency_s: float = 0.001

    def resolve(self, state: Any, prompt: str) -> str:
        """The degraded answer text for this call."""
        if callable(self.text):
            return self.text(state, prompt)
        return self.text


@dataclass(frozen=True)
class FallbackChain:
    """Ordered degradation targets tried after the primary is exhausted.

    Each target is a :class:`ModelFallback` or :class:`StaticFallback`;
    the first to produce a result wins and the run is marked degraded
    (``M["degraded"] = True``).
    """

    targets: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "targets", tuple(self.targets))
        for target in self.targets:
            if not isinstance(target, (ModelFallback, StaticFallback)):
                raise SpearError(
                    "FallbackChain targets must be ModelFallback or "
                    f"StaticFallback, got {type(target).__name__}"
                )

    def __bool__(self) -> bool:
        return bool(self.targets)

    def __len__(self) -> int:
        return len(self.targets)
