"""The resilience runtime: retries, breakers, and fallback around GEN.

:class:`ResilienceRuntime` is attached to an execution state
(``state.resilience``, usually via
:class:`~repro.runtime.options.RuntimeOptions`) and interposes on every
``GEN`` generation call.  It owns:

- the :class:`~repro.resilience.policies.RetryPolicy` (backoff charged
  to the *virtual* clock, jitter from the seeded stable hash);
- one :class:`~repro.resilience.policies.CircuitBreaker` per model
  profile, created lazily and shared across parallel lanes (forked
  states carry the same runtime object);
- the :class:`~repro.resilience.policies.FallbackChain` of degradation
  targets, tried in order once the primary tier is exhausted.

Every failure, retry, breaker transition, and fallback emits a
structured event (``FAULT`` / ``RETRY`` / ``BREAKER`` / ``FALLBACK``)
on the state's log, feeding the obs metric families and the
``resilience`` section of :class:`~repro.obs.report.RunReport`.

Byte-identity guarantee: when no fault fires, a call takes the exact
code path a resilience-free run takes — one ``model.generate`` — with
no extra events, metadata writes, or clock charges.  Attaching a
runtime while injection is disabled therefore leaves outputs
byte-identical to the vanilla baseline (the fault-tolerance benchmark
asserts this).
"""

from __future__ import annotations

import hashlib
import threading
from typing import TYPE_CHECKING, Any

from repro.errors import CircuitOpenError, SpearError
from repro.errors import TimeoutError as SpearTimeoutError
from repro.resilience.faults import unit_draw
from repro.resilience.policies import (
    BreakerPolicy,
    CircuitBreaker,
    FallbackChain,
    RetryPolicy,
    StaticFallback,
)
from repro.runtime.events import EventKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.state import ExecutionState
    from repro.llm.model import GenerationResult

__all__ = ["ResilienceRuntime"]


def _model_label(model: Any) -> str:
    profile = getattr(model, "profile", None)
    return getattr(profile, "name", None) or type(model).__name__


class ResilienceRuntime:
    """Retry/breaker/fallback orchestration for generation calls.

    Args:
        retry: retry policy for the primary and model-fallback tiers;
            None means a single attempt per tier.
        breaker: breaker parameters; None disables circuit breaking.
        fallback: degradation targets tried after the primary tier.
        seed: drives deterministic backoff jitter.
    """

    def __init__(
        self,
        *,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = None,
        fallback: FallbackChain | None = None,
        seed: int = 0,
    ) -> None:
        self.retry = retry
        self.breaker_policy = breaker
        self.fallback = fallback if fallback is not None else FallbackChain()
        self.seed = seed
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._fallback_models: dict[str, Any] = {}

    # -- shared policy objects ------------------------------------------------

    def breaker_for(self, model: str) -> CircuitBreaker | None:
        """The (lazily created) breaker guarding ``model``; shared by lanes."""
        if self.breaker_policy is None:
            return None
        with self._lock:
            breaker = self._breakers.get(model)
            if breaker is None:
                breaker = CircuitBreaker(self.breaker_policy)
                self._breakers[model] = breaker
            return breaker

    def breaker_snapshots(self, now: float) -> dict[str, dict[str, Any]]:
        """Per-model breaker states for gauges and reports."""
        with self._lock:
            breakers = dict(self._breakers)
        return {name: breaker.snapshot(now) for name, breaker in breakers.items()}

    def _fallback_model(self, profile: str, primary: Any) -> Any:
        """Build (once) the degraded-tier backend for ``profile``.

        Grounded on the primary's corpora so outputs stay deterministic;
        runs with its own throwaway clock (latency is charged to the
        calling state's clock explicitly), a cold prefix cache, and no
        fault plan — it models a separate, lightly-loaded tier.
        """
        with self._lock:
            model = self._fallback_models.get(profile)
            if model is not None:
                return model
            from repro.llm.model import SimulatedLLM

            model = SimulatedLLM(profile, enable_prefix_cache=False)
            engine = getattr(primary, "engine", None)
            if engine is not None:
                tweets = getattr(engine, "_tweets", None)
                if tweets is not None:
                    model.bind_tweets(tweets)
                clinical = getattr(engine, "_clinical", None)
                if clinical is not None:
                    model.bind_clinical(clinical)
            self._fallback_models[profile] = model
            return model

    # -- the generate path ----------------------------------------------------

    def generate(
        self,
        state: "ExecutionState",
        prompt: str,
        *,
        max_tokens: int | None = None,
    ) -> "GenerationResult":
        """Run one generation call under the configured policies.

        Tries the primary model (``state.model``) with retries and its
        breaker, then each fallback target in order.  Raises the last
        error when every tier is exhausted.
        """
        primary = state.model
        digest = hashlib.sha256(prompt.encode("utf-8")).hexdigest()[:24]
        last_error: BaseException | None = None

        result = self._run_model_tier(
            state, primary, _model_label(primary), prompt, digest,
            max_tokens=max_tokens, foreign_clock=False,
        )
        if isinstance(result, BaseException):
            last_error = result
        else:
            return result

        for target in self.fallback.targets:
            if isinstance(target, StaticFallback):
                return self._serve_static(
                    state, target, prompt, failed=last_error
                )
            model = self._fallback_model(target.profile, primary)
            outcome = self._run_model_tier(
                state, model, target.profile, prompt, digest,
                max_tokens=max_tokens, foreign_clock=True,
            )
            if isinstance(outcome, BaseException):
                last_error = outcome
                continue
            self._mark_degraded(
                state, target.profile, prompt, failed=last_error
            )
            return outcome

        assert last_error is not None
        raise last_error

    def _run_model_tier(
        self,
        state: "ExecutionState",
        model: Any,
        label: str,
        prompt: str,
        digest: str,
        *,
        max_tokens: int | None,
        foreign_clock: bool,
    ) -> "GenerationResult | BaseException":
        """One tier's attempt loop; returns a result or the last error.

        ``foreign_clock=True`` marks a fallback backend with its own
        private clock: its call latency is charged to the state's clock
        explicitly (the primary charges the state's clock itself).
        """
        policy = self.retry
        attempts = policy.max_attempts if policy is not None else 1
        breaker = self.breaker_for(label)
        operator = f'MODEL["{label}"]'
        last_error: BaseException | None = None

        for attempt in range(attempts):
            now = state.clock.now
            if breaker is not None and not breaker.allow(now):
                snapshot = breaker.snapshot(now)
                opened_at = snapshot["opened_at"]
                until = (
                    opened_at + self.breaker_policy.cooldown_s
                    if opened_at is not None
                    else None
                )
                last_error = CircuitOpenError(label, until=until)
                state.events.emit(
                    EventKind.BREAKER, operator, at=now,
                    model=label, state="open", action="rejected",
                    attempt=attempt,
                )
                if not self._backoff(
                    state, policy, label, digest, attempt, attempts,
                    last_error, operator,
                ):
                    break
                continue

            started = state.clock.now
            try:
                result = model.generate(prompt, max_tokens=max_tokens)
            except SpearError as error:
                last_error = error
                self._note_failure(
                    state, breaker, label, operator, error, attempt
                )
                if not (
                    policy is not None
                    and policy.retryable(error)
                    and self._backoff(
                        state, policy, label, digest, attempt, attempts,
                        error, operator,
                    )
                ):
                    break
                continue

            if foreign_clock:
                # A fallback backend advanced its own private clock; the
                # run's time moves here instead.
                state.clock.advance(result.latency.total)
            elapsed = (
                result.latency.total
                if foreign_clock
                else state.clock.now - started
            )
            if (
                policy is not None
                and policy.attempt_timeout_s is not None
                and elapsed > policy.attempt_timeout_s
            ):
                error = SpearTimeoutError(
                    f"attempt took {elapsed:.2f}s > "
                    f"{policy.attempt_timeout_s:.2f}s deadline",
                    elapsed=elapsed,
                    deadline=policy.attempt_timeout_s,
                    attempt=attempt,
                )
                last_error = error
                self._note_failure(
                    state, breaker, label, operator, error, attempt
                )
                if not self._backoff(
                    state, policy, label, digest, attempt, attempts,
                    error, operator,
                ):
                    break
                continue

            if breaker is not None:
                before = breaker.state(state.clock.now)
                after = breaker.record_success(state.clock.now)
                if after != before:
                    state.events.emit(
                        EventKind.BREAKER, operator, at=state.clock.now,
                        model=label, state=after, action="closed",
                    )
            return result

        assert last_error is not None
        return last_error

    def _backoff(
        self,
        state: "ExecutionState",
        policy: RetryPolicy | None,
        label: str,
        digest: str,
        attempt: int,
        attempts: int,
        error: BaseException,
        operator: str,
    ) -> bool:
        """Charge the backoff delay and emit RETRY; False = exhausted."""
        if policy is None or attempt + 1 >= attempts:
            return False
        delay = policy.delay_for(
            attempt,
            draw=unit_draw(self.seed, "jitter", label, digest, attempt),
            retry_after=getattr(error, "retry_after", None),
        )
        state.events.emit(
            EventKind.RETRY, operator, at=state.clock.now,
            model=label, attempt=attempt + 1, delay=delay,
            error=type(error).__name__,
        )
        state.clock.advance(delay)
        state.metadata.increment("resilience_retries")
        return True

    def _note_failure(
        self,
        state: "ExecutionState",
        breaker: CircuitBreaker | None,
        label: str,
        operator: str,
        error: BaseException,
        attempt: int,
    ) -> None:
        """Emit the FAULT event and feed the breaker."""
        now = state.clock.now
        # record(): the payload's "kind" key collides with emit()'s own
        # parameter of the same name.
        state.events.record(
            EventKind.FAULT, operator, at=now,
            payload={
                "model": label,
                "kind": getattr(error, "fault_kind", None) or "error",
                "injected": bool(getattr(error, "injected", False)),
                "error": type(error).__name__,
                "message": str(error),
                "attempt": attempt,
            },
        )
        if breaker is not None:
            before = breaker.state(now)
            after = breaker.record_failure(now)
            if after != before:
                state.events.emit(
                    EventKind.BREAKER, operator, at=now,
                    model=label, state=after, action="tripped",
                    consecutive_failures=(
                        breaker.snapshot(now)["consecutive_failures"]
                    ),
                )

    # -- degraded serving -----------------------------------------------------

    def _serve_static(
        self,
        state: "ExecutionState",
        target: StaticFallback,
        prompt: str,
        *,
        failed: BaseException | None,
    ) -> "GenerationResult":
        """Serve a canned/degraded answer as a synthetic GenerationResult."""
        from repro.llm.latency import LatencyBreakdown
        from repro.llm.model import GenerationResult

        text = target.resolve(state, prompt)
        state.clock.advance(target.latency_s)
        result = GenerationResult(
            text=text,
            task="degraded",
            prompt_tokens=0,
            cached_tokens=0,
            output_tokens=0,
            latency=LatencyBreakdown(
                overhead=target.latency_s,
                prefill=0.0,
                cached_prefill=0.0,
                decode=0.0,
            ),
            confidence=target.confidence,
            extras={"degraded": True},
        )
        self._mark_degraded(state, "static", prompt, failed=failed)
        return result

    def _mark_degraded(
        self,
        state: "ExecutionState",
        target: str,
        prompt: str,
        *,
        failed: BaseException | None,
    ) -> None:
        state.metadata["degraded"] = True
        state.metadata["degraded_target"] = target
        state.metadata.increment("degraded_runs")
        state.events.emit(
            EventKind.FALLBACK, f'MODEL["{target}"]', at=state.clock.now,
            target=target,
            reason=type(failed).__name__ if failed is not None else "?",
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResilienceRuntime(retry={self.retry!r}, "
            f"breaker={self.breaker_policy!r}, "
            f"fallback_targets={len(self.fallback)})"
        )
