"""The stable embedding surface: ``import repro.api as spear``.

Everything an embedder needs, re-exported from one module with a curated
``__all__`` — so applications stop importing from deep private paths
(``repro.runtime.parallel``, ``repro.llm.model``, …) that are free to
move between releases.  The facade is the compatibility contract:

- the prompt algebra — :class:`Pipeline`, the core and derived
  operators, :class:`ExecutionState` and its ``(P, C, M)`` stores;
- the runners — :class:`Executor`, :class:`ParallelBatchRunner`,
  :class:`RefinementLoop`, configured via :class:`RuntimeOptions`;
- the serving substrate — :class:`SimulatedLLM`, :class:`ModelProfile`,
  :class:`ResultCache`;
- the serving layer — :class:`SpearServer` with typed
  :class:`ServeRequest` / :class:`ServeResponse` messages,
  :class:`TenantConfig` per-tenant sessions, :class:`SchedulerConfig` /
  :class:`PriorityClass` admission policy, and :class:`ShedPolicy`
  load shedding;
- the resilience layer — :class:`FaultPlan`, :class:`RetryPolicy`,
  :class:`BreakerPolicy`, :class:`CircuitBreaker`,
    :class:`FallbackChain` + targets, :class:`ResilienceRuntime`;
- observability — :class:`ObsCollector`, :class:`MetricsRegistry`,
  :func:`build_run_report`, plus the cross-run layer: the persistent
  :class:`Ledger` / :class:`RunLedger`, :class:`SeriesRecorder` time
  series, and :func:`build_attribution` per-prompt-version costing;
- static analysis — :func:`check_pipeline`, :func:`check_program`,
  :func:`check_state`, :class:`Diagnostic`, :class:`CheckResult`,
  :class:`Severity` (and the strict-mode :class:`SpearValidationError`).

Importing this module (and touching every ``__all__`` name) emits no
DeprecationWarning: the facade never routes through deprecated keywords,
and CI imports it under ``-W error::DeprecationWarning`` to keep it that
way.

Quickstart::

    import repro.api as spear

    llm = spear.SimulatedLLM()
    executor = spear.Executor(options=spear.RuntimeOptions(model=llm))
    result = executor.generate_once(
        "hello", "Summarize the tweet in at most 30 words.\\nTweet:\\ngreat day"
    )
    print(result.output("answer"))
"""

from repro.analysis import (
    CheckResult,
    Diagnostic,
    Severity,
    check_pipeline,
    check_program,
    check_state,
)
from repro.core import (
    CHECK,
    DELEGATE,
    DIFF,
    EXPAND,
    GEN,
    MAP,
    MERGE,
    REF,
    RET,
    RETRY,
    SWITCH,
    VIEW,
    Condition,
    Context,
    ExecutionState,
    Metadata,
    Operator,
    Pipeline,
    PromptEntry,
    PromptStore,
    RefAction,
    RefinementMode,
    ViewRegistry,
)
from repro.errors import (
    CircuitOpenError,
    MalformedOutputError,
    ModelError,
    RateLimitError,
    SpearError,
    SpearValidationError,
    TransientModelError,
)
from repro.errors import TimeoutError  # noqa: A004 - the taxonomy's name
from repro.llm import (
    GenerationResult,
    ModelProfile,
    SimulatedLLM,
    Tokenizer,
    get_profile,
)
from repro.obs import (
    AttributionReport,
    Ledger,
    LedgerRun,
    MetricsRegistry,
    ObsCollector,
    Pricing,
    RunLedger,
    RunReport,
    SeriesRecorder,
    build_attribution,
    build_run_report,
)
from repro.resilience import (
    BreakerPolicy,
    CircuitBreaker,
    FallbackChain,
    FaultPlan,
    FaultSpec,
    ModelFallback,
    ResilienceRuntime,
    RetryPolicy,
    ShedPolicy,
    StaticFallback,
)
from repro.runtime import (
    BatchRunner,
    Executor,
    ParallelBatchRunner,
    PriorityClass,
    RefinementLoop,
    ResultCache,
    RunResult,
    RuntimeOptions,
    SchedulerConfig,
    VirtualClock,
)
from repro.serve import (
    ServeRequest,
    ServeResponse,
    SpearServer,
    TenantConfig,
)

__all__ = [
    # algebra
    "Pipeline",
    "Operator",
    "Condition",
    "GEN",
    "RET",
    "REF",
    "CHECK",
    "MERGE",
    "DELEGATE",
    "EXPAND",
    "RETRY",
    "MAP",
    "SWITCH",
    "VIEW",
    "DIFF",
    # state
    "ExecutionState",
    "PromptStore",
    "PromptEntry",
    "Context",
    "Metadata",
    "RefAction",
    "RefinementMode",
    "ViewRegistry",
    # runners
    "Executor",
    "BatchRunner",
    "ParallelBatchRunner",
    "RefinementLoop",
    "RuntimeOptions",
    "RunResult",
    "ResultCache",
    "VirtualClock",
    "PriorityClass",
    "SchedulerConfig",
    # serving layer
    "SpearServer",
    "ServeRequest",
    "ServeResponse",
    "TenantConfig",
    "ShedPolicy",
    # serving substrate
    "SimulatedLLM",
    "GenerationResult",
    "ModelProfile",
    "get_profile",
    "Tokenizer",
    # resilience
    "FaultSpec",
    "FaultPlan",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "ModelFallback",
    "StaticFallback",
    "FallbackChain",
    "ResilienceRuntime",
    # errors
    "SpearError",
    "SpearValidationError",
    "ModelError",
    "TransientModelError",
    "RateLimitError",
    "TimeoutError",
    "MalformedOutputError",
    "CircuitOpenError",
    # observability
    "ObsCollector",
    "MetricsRegistry",
    "RunReport",
    "build_run_report",
    "Pricing",
    "AttributionReport",
    "build_attribution",
    "Ledger",
    "LedgerRun",
    "RunLedger",
    "SeriesRecorder",
    # static analysis
    "check_pipeline",
    "check_program",
    "check_state",
    "Diagnostic",
    "CheckResult",
    "Severity",
]
