"""Path-sensitive abstract interpretation over pipeline dataflow.

The flow-insensitive :class:`~repro.analysis.dataflow._Walker` threads
one mutable abstract state through every CHECK/SWITCH arm: writes from a
then-branch leak into the else-branch, and operators inside a
statically-dead arm still contribute reads, writes, and findings — the
classic source of SPEAR111/112/121 false positives on branchy pipelines.

:class:`PathSensitiveWalker` fixes both by treating branch arms as
*paths*:

- each live arm is walked on a **fork** of the pre-branch state (no
  cross-arm leakage), with the branch condition **refined** into the
  fork (``"slot" in C`` is definitely true inside its then-arm);
- arms the constant evaluator proves dead are walked in a *dead mode*
  that still materializes their :class:`~repro.analysis.dataflow.OpNode`
  records (marked ``unreachable``, so the dead-branch SPEAR148 finding
  keeps its anchor) but rolls back every state effect and suppresses
  per-node findings;
- the post-states of all feasible paths are **joined**: a slot is
  definite after the branch only when it is definite along every path,
  prompt-text sets union under the walker's fan limit, and a pending
  (dead-write candidate) survives only when *no* path read it.

Live arms are still walked as *conditional* even when the constant
evaluator decides the branch — the "run once" idiom (``"x" not in C``
guarding its own retrieval) is statically true on the first run but
morally conditional, so arm writes never clobber pre-branch pendings.

The walker subclasses the flow-insensitive one, so every per-operator
transfer function (GEN template fingerprinting, REF text algebra, view
preview) is shared; only the branch control flow changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.dataflow import (
    _CONTEXT_ATOM,
    _TEXT_FAN_LIMIT,
    _PromptState,
    _Walker,
)
from repro.core.derived import SWITCH
from repro.core.operators import CHECK

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.dataflow import OpNode

__all__ = ["AbstractState", "PathSensitiveWalker"]


@dataclass
class AbstractState:
    """One path's snapshot of the walker's abstract store.

    ``dead_write_mark``/``fusion_mark`` record accumulator lengths so a
    dead arm's rollback can also discard any dead-write or fusion-pair
    evidence it produced (live paths keep theirs).
    """

    prompts: dict[str, _PromptState]
    context: dict[str, str]
    metadata: dict[str, str]
    pending_writes: dict[str, int]
    havoc: bool
    dead_write_mark: int
    fusion_mark: int


def _copy_prompt(info: _PromptState) -> _PromptState:
    copied = _PromptState(
        info.texts,
        definite=info.definite,
        initial=info.initial,
        params=info.params,
        spill=info.spill,
    )
    return copied


class PathSensitiveWalker(_Walker):
    """A :class:`_Walker` with forked, joined, dead-arm-aware branches."""

    # -- state snapshots -----------------------------------------------------

    def _snapshot(self) -> AbstractState:
        return AbstractState(
            prompts={key: _copy_prompt(info) for key, info in self.prompts.items()},
            context=dict(self.context),
            metadata=dict(self.metadata),
            pending_writes=dict(self.pending_writes),
            havoc=self.havoc,
            dead_write_mark=len(self.dead_writes),
            fusion_mark=len(self.fusion_pairs),
        )

    def _restore(self, state: AbstractState, *, rollback: bool = False) -> None:
        self.prompts = {
            key: _copy_prompt(info) for key, info in state.prompts.items()
        }
        self.context = dict(state.context)
        self.metadata = dict(state.metadata)
        self.pending_writes = dict(state.pending_writes)
        self.havoc = state.havoc
        if rollback:
            del self.dead_writes[state.dead_write_mark :]
            del self.fusion_pairs[state.fusion_mark :]

    # -- join -----------------------------------------------------------------

    def _join(self, paths: list[AbstractState]) -> AbstractState:
        """The least upper bound of the feasible paths' post-states."""
        if len(paths) == 1:
            return paths[0]
        first = paths[0]
        context: dict[str, str] = {}
        for slot in {slot for path in paths for slot in path.context}:
            origins = [path.context.get(slot) for path in paths]
            context[slot] = (
                "definite"
                if all(origin == "definite" for origin in origins)
                else "maybe"
            )
        metadata: dict[str, str] = {}
        for signal in {sig for path in paths for sig in path.metadata}:
            origins = [path.metadata.get(signal) for path in paths]
            metadata[signal] = (
                "definite"
                if all(origin == "definite" for origin in origins)
                else "maybe"
            )
        prompts: dict[str, _PromptState] = {}
        for key in {key for path in paths for key in path.prompts}:
            infos = [path.prompts.get(key) for path in paths]
            present = [info for info in infos if info is not None]
            params = frozenset().union(*(info.params for info in present))
            spill = frozenset().union(*(info.spill for info in present))
            texts: frozenset[str] | None
            if any(info.texts is None for info in present):
                # Losing the exact texts must not lose their reads.
                known = frozenset().union(
                    *(info.texts or frozenset() for info in present)
                )
                if known:
                    spill = spill | self._spill_roots(known, params)
                texts = None
            else:
                texts = frozenset().union(*(info.texts for info in present))
                if len(texts) > _TEXT_FAN_LIMIT:
                    spill = spill | self._spill_roots(texts, params)
                    texts = None
            prompts[key] = _PromptState(
                texts,
                definite=(
                    len(present) == len(paths)
                    and all(info.definite for info in present)
                ),
                initial=all(info.initial for info in present),
                params=params,
                spill=spill,
            )
        pending = {
            slot: index
            for slot, index in first.pending_writes.items()
            if all(path.pending_writes.get(slot) == index for path in paths)
        }
        return AbstractState(
            prompts=prompts,
            context=context,
            metadata=metadata,
            pending_writes=pending,
            havoc=any(path.havoc for path in paths),
            dead_write_mark=len(self.dead_writes),
            fusion_mark=len(self.fusion_pairs),
        )

    # -- condition refinement --------------------------------------------------

    def _refine_condition(self, text: str, outcome: bool) -> None:
        """Assume a single-atom condition's outcome into the current path.

        Only context-presence atoms refine our lattice (metadata atoms
        compare values we do not track).  Inside the arm where
        ``"slot" in C`` held, the slot is definitely bound; where it
        failed, the slot is definitely absent.
        """
        match = _CONTEXT_ATOM.fullmatch(text.strip())
        if match is None:
            return
        present = outcome != bool(match.group("negated"))
        if present:
            self.context[match.group("key")] = "definite"
        else:
            self.context.pop(match.group("key"), None)

    # -- dead arms -------------------------------------------------------------

    def _walk_dead(self, operator, *, repeated: bool, path) -> None:
        """Materialize an unreachable arm's nodes without any state effect."""
        base = self._snapshot()
        self._dead_depth += 1
        try:
            self.walk(operator, conditional=True, repeated=repeated, path=path)
        finally:
            self._dead_depth -= 1
            self._restore(base, rollback=True)

    # -- branch walkers ---------------------------------------------------------

    def _walk_check(self, op: CHECK, conditional, repeated, path) -> "OpNode":
        node = self._node(
            op, "CHECK", conditional=conditional, repeated=repeated, path=path
        )
        node.data["condition"] = op.cond.text
        static = self._static_condition(op.cond.text)
        node.data["static"] = static
        node.data["has_then"] = op.then is not None
        node.data["has_orelse"] = op.orelse is not None
        self._read_condition(node, op.cond.text)
        self._write_metadata(node, ("checks",), conditional=conditional)
        branch_path = path + (op.label,)

        base = self._snapshot()
        outcomes: list[AbstractState] = []
        # The true path.
        if static is False:
            if op.then is not None:
                self._walk_dead(op.then, repeated=repeated, path=branch_path)
        else:
            self._refine_condition(op.cond.text, True)
            if op.then is not None:
                self.walk(
                    op.then, conditional=True, repeated=repeated, path=branch_path
                )
            outcomes.append(self._snapshot())
        # The false path.
        if static is True:
            if op.orelse is not None:
                self._walk_dead(op.orelse, repeated=repeated, path=branch_path)
        else:
            self._restore(base)
            self._refine_condition(op.cond.text, False)
            if op.orelse is not None:
                self.walk(
                    op.orelse, conditional=True, repeated=repeated, path=branch_path
                )
            outcomes.append(self._snapshot())
        self._restore(self._join(outcomes))
        return node

    def _walk_switch(self, op: SWITCH, conditional, repeated, path) -> "OpNode":
        node = self._node(
            op, "SWITCH", conditional=conditional, repeated=repeated, path=path
        )
        statics: list[bool | None] = []
        for cond, __ in op.cases:
            self._read_condition(node, cond.text)
            statics.append(self._static_condition(cond.text))
        node.data["conditions"] = [cond.text for cond, __ in op.cases]
        node.data["statics"] = statics
        node.data["has_default"] = op.default is not None
        branch_path = path + (op.label,)

        base = self._snapshot()
        outcomes: list[AbstractState] = []
        decided = False  # an earlier case statically matched (first-match)
        for (cond, case_op), static in zip(op.cases, statics):
            if decided or static is False:
                self._walk_dead(case_op, repeated=repeated, path=branch_path)
                continue
            self._restore(base)
            # Earlier undecided cases all failed along this path.
            for (earlier_cond, __), earlier in zip(op.cases, statics):
                if earlier_cond is cond:
                    break
                if earlier is not False:
                    self._refine_condition(earlier_cond.text, False)
            self._refine_condition(cond.text, True)
            self.walk(
                case_op, conditional=True, repeated=repeated, path=branch_path
            )
            outcomes.append(self._snapshot())
            if static is True:
                decided = True
        if op.default is not None:
            if decided:
                self._walk_dead(op.default, repeated=repeated, path=branch_path)
            else:
                self._restore(base)
                for (cond, __), static in zip(op.cases, statics):
                    if static is not False:
                        self._refine_condition(cond.text, False)
                self.walk(
                    op.default, conditional=True, repeated=repeated, path=branch_path
                )
                outcomes.append(self._snapshot())
        elif not decided:
            # No case matched and there is no default: plain fallthrough.
            self._restore(base)
            outcomes.append(self._snapshot())
        self._restore(self._join(outcomes))
        return node
