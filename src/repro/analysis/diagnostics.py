"""The diagnostic framework: stable codes, severities, source spans.

Every defect the static checker can report has a **stable code**
(``SPEAR101 undefined-prompt-ref``), a default :class:`Severity`, and a
catalog entry — so CI gates, editor integrations, and suppression lists
can match on codes rather than message text.  A :class:`Diagnostic` is a
plain frozen record; :class:`CheckResult` aggregates them with the same
"list the available names" convention the runtime's lookup errors use.

Codes are grouped by decade:

- ``SPEAR0xx`` — the program could not be analyzed (syntax/compile).
- ``SPEAR10x`` — prompt-store references (P).
- ``SPEAR11x`` — context dataflow (C).
- ``SPEAR12x`` — unused definitions.
- ``SPEAR13x`` — MERGE reconciliation.
- ``SPEAR14x`` — control/runtime policies (RETRY, DELEGATE, sources)
  and reachability.
- ``SPEAR15x`` — cost bounds (deadline, token fan-out, cache economics).
- ``SPEAR16x`` — concurrency interference (parallel lanes, serving).
- ``SPEAR17x`` — optimizer interplay (fusion safety).
- ``SPEAR19x`` — meta-diagnostics (suppression hygiene).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterator

__all__ = [
    "Severity",
    "SourceSpan",
    "Diagnostic",
    "CheckResult",
    "CODE_CATALOG",
]


class Severity(str, Enum):
    """How bad a diagnostic is; errors gate execution under strict mode."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"


#: code → (default severity, short name, description).  The codes are a
#: compatibility surface: never renumber; retire by leaving a tombstone.
#:
#: Tombstones — three pre-1.0 codes were re-homed when the cost (15x)
#: and interference (16x) decades landed; match on the new codes:
#:
#: - ``SPEAR151`` check-never-fires   → ``SPEAR148``
#: - ``SPEAR161`` fusable-refs        → ``SPEAR171``
#: - ``SPEAR162`` unsafe-fusion       → ``SPEAR172``
CODE_CATALOG: dict[str, tuple[Severity, str, str]] = {
    "SPEAR001": (
        Severity.ERROR,
        "syntax-error",
        "SPEAR-DL source failed to lex or parse.",
    ),
    "SPEAR002": (
        Severity.ERROR,
        "compile-error",
        "SPEAR-DL parsed but could not be lowered to operators.",
    ),
    "SPEAR101": (
        Severity.ERROR,
        "undefined-prompt-ref",
        "An operator reads a prompt key that is never created.",
    ),
    "SPEAR102": (
        Severity.WARNING,
        "unbound-template-param",
        "A template placeholder is never bound by context, params, or "
        "extra= literals; it will render literally.",
    ),
    "SPEAR103": (
        Severity.WARNING,
        "shadowed-template-param",
        "A GEN extra= literal shadows a context slot the pipeline writes.",
    ),
    "SPEAR104": (
        Severity.ERROR,
        "view-resolution-error",
        "A VIEW/SELECT_VIEW references an unknown view, misses required "
        "parameters, or hits a cyclic base chain.",
    ),
    "SPEAR111": (
        Severity.ERROR,
        "read-before-write",
        "A context slot is read before any operator (or the initial "
        "context) writes it.",
    ),
    "SPEAR112": (
        Severity.WARNING,
        "dead-write",
        "A context write is unconditionally overwritten before any read.",
    ),
    "SPEAR121": (
        Severity.WARNING,
        "unused-prompt",
        "A prompt entry is created but never read by GEN/RET/MERGE/DIFF.",
    ),
    "SPEAR122": (
        Severity.INFO,
        "unused-view",
        "A view is defined but never instantiated or extended.",
    ),
    "SPEAR131": (
        Severity.ERROR,
        "merge-unwritten-key",
        "MERGE reconciles a prompt key that is never written.",
    ),
    "SPEAR141": (
        Severity.WARNING,
        "unbounded-retry",
        "RETRY has no RetryPolicy: transient model errors are not "
        "retried and no backoff bounds the loop.",
    ),
    "SPEAR142": (
        Severity.ERROR,
        "delegate-cycle",
        "A DELEGATE payload depends on its own (or a later delegation's) "
        "output slot.",
    ),
    "SPEAR143": (
        Severity.ERROR,
        "unknown-agent",
        "DELEGATE targets an agent that is not registered.",
    ),
    "SPEAR144": (
        Severity.ERROR,
        "unknown-source",
        "RET names a retrieval source that is not registered.",
    ),
    "SPEAR145": (
        Severity.WARNING,
        "deadline-without-scheduler",
        "deadline_s (or a non-default priority) is configured but no "
        "scheduler is enabled: the deadline policy silently no-ops.",
    ),
    "SPEAR146": (
        Severity.WARNING,
        "item-first-template",
        "A GEN template places a varying placeholder before the bulk of "
        "its static text: item-first ordering defeats prefix caching "
        "because the shared trunk diverges at the first varying token.",
    ),
    "SPEAR147": (
        Severity.WARNING,
        "serve-policy-without-scheduler",
        "A serving pool carries per-request deadline_s/priority but its "
        "scheduler is disabled: requests are admission-ordered only and "
        "the per-run serving policy silently no-ops.",
    ),
    "SPEAR148": (
        Severity.WARNING,
        "check-never-fires",
        "A CHECK/SWITCH branch is statically unreachable (or the "
        "condition is statically constant).",
    ),
    "SPEAR151": (
        Severity.ERROR,
        "deadline-infeasible",
        "deadline_s is below the pipeline's statically-provable "
        "lower-bound latency: the run cannot finish in time even when "
        "every conditional branch is skipped.",
    ),
    "SPEAR152": (
        Severity.WARNING,
        "unbounded-token-fanout",
        "RETRY re-runs a token-spending body but its condition reads "
        "only signals the body never writes: the condition can never "
        "change, every permitted attempt fires, and nothing but "
        "max_retries bounds token fan-out.",
    ),
    "SPEAR153": (
        Severity.WARNING,
        "cache-defeating-refiner",
        "A refinement's dependent suffix covers >=90% of the pipeline: "
        "every refinement invalidates nearly every step, so the "
        "incremental result cache can never pay off.",
    ),
    "SPEAR161": (
        Severity.WARNING,
        "prompt-write-race",
        "Parallel lanes share one prompt store and the pipeline writes "
        "a shared prompt key: cross-item write-write race; pass "
        "isolate_prompts=True or refine a per-item key.",
    ),
    "SPEAR162": (
        Severity.WARNING,
        "refine-during-serve",
        "A served pipeline writes a prompt key in the tenant's "
        "persistent session store: refinements leak across requests, "
        "later requests observe drifted prompts, and cached results "
        "churn.",
    ),
    "SPEAR163": (
        Severity.WARNING,
        "nondeterministic-merge-order",
        "MERGE reconciles prompt keys that concurrent lanes write "
        "through a shared store: the merged content depends on lane "
        "interleaving.",
    ),
    "SPEAR171": (
        Severity.INFO,
        "fusable-refs",
        "Adjacent literal REF[APPEND]s on one key; the optimizer's "
        "fuse_refs will coalesce them.",
    ),
    "SPEAR172": (
        Severity.WARNING,
        "unsafe-fusion",
        "Adjacent REF[APPEND]s on one key that must NOT be fused "
        "(mode/condition mismatch or dynamic refiner); the planner "
        "skips them.",
    ),
    "SPEAR199": (
        Severity.WARNING,
        "useless-suppression",
        "A '# spear: ignore[...]' comment suppresses a code that never "
        "fires on its target line.",
    ),
}


@dataclass(frozen=True)
class SourceSpan:
    """A ``file:line:column`` position in SPEAR-DL source (1-based)."""

    file: str | None = None
    line: int = 0
    column: int = 0

    def render(self) -> str:
        """``file:line:col`` with unknown parts elided."""
        file = self.file or "<source>"
        if self.line <= 0:
            return file
        if self.column <= 0:
            return f"{file}:{self.line}"
        return f"{file}:{self.line}:{self.column}"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, severity, message, and location."""

    code: str
    severity: Severity
    message: str
    #: printable label of the operator the finding anchors to, if any.
    operator: str | None = None
    #: name of the pipeline the operator belongs to, if known.
    pipeline: str | None = None
    #: SPEAR-DL source position, when the pipeline was lowered from DL.
    span: SourceSpan | None = None
    #: optional machine-readable extras (slot/key names, suggestions).
    data: dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The catalog short name for this code (e.g. ``undefined-prompt-ref``)."""
        entry = CODE_CATALOG.get(self.code)
        return entry[1] if entry else self.code.lower()

    def sort_key(self) -> tuple:
        """Stable output order: ``(file, line, column, code, ...)``.

        Span-less diagnostics (pure-Python pipelines) sort by their
        pipeline/operator anchors instead, so strict-mode error text and
        ``spear check`` output never depend on dict-iteration order.
        """
        span = self.span or SourceSpan()
        return (
            span.file or "",
            span.line,
            span.column,
            self.code,
            self.pipeline or "",
            self.operator or "",
            self.message,
        )

    def render(self) -> str:
        """One human-readable line: ``file:line:col: CODE severity: message``."""
        prefix = f"{self.span.render()}: " if self.span is not None else ""
        where = f" [{self.pipeline}]" if self.pipeline else ""
        at = f" ({self.operator})" if self.operator else ""
        return (
            f"{prefix}{self.code} {self.severity.value}: "
            f"{self.message}{at}{where}"
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the ``spear check --format json`` record)."""
        record: dict[str, Any] = {
            "code": self.code,
            "name": self.name,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.operator is not None:
            record["operator"] = self.operator
        if self.pipeline is not None:
            record["pipeline"] = self.pipeline
        if self.span is not None:
            record["file"] = self.span.file
            record["line"] = self.span.line
            record["column"] = self.span.column
        if self.data:
            record["data"] = dict(self.data)
        return record


def make_diagnostic(
    code: str,
    message: str,
    *,
    severity: Severity | None = None,
    operator: str | None = None,
    pipeline: str | None = None,
    span: SourceSpan | None = None,
    **data: Any,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, defaulting severity from the catalog."""
    if code not in CODE_CATALOG:
        raise KeyError(
            f"unknown diagnostic code {code!r}; "
            f"available: {sorted(CODE_CATALOG)}"
        )
    resolved = severity if severity is not None else CODE_CATALOG[code][0]
    return Diagnostic(
        code=code,
        severity=resolved,
        message=message,
        operator=operator,
        pipeline=pipeline,
        span=span,
        data=data,
    )


class CheckResult:
    """An ordered collection of diagnostics with rollups and renderers."""

    def __init__(self, diagnostics: list[Diagnostic] | None = None) -> None:
        self.diagnostics: list[Diagnostic] = list(diagnostics or [])

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def extend(self, diagnostics: "CheckResult | list[Diagnostic]") -> None:
        """Append another result's (or list's) diagnostics."""
        self.diagnostics.extend(diagnostics)

    def sort(self) -> "CheckResult":
        """Order diagnostics by ``(file, line, column, code)``; returns self."""
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        """All diagnostics at exactly ``severity``."""
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        """The error-severity diagnostics."""
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        """The warning-severity diagnostics."""
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        """The info-severity diagnostics."""
        return self.by_severity(Severity.INFO)

    @property
    def has_errors(self) -> bool:
        """Whether any error-severity diagnostic is present."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> list[str]:
        """The distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def with_code(self, code: str) -> list[Diagnostic]:
        """Diagnostics carrying ``code``; unknown codes list the catalog."""
        if code not in CODE_CATALOG:
            raise KeyError(
                f"unknown diagnostic code {code!r}; "
                f"available: {sorted(CODE_CATALOG)}"
            )
        return [d for d in self.diagnostics if d.code == code]

    def summary(self) -> str:
        """``N error(s), M warning(s), K info(s)``."""
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )

    def render(self) -> str:
        """Human-readable multi-line report (one line per diagnostic)."""
        lines = [diagnostic.render() for diagnostic in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form with per-severity counts."""
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "infos": len(self.infos),
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize :meth:`to_dict` as JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckResult({self.summary()})"
